//! Scaling bench for the parallel executor and the lazy-expansion cache.
//!
//! Two measurements back the tentpole claims:
//!
//! 1. **Thread scaling** — the Table 4 query mix (weighted toward the
//!    expansion-heavy path/join queries Q4/Q5/Q7/Q8, per strategy) at
//!    `parallelism` 1/2/4/8, asserting identical rows first. A speedup
//!    table is printed; note that on a single-CPU host the parallel
//!    executor can only show its overhead, not a speedup.
//! 2. **Figure 6 cache workload** — the full mix twice through one
//!    processor with `live_expansion` (group edges resolved through the
//!    memoizing [`idm_query::ExpansionCache`] instead of the replica);
//!    the second run must be ≥ 90% cache hits.
//!
//! Scale via `IDM_BENCH_SF` (default 0.05; the EXPERIMENTS.md numbers use
//! 0.25).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use idm_bench::{build, BuildOptions, TABLE4_QUERIES};
use idm_query::{ExecOptions, ExecStats, ExpansionStrategy, QueryProcessor};

fn bench_scale() -> f64 {
    std::env::var("IDM_BENCH_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05)
}

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The expansion-heavy mix: every Table 4 query, with the path/join
/// queries run under both forward and backward expansion (backward does a
/// reverse reachability search per candidate — the most parallelizable
/// shape).
fn run_mix(processor: &QueryProcessor) -> (usize, ExecStats) {
    let mut rows = 0usize;
    let mut stats = ExecStats::default();
    for (_, iql) in TABLE4_QUERIES {
        let r = processor.execute(iql).expect("mix query");
        rows += r.rows.len();
        stats.nodes_expanded += r.stats.nodes_expanded;
        stats.candidates_examined += r.stats.candidates_examined;
        stats.cache_hits += r.stats.cache_hits;
        stats.cache_misses += r.stats.cache_misses;
        stats.cache_evictions += r.stats.cache_evictions;
    }
    (rows, stats)
}

fn thread_scaling(c: &mut Criterion) {
    let bench = build(BuildOptions {
        scale: bench_scale(),
        imap_latency_scale: 0.0,
        fs_latency_scale: 0.0,
        imap_sleep: false,
        with_rss: false,
    });

    let mut group = c.benchmark_group("scaling");
    for strategy in [ExpansionStrategy::Forward, ExpansionStrategy::Backward] {
        let mut baseline: Option<Vec<_>> = None;
        let mut base_secs = 0.0f64;
        for threads in THREAD_COUNTS {
            let processor = bench.processor(strategy).with_options(ExecOptions {
                expansion: strategy,
                parallelism: threads,
                ..ExecOptions::default()
            });
            // Rows must be identical across thread counts before timing.
            let rows: Vec<_> = TABLE4_QUERIES
                .iter()
                .map(|(_, iql)| processor.execute(iql).expect("query").rows)
                .collect();
            match &baseline {
                None => baseline = Some(rows),
                Some(expect) => assert_eq!(
                    &rows, expect,
                    "{strategy:?} parallelism={threads} changed results"
                ),
            }

            // Self-timed speedup table (criterion's samples feed the
            // harness; this table feeds EXPERIMENTS.md).
            let runs = 5;
            let start = Instant::now();
            for _ in 0..runs {
                std::hint::black_box(run_mix(&processor));
            }
            let secs = start.elapsed().as_secs_f64() / runs as f64;
            if threads == 1 {
                base_secs = secs;
            }
            eprintln!(
                "scaling/{strategy:?}/threads={threads}: {:7.2} ms/mix  speedup {:.2}x",
                secs * 1e3,
                base_secs / secs
            );

            group.bench_function(format!("{strategy:?}/threads={threads}"), |b| {
                b.iter(|| std::hint::black_box(run_mix(&processor).0))
            });
        }
    }
    group.finish();

    // ---- Figure 6 workload through the expansion cache ----------------
    let processor = bench
        .processor(ExpansionStrategy::Forward)
        .with_options(ExecOptions {
            live_expansion: true,
            cache_capacity: 1 << 17,
            ..ExecOptions::default()
        });
    let (cold_rows, cold) = run_mix(&processor);
    let (warm_rows, warm) = run_mix(&processor);
    assert_eq!(cold_rows, warm_rows, "cache changed results");
    let warm_rate = warm.cache_hits as f64 / (warm.cache_hits + warm.cache_misses).max(1) as f64;
    eprintln!(
        "figure6-cache: cold hits={} misses={}  warm hits={} misses={}  warm hit rate {:.1}%",
        cold.cache_hits,
        cold.cache_misses,
        warm.cache_hits,
        warm.cache_misses,
        warm_rate * 100.0
    );
    assert!(
        warm_rate >= 0.9,
        "second Figure 6 run must be >=90% cache hits, got {:.1}%",
        warm_rate * 100.0
    );

    let mut group = c.benchmark_group("figure6-cache");
    group.bench_function("warm-mix", |b| {
        b.iter(|| std::hint::black_box(run_mix(&processor).0))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = thread_scaling
}
criterion_main!(benches);
