//! Micro-benchmarks of the Content2iDM converters and parsers: XML and
//! LaTeX parse + view-graph construction throughput (the dominant part
//! of the filesystem's "Component Indexing" phase in Figure 5), plus
//! tokenizer throughput (the content index's analyzer).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use idm_core::prelude::ViewStore;

fn sample_xml(records: usize) -> String {
    let mut out = String::from("<?xml version=\"1.0\"?><dataset>");
    for r in 0..records {
        out.push_str(&format!(
            "<record id=\"{r}\"><title>Resource view number {r}</title>\
             <note>A note about the dataspace abstraction</note><tag>t{r}</tag></record>"
        ));
    }
    out.push_str("</dataset>");
    out
}

fn sample_latex(sections: usize) -> String {
    let mut out = String::from(
        "\\documentclass{article}\n\\title{A Study}\n\\begin{document}\n\
         \\begin{abstract}\nAn abstract about views.\n\\end{abstract}\n",
    );
    for s in 0..sections {
        out.push_str(&format!("\\section{{Topic {s}}} \\label{{sec:{s}}}\n"));
        out.push_str(
            "The resource view graph connects personal information across \
             subsystem boundaries, removing the divide between inside and \
             outside of files.\n\n",
        );
        out.push_str(&format!(
            "\\begin{{figure}}\\caption{{Results {s}}}\\label{{fig:{s}}}\\end{{figure}}\n\
             See Figure~\\ref{{fig:{s}}} and Section~\\ref{{sec:{s}}}.\n\n"
        ));
    }
    out.push_str("\\end{document}\n");
    out
}

fn converter_benches(c: &mut Criterion) {
    let xml = sample_xml(300);
    let latex = sample_latex(40);
    let prose = sample_latex(40); // text-ish input for the tokenizer

    let mut group = c.benchmark_group("converters");

    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("xml/parse", |b| {
        b.iter(|| idm_xml::parse(std::hint::black_box(&xml)).expect("parse"))
    });
    group.bench_function("xml/to_views", |b| {
        b.iter(|| {
            let store = ViewStore::new();
            let (vid, derived) =
                idm_xml::convert::text_to_views(&store, std::hint::black_box(&xml))
                    .expect("convert");
            std::hint::black_box((vid, derived))
        })
    });

    group.throughput(Throughput::Bytes(latex.len() as u64));
    group.bench_function("latex/parse", |b| {
        b.iter(|| idm_latex::parse_latex(std::hint::black_box(&latex)).expect("parse"))
    });
    group.bench_function("latex/to_views", |b| {
        b.iter(|| {
            let store = ViewStore::new();
            let mapping = idm_latex::convert::text_to_views(&store, std::hint::black_box(&latex))
                .expect("convert");
            std::hint::black_box(mapping.derived)
        })
    });

    group.throughput(Throughput::Bytes(prose.len() as u64));
    group.bench_function("tokenizer", |b| {
        b.iter(|| idm_index::tokenize(std::hint::black_box(&prose)).len())
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = converter_benches
}
criterion_main!(benches);
