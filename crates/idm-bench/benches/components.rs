//! Micro-benchmarks of the index structures (the Replica&Indexes
//! module): phrase lookup, wildcard name matching, tuple range scans,
//! group-replica BFS and catalog class lookups — the building blocks
//! whose costs compose into Figure 6.

use criterion::{criterion_group, criterion_main, Criterion};
use idm_bench::{build, BuildOptions};
use idm_core::prelude::Value;
use idm_index::name::NamePattern;
use idm_index::tuple::CompareOp;

fn bench_scale() -> f64 {
    std::env::var("IDM_BENCH_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05)
}

fn component_micro(c: &mut Criterion) {
    let bench = build(BuildOptions {
        scale: bench_scale(),
        imap_latency_scale: 0.0,
        fs_latency_scale: 0.0,
        imap_sleep: false,
        with_rss: false,
    });
    let indexes = bench.system.indexes();

    let mut group = c.benchmark_group("components");

    group.bench_function("content/term", |b| {
        b.iter(|| std::hint::black_box(indexes.content.term_query("database")).len())
    });
    group.bench_function("content/phrase", |b| {
        b.iter(|| std::hint::black_box(indexes.content.phrase_query("database tuning")).len())
    });

    let exact = NamePattern::new("papers");
    let wildcard = NamePattern::new("*.tex");
    group.bench_function("name/exact", |b| {
        b.iter(|| std::hint::black_box(indexes.name.matching(&exact)).len())
    });
    group.bench_function("name/wildcard", |b| {
        b.iter(|| std::hint::black_box(indexes.name.matching(&wildcard)).len())
    });

    group.bench_function("tuple/range", |b| {
        b.iter(|| {
            std::hint::black_box(indexes.tuple.compare(
                "size",
                CompareOp::Gt,
                &Value::Integer(420_000),
            ))
            .len()
        })
    });

    let papers = indexes.name.exact("papers")[0];
    group.bench_function("group/descendants", |b| {
        b.iter(|| std::hint::black_box(indexes.group.descendants(papers)).len())
    });

    group.bench_function("catalog/by_class", |b| {
        b.iter(|| std::hint::black_box(indexes.catalog.by_class("latex_section")).len())
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = component_micro
}
criterion_main!(benches);
