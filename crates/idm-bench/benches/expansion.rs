//! Ablation bench: **forward vs. backward vs. bidirectional expansion**
//! on the path/join queries (Q4, Q5, Q7, Q8).
//!
//! The paper runs forward expansion only and observes that Q8 "causes
//! the processing of a large number of intermediate results", planning
//! backward/bidirectional expansion \[30\] as future work — this bench
//! measures exactly that design choice.

use criterion::{criterion_group, criterion_main, Criterion};
use idm_bench::{build, BuildOptions, TABLE4_QUERIES};
use idm_query::ExpansionStrategy;

fn bench_scale() -> f64 {
    std::env::var("IDM_BENCH_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05)
}

fn expansion_strategies(c: &mut Criterion) {
    let bench = build(BuildOptions {
        scale: bench_scale(),
        imap_latency_scale: 0.0,
        fs_latency_scale: 0.0,
        imap_sleep: false,
        with_rss: false,
    });

    let strategies = [
        ("forward", ExpansionStrategy::Forward),
        ("backward", ExpansionStrategy::Backward),
        ("bidirectional", ExpansionStrategy::Bidirectional),
    ];

    let mut group = c.benchmark_group("expansion");
    for query_index in [3usize, 4, 6, 7] {
        let (qname, iql) = TABLE4_QUERIES[query_index];
        // Strategies must agree on the result before we time them.
        let baseline = bench.run_query(query_index, ExpansionStrategy::Forward);
        for (_sname, strategy) in strategies {
            assert_eq!(
                bench.run_query(query_index, strategy),
                baseline,
                "{qname}: strategies disagree"
            );
        }
        for (sname, strategy) in strategies {
            let processor = bench.processor(strategy);
            group.bench_function(format!("{qname}/{sname}"), |b| {
                b.iter(|| {
                    let r = processor.execute(std::hint::black_box(iql)).expect("query");
                    std::hint::black_box(r.rows.len())
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = expansion_strategies
}
criterion_main!(benches);
