//! Quick probe of parallel-executor scaling (development aid for the
//! `scaling` bench): times the Table 4 mix per strategy and thread count.

use std::time::Instant;

use idm_bench::{build, cli_options, TABLE4_QUERIES};
use idm_query::{ExecOptions, ExpansionStrategy};

fn main() {
    let mut options = cli_options();
    options.imap_latency_scale = 0.0;
    options.fs_latency_scale = 0.0;
    options.imap_sleep = false;
    let bench = build(options);
    eprintln!(
        "dataset built: sf={} views={}",
        options.scale,
        bench.system.indexes().catalog.len()
    );

    for strategy in [
        ExpansionStrategy::Forward,
        ExpansionStrategy::Backward,
        ExpansionStrategy::Bidirectional,
    ] {
        let mut base = 0.0f64;
        for threads in [1usize, 2, 4, 8] {
            let processor = bench.processor(strategy).with_options(ExecOptions {
                expansion: strategy,
                parallelism: threads,
                ..ExecOptions::default()
            });
            // Warm up.
            for (_, iql) in TABLE4_QUERIES {
                processor.execute(iql).expect("warmup");
            }
            let runs = 5;
            let start = Instant::now();
            for _ in 0..runs {
                for (_, iql) in TABLE4_QUERIES {
                    std::hint::black_box(processor.execute(iql).expect("run"));
                }
            }
            let secs = start.elapsed().as_secs_f64() / runs as f64;
            if threads == 1 {
                base = secs;
            }
            eprintln!(
                "{strategy:?} threads={threads}: {:.1} ms/mix  speedup {:.2}x",
                secs * 1e3,
                base / secs
            );
        }
    }

    // Per-query timing at 1 vs 4 threads, forward.
    for threads in [1usize, 4] {
        let processor = bench
            .processor(ExpansionStrategy::Forward)
            .with_options(ExecOptions {
                parallelism: threads,
                ..ExecOptions::default()
            });
        for (name, iql) in TABLE4_QUERIES {
            processor.execute(iql).expect("warm");
            let start = Instant::now();
            let runs = 5;
            for _ in 0..runs {
                std::hint::black_box(processor.execute(iql).expect("run"));
            }
            eprintln!(
                "  {name} threads={threads}: {:.2} ms",
                start.elapsed().as_secs_f64() / runs as f64 * 1e3
            );
        }
    }
}
