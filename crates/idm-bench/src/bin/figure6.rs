//! Regenerates **Figure 6** — warm-cache query response times for
//! Q1–Q8, plus the execution-statistics view of why Q8 is the slowest
//! (forward expansion through many intermediate results).
//!
//! `cargo run --release -p idm-bench --bin figure6 -- --sf 0.2`

use idm_bench::{build, cli_options, TABLE4_QUERIES};
use idm_query::ExpansionStrategy;

fn main() {
    let mut options = cli_options();
    options.imap_latency_scale = 0.0; // warm cache: indexes only
    println!(
        "Figure 6 — query response times (scale {}, warm cache)\n",
        options.scale
    );
    let bench = build(options);

    println!(
        "{:<4} {:>12} {:>10} {:>16} {:>18}",
        "Q", "time [ms]", "results", "nodes expanded", "candidates seen"
    );
    let mut times = Vec::new();
    for (i, (name, iql)) in TABLE4_QUERIES.iter().enumerate() {
        let avg = bench.time_query(iql, ExpansionStrategy::Forward, 9);
        let result = bench
            .processor(ExpansionStrategy::Forward)
            .execute(iql)
            .expect("query");
        times.push((i, avg));
        println!(
            "{:<4} {:>12.3} {:>10} {:>16} {:>18}",
            name,
            avg.as_secs_f64() * 1e3,
            result.rows.len(),
            result.stats.nodes_expanded,
            result.stats.candidates_examined,
        );
    }

    println!("\nASCII bars (relative to the slowest query):");
    let max = times
        .iter()
        .map(|(_, d)| d.as_secs_f64())
        .fold(0.0, f64::max)
        .max(1e-9);
    for (i, duration) in &times {
        let cells = ((duration.as_secs_f64() / max) * 50.0).round() as usize;
        println!(
            "{:<4} |{}{}|",
            TABLE4_QUERIES[*i].0,
            "#".repeat(cells),
            " ".repeat(50 - cells)
        );
    }

    let slowest = times
        .iter()
        .max_by(|a, b| a.1.cmp(&b.1))
        .map(|(i, _)| TABLE4_QUERIES[*i].0)
        .unwrap_or("?");
    println!("\nPaper shape: Q1–Q7 < 0.2 s, Q8 ≈ 0.5 s (slowest; cross-subsystem");
    println!("join via forward expansion). Here the slowest query is {slowest}.");
    println!(
        "Interactivity: all queries {} the 1-second HCI threshold [39].",
        if max < 1.0 { "meet" } else { "MISS" }
    );
}
