//! Regenerates **Table 3** — index sizes for the personal dataset:
//! net input data size per source and the sizes of the name, tuple,
//! content and group structures plus the resource view catalog.
//!
//! `cargo run --release -p idm-bench --bin table3 -- --sf 0.1`

use idm_bench::{build, cli_options, mb};

fn main() {
    let options = cli_options();
    println!(
        "Table 3 — index sizes (scale factor {}, paper = 1.0)\n",
        options.scale
    );
    let bench = build(options);

    // Our bundle is global (one set of structures over the dataspace);
    // attribute per-source *net input* like the paper and report the
    // structure sizes once.
    println!("{:<14} {:>16}", "Data Source", "Net Input (MB)");
    let mut net_total = 0u64;
    for stats in &bench.stats {
        let label = match stats.source.as_str() {
            "filesystem" => "Filesystem",
            "imap" => "Email / IMAP",
            other => other,
        };
        println!("{:<14} {:>16}", label, mb(stats.net_input_bytes));
        net_total += stats.net_input_bytes;
    }
    println!("{:<14} {:>16}\n", "Total", mb(net_total));

    let sizes = bench.system.indexes().sizes();
    println!("Index sizes (MB):");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>12} {:>8}",
        "Name", "Tuple", "Content", "Group", "RV Catalog", "Total"
    );
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>12} {:>8}",
        mb(sizes.name as u64),
        mb(sizes.tuple as u64),
        mb(sizes.content as u64),
        mb(sizes.group as u64),
        mb(sizes.catalog as u64),
        mb(sizes.total() as u64),
    );

    let ratio = sizes.total() as f64 / net_total.max(1) as f64 * 100.0;
    let content_share = sizes.content as f64 / sizes.total().max(1) as f64 * 100.0;
    println!("\nTotal index size = {ratio:.1}% of net input (paper: 67.5%).");
    println!("Content index share of total = {content_share:.1}% (paper: 68.4%).");

    println!("\nPaper values (scale 1.0) for comparison, MB:");
    println!(
        "{:<14} {:>10} {:>7} {:>7} {:>8} {:>7} {:>11} {:>7}",
        "Data Source", "Net Input", "Name", "Tuple", "Content", "Group", "RV Catalog", "Total"
    );
    println!(
        "{:<14} {:>10} {:>7} {:>7} {:>8} {:>7} {:>11} {:>7}",
        "Filesystem", 212.3, 12.5, 11.5, 113.0, 3.3, 24.4, 164.7
    );
    println!(
        "{:<14} {:>10} {:>7} {:>7} {:>8} {:>7} {:>11} {:>7}",
        "Email / IMAP", 43.1, 0.4, 1.8, 5.0, 0.2, 0.4, 7.8
    );
    println!(
        "{:<14} {:>10} {:>7} {:>7} {:>8} {:>7} {:>11} {:>7}",
        "Total", 255.4, 12.9, 13.3, 118.0, 3.5, 24.8, 172.5
    );
}
