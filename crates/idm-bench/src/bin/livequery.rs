//! Live-query benchmark — delta maintenance vs full recompute. Seeds
//! fleets of standing queries over the Table 4 dataspace, applies
//! single-record changes, and measures the per-query latency of
//! maintaining every standing result incrementally against the latency
//! of recomputing each one from scratch, plus the fallback rate (how
//! often the maintainer had to bail into bounded re-expansion or full
//! recompute). Emits `results/BENCH_livequery.json`.
//!
//! ```sh
//! cargo run --release -p idm-bench --bin livequery -- --sf 1
//! cargo run --release -p idm-bench --bin livequery -- --smoke   # CI gate
//! ```
//!
//! `--smoke` runs a small-sf sweep and exits nonzero unless delta-apply
//! p50 beats recompute p50 for single-record changes at every fleet
//! size — the acceptance bound for "maintenance is strictly cheaper
//! than re-execution".

use std::path::PathBuf;
use std::time::{Duration, Instant};

use idm_bench::{build, BuildOptions, Workbench};
use idm_core::prelude::*;
use idm_query::{MaintainedPlan, QueryBudget, QueryProcessor};

/// Fleet sizes: how many standing queries are registered at once.
const FLEETS: [usize; 3] = [1, 100, 1000];

/// Standing-query shapes the fleet cycles through: a relate expansion
/// (the canonical standing-feed shape — first, so a fleet of one is a
/// structural query rather than a bare index probe), a cheap keyword
/// leaf, a phrase, and a predicate scan.
const STANDING: [&str; 4] = [
    r#"//papers//*["Franklin"]"#,
    r#""database""#,
    r#""database tuning""#,
    r#"[size > 420000]"#,
];

struct Args {
    scale: f64,
    out: PathBuf,
    smoke: bool,
    reps: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1.0,
        out: PathBuf::from("results/BENCH_livequery.json"),
        smoke: false,
        reps: 30,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--sf" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    args.scale = v;
                }
                i += 2;
            }
            "--reps" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    args.reps = v;
                }
                i += 2;
            }
            "--out" => {
                if let Some(path) = argv.get(i + 1) {
                    args.out = PathBuf::from(path);
                }
                i += 2;
            }
            "--smoke" => {
                args.smoke = true;
                i += 1;
            }
            _ => i += 1,
        }
    }
    args
}

fn options_at(scale: f64) -> BuildOptions {
    BuildOptions {
        scale,
        imap_latency_scale: 0.0,
        fs_latency_scale: 0.0,
        imap_sleep: false,
        with_rss: true,
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

struct Sweep {
    fleet: usize,
    delta_p50: Duration,
    delta_p99: Duration,
    recompute_p50: Duration,
    recompute_p99: Duration,
    /// Fraction of (standing query × change batch) maintenance passes
    /// that fell back to re-expansion or full recompute.
    fallback_rate: f64,
}

/// One sweep: seed `fleet` standing queries, then `reps` rounds of
/// one single-record change each. Per round, time (a) maintaining every
/// standing result from the change records and (b) recomputing every
/// standing plan from scratch; both divided by the fleet size give the
/// per-query latency samples.
fn sweep(bench: &Workbench, fleet: usize, reps: usize) -> Sweep {
    let processor: QueryProcessor = bench.system.query_processor();
    let store = bench.system.store();
    let indexes = bench.system.indexes();

    let mut standings: Vec<MaintainedPlan> = (0..fleet)
        .map(|i| {
            let plan = processor.plan_iql(STANDING[i % STANDING.len()]).unwrap();
            let (_, standing) = processor
                .execute_standing(&plan, QueryBudget::none())
                .unwrap();
            standing.expect("unbudgeted execution seeds standing state")
        })
        .collect();

    let rx = store.subscribe_records();
    let mut delta_samples = Vec::with_capacity(reps);
    let mut recompute_samples = Vec::with_capacity(reps);
    let mut bench_vids: Vec<Vid> = Vec::new();
    for rep in 0..reps {
        // The single-record change of this round. Rounds cycle through
        // the record kinds a live feed produces — insert, rename,
        // content edit, tuple edit — so each standing query sees a mix
        // of relevant changes (re-derivation) and irrelevant ones
        // (classification only), as a real change stream would.
        if bench_vids.is_empty() || rep % 4 == 0 {
            let vid = store
                .build(format!("bench-live-{rep}.txt"))
                .text(format!("database entry {rep}"))
                .insert();
            indexes.index_view(store, vid, "bench").unwrap();
            bench_vids.push(vid);
        } else {
            let vid = bench_vids[rep % bench_vids.len()];
            match rep % 4 {
                1 => store
                    .set_name(vid, Some(format!("bench-renamed-{rep}.txt")))
                    .unwrap(),
                2 => store
                    .set_content(vid, Content::text(format!("database tuning entry {rep}")))
                    .unwrap(),
                _ => store
                    .set_tuple(
                        vid,
                        Some(TupleComponent::of(vec![(
                            "size",
                            Value::Integer(rep as i64),
                        )])),
                    )
                    .unwrap(),
            }
            indexes.index_view(store, vid, "bench").unwrap();
        }
        let records: Vec<ChangeRecord> = rx.try_iter().collect();

        let start = Instant::now();
        for standing in &mut standings {
            processor.maintain(standing, &records).unwrap();
        }
        delta_samples.push(start.elapsed() / fleet as u32);

        let start = Instant::now();
        for standing in &standings {
            processor.execute_plan(standing.plan()).unwrap();
        }
        recompute_samples.push(start.elapsed() / fleet as u32);
    }

    let (mut fallbacks, mut batches) = (0u64, 0u64);
    for standing in &standings {
        let stats = standing.stats();
        fallbacks += stats.relate_fallbacks + stats.full_recomputes;
        batches += stats.batches;
    }

    delta_samples.sort();
    recompute_samples.sort();
    Sweep {
        fleet,
        delta_p50: percentile(&delta_samples, 0.50),
        delta_p99: percentile(&delta_samples, 0.99),
        recompute_p50: percentile(&recompute_samples, 0.50),
        recompute_p99: percentile(&recompute_samples, 0.99),
        fallback_rate: if batches == 0 {
            0.0
        } else {
            fallbacks as f64 / batches as f64
        },
    }
}

fn to_json(s: &Sweep) -> String {
    format!(
        "{{\"fleet\":{},\"delta_p50_us\":{},\"delta_p99_us\":{},\"recompute_p50_us\":{},\"recompute_p99_us\":{},\"fallback_rate\":{:.4}}}",
        s.fleet,
        s.delta_p50.as_micros(),
        s.delta_p99.as_micros(),
        s.recompute_p50.as_micros(),
        s.recompute_p99.as_micros(),
        s.fallback_rate
    )
}

fn run(scale: f64, reps: usize, out: &PathBuf) -> Vec<Sweep> {
    let bench = build(options_at(scale));
    println!(
        "Live queries — delta apply vs recompute per standing query (sf {scale}, {} views)\n",
        bench.system.store().vids().len()
    );
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>14} {:>10}",
        "fleet", "delta p50", "delta p99", "recompute p50", "recompute p99", "fallback"
    );

    let sweeps: Vec<Sweep> = FLEETS
        .iter()
        .map(|&fleet| {
            let s = sweep(&bench, fleet, reps);
            println!(
                "{:>6} {:>12?} {:>12?} {:>14?} {:>14?} {:>9.1}%",
                s.fleet,
                s.delta_p50,
                s.delta_p99,
                s.recompute_p50,
                s.recompute_p99,
                s.fallback_rate * 100.0
            );
            s
        })
        .collect();

    let json = format!(
        "{{\"bench\":\"livequery\",\"sf\":{scale},\"reps\":{reps},\"runs\":[\n  {}\n]}}\n",
        sweeps.iter().map(to_json).collect::<Vec<_>>().join(",\n  ")
    );
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    std::fs::write(out, &json).expect("write BENCH_livequery.json");
    println!("\nwrote {}", out.display());
    sweeps
}

fn main() {
    let args = parse_args();
    let (scale, reps) = if args.smoke {
        (0.05, args.reps.min(15))
    } else {
        (args.scale, args.reps)
    };
    let sweeps = run(scale, reps, &args.out);

    if args.smoke {
        for s in &sweeps {
            if s.delta_p50 >= s.recompute_p50 {
                println!(
                    "FAIL: delta-apply p50 {:?} does not beat recompute p50 {:?} at fleet {}",
                    s.delta_p50, s.recompute_p50, s.fleet
                );
                std::process::exit(1);
            }
        }
        println!("OK: delta-apply p50 beats recompute p50 at every fleet size");
    }
}
