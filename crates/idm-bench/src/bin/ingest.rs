//! Ingest throughput benchmark — the group-commit WAL and bulk
//! pipeline evaluation. Runs a durable (Fsync) ingest of the synthetic
//! dataspace through the sequential and bulk paths, prints a scaling
//! table, and emits machine-readable `results/BENCH_ingest.json`
//! (records/sec, fsync counts, batch-size histogram).
//!
//! ```sh
//! cargo run --release -p idm-bench --bin ingest -- --sfs 0.25,1,4
//! cargo run --release -p idm-bench --bin ingest -- --smoke   # CI gate
//! ```
//!
//! `--smoke` runs one small-sf bulk ingest and exits nonzero unless
//! the WAL issued strictly fewer fsyncs than records — the group
//! commit must actually group. `--bulk-only` skips the sequential
//! baseline (one fsync per record makes it slow at large sf).

use std::path::PathBuf;

use idm_bench::{build_measured, BuildOptions, IngestMeasurement, IngestMode};
use idm_system::BulkIngestOptions;

struct Args {
    scales: Vec<f64>,
    out: PathBuf,
    smoke: bool,
    bulk_only: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scales: vec![0.25, 1.0, 4.0],
        out: PathBuf::from("results/BENCH_ingest.json"),
        smoke: false,
        bulk_only: false,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--sfs" | "--sf" => {
                if let Some(list) = argv.get(i + 1) {
                    args.scales = list
                        .split(',')
                        .filter_map(|s| s.trim().parse().ok())
                        .collect();
                }
                i += 2;
            }
            "--out" => {
                if let Some(path) = argv.get(i + 1) {
                    args.out = PathBuf::from(path);
                }
                i += 2;
            }
            "--smoke" => {
                args.smoke = true;
                i += 1;
            }
            "--bulk-only" => {
                args.bulk_only = true;
                i += 1;
            }
            _ => i += 1,
        }
    }
    args
}

/// Dataset knobs for write-path measurement: no simulated source
/// latency (it would swamp the WAL cost being measured).
fn options_at(scale: f64) -> BuildOptions {
    BuildOptions {
        scale,
        imap_latency_scale: 0.0,
        fs_latency_scale: 0.0,
        imap_sleep: false,
        with_rss: true,
    }
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("idm-ingest-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(scale: f64, tag: &str, mode: IngestMode) -> IngestMeasurement {
    let dir = tmp(tag);
    let (_bench, m) = build_measured(options_at(scale), Some(&dir), mode);
    std::fs::remove_dir_all(&dir).ok();
    m
}

fn print_row(m: &IngestMeasurement) {
    println!(
        "{:>6} {:>11} {:>8} {:>10.0} {:>12} {:>9} {:>12} {:>9}",
        m.scale,
        m.mode,
        m.views,
        m.views_per_sec(),
        m.wal_records,
        m.fsyncs,
        m.fsyncs_saved,
        m.segments
    );
}

fn smoke() -> ! {
    let m = run(
        0.05,
        "smoke",
        IngestMode::Bulk(BulkIngestOptions::default()),
    );
    println!(
        "smoke: {} views, {} wal records, {} fsyncs ({} saved)",
        m.views, m.wal_records, m.fsyncs, m.fsyncs_saved
    );
    if m.wal_records == 0 {
        println!("FAIL: nothing was logged");
        std::process::exit(1);
    }
    if m.fsyncs >= m.wal_records {
        println!(
            "FAIL: {} fsyncs for {} records — group commit is not grouping",
            m.fsyncs, m.wal_records
        );
        std::process::exit(1);
    }
    println!("OK: fsyncs < records");
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    if args.smoke {
        smoke();
    }

    println!("Ingest throughput — durable (Fsync) write path\n");
    println!(
        "{:>6} {:>11} {:>8} {:>10} {:>12} {:>9} {:>12} {:>9}",
        "sf", "mode", "views", "views/s", "wal recs", "fsyncs", "fsyncs saved", "segments"
    );

    let mut rows: Vec<IngestMeasurement> = Vec::new();
    for &scale in &args.scales {
        if !args.bulk_only {
            let m = run(scale, &format!("seq-{scale}"), IngestMode::Sequential);
            print_row(&m);
            rows.push(m);
        }
        let m = run(
            scale,
            &format!("bulk-{scale}"),
            IngestMode::Bulk(BulkIngestOptions::default()),
        );
        print_row(&m);
        rows.push(m);
    }

    let json = format!(
        "{{\"bench\":\"ingest\",\"sync_policy\":\"fsync\",\"runs\":[\n  {}\n]}}\n",
        rows.iter()
            .map(IngestMeasurement::to_json)
            .collect::<Vec<_>>()
            .join(",\n  ")
    );
    if let Some(parent) = args.out.parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    std::fs::write(&args.out, &json).expect("write BENCH_ingest.json");
    println!("\nwrote {}", args.out.display());
}
