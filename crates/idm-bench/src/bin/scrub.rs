//! Background-scrub benchmark — integrity verification throughput and
//! its cost to foreground queries. Builds a durable dataspace from the
//! synthetic workload, measures (a) raw scrub throughput over the
//! snapshot + WAL + index artifacts and (b) foreground query p50/p99
//! with and without a budgeted scrub running concurrently. Emits
//! machine-readable `results/BENCH_scrub.json`.
//!
//! ```sh
//! cargo run --release -p idm-bench --bin scrub -- --sf 1
//! cargo run --release -p idm-bench --bin scrub -- --smoke   # CI gate
//! ```
//!
//! `--smoke` runs a small-sf sweep and exits nonzero if the concurrent
//! scrub degrades foreground query p99 by more than 10% (plus a small
//! absolute grace for microsecond-scale queries on noisy runners) —
//! the acceptance bound for "scrubbing is a background activity".

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use idm_bench::{build, BuildOptions};
use idm_core::durability::{ScrubBudget, Scrubber};
use idm_query::ExpansionStrategy;
use idm_system::Pdsms;

struct Args {
    scale: f64,
    out: PathBuf,
    smoke: bool,
    reps: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1.0,
        out: PathBuf::from("results/BENCH_scrub.json"),
        smoke: false,
        reps: 600,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--sf" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    args.scale = v;
                }
                i += 2;
            }
            "--reps" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    args.reps = v;
                }
                i += 2;
            }
            "--out" => {
                if let Some(path) = argv.get(i + 1) {
                    args.out = PathBuf::from(path);
                }
                i += 2;
            }
            "--smoke" => {
                args.smoke = true;
                args.scale = 0.25;
                args.reps = 400;
                i += 1;
            }
            _ => i += 1,
        }
    }
    args
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// The foreground mix: one latency sample per preset workbench query,
/// cycling through all eight shapes.
fn query_latencies(bench: &idm_bench::Workbench, reps: usize) -> Vec<Duration> {
    let mut samples = Vec::with_capacity(reps);
    for i in 0..reps {
        let start = Instant::now();
        let rows = bench.run_query(i % 8, ExpansionStrategy::Forward);
        samples.push(start.elapsed());
        std::hint::black_box(rows);
    }
    samples.sort();
    samples
}

/// Raw scrub throughput: unbudgeted rounds over every durable artifact
/// until ~1.5 s of wall time has been spent.
fn scrub_throughput(system: &Pdsms) -> (f64, u64) {
    let mut scrubber = Scrubber::new(ScrubBudget::default());
    let mut bytes = 0u64;
    let start = Instant::now();
    let mut rounds = 0u64;
    while start.elapsed() < Duration::from_millis(1500) || rounds == 0 {
        let report = system.scrub_round(&mut scrubber).expect("scrub round");
        assert!(report.findings.is_empty(), "pristine artifacts must verify");
        bytes += report.bytes_verified;
        rounds += 1;
    }
    (bytes as f64 / start.elapsed().as_secs_f64(), rounds)
}

fn main() {
    let args = parse_args();
    let dir = std::env::temp_dir().join(format!("idm-bench-scrub-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    println!("building workbench at sf {} ...", args.scale);
    let mut bench = build(BuildOptions {
        scale: args.scale,
        imap_latency_scale: 0.0,
        fs_latency_scale: 0.0,
        imap_sleep: false,
        with_rss: true,
    });
    bench.system.make_durable(&dir).expect("make durable");
    bench.system.checkpoint().expect("checkpoint");
    // Leave a live WAL tail behind the snapshot so the scrub walks
    // every artifact class.
    for i in 0..256 {
        let store = bench.system.store();
        let vid = store
            .build(format!("scrub-tail-{i}.txt"))
            .text(format!("wal resident record {i}"))
            .insert();
        bench
            .system
            .indexes()
            .index_view(store, vid, "bench")
            .expect("index");
    }

    let (bytes_per_sec, rounds) = scrub_throughput(&bench.system);
    println!(
        "scrub throughput: {:.1} MB/s over {rounds} full round(s)",
        bytes_per_sec / 1e6
    );

    println!("baseline foreground queries ({} reps) ...", args.reps);
    let baseline = query_latencies(&bench, args.reps);

    println!("foreground queries with concurrent budgeted scrub ...");
    let stop = AtomicBool::new(false);
    let scrubbed = AtomicU64::new(0);
    let system = &bench.system;
    let concurrent = std::thread::scope(|s| {
        s.spawn(|| {
            // A production scrubber is paced: a small budgeted burst,
            // then yield the core. 128 KiB per round at a 25 ms cadence
            // is a ~5 MB/s background verification rate whose bursts
            // are short enough (~0.2 ms) to hide below query tails even
            // on a single-core host.
            let mut scrubber = Scrubber::new(ScrubBudget {
                slice_bytes: 64 * 1024,
                max_bytes_per_round: Some(128 * 1024),
            });
            while !stop.load(Ordering::Relaxed) {
                match system.scrub_round(&mut scrubber) {
                    Ok(report) => {
                        scrubbed.fetch_add(report.bytes_verified, Ordering::Relaxed);
                    }
                    Err(e) => {
                        eprintln!("background scrub failed: {e}");
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        });
        let samples = query_latencies(&bench, args.reps);
        stop.store(true, Ordering::Relaxed);
        samples
    });
    let concurrent_bytes = scrubbed.load(Ordering::Relaxed);

    let base_p50 = percentile(&baseline, 0.50);
    let base_p99 = percentile(&baseline, 0.99);
    let conc_p50 = percentile(&concurrent, 0.50);
    let conc_p99 = percentile(&concurrent, 0.99);
    let degradation = if base_p99.as_nanos() > 0 {
        conc_p99.as_secs_f64() / base_p99.as_secs_f64() - 1.0
    } else {
        0.0
    };
    println!(
        "query p50 {:>9.1?} -> {:>9.1?}   p99 {:>9.1?} -> {:>9.1?}   ({:+.1}% p99, {} scrubbed alongside)",
        base_p50,
        conc_p50,
        base_p99,
        conc_p99,
        degradation * 100.0,
        idm_bench::mb(concurrent_bytes),
    );

    let json = format!(
        "{{\n  \"scale\": {},\n  \"reps\": {},\n  \"scrub_bytes_per_sec\": {:.0},\n  \"scrub_rounds\": {rounds},\n  \"baseline_p50_us\": {:.1},\n  \"baseline_p99_us\": {:.1},\n  \"concurrent_p50_us\": {:.1},\n  \"concurrent_p99_us\": {:.1},\n  \"concurrent_scrubbed_bytes\": {concurrent_bytes},\n  \"p99_degradation\": {:.4}\n}}\n",
        args.scale,
        args.reps,
        bytes_per_sec,
        base_p50.as_secs_f64() * 1e6,
        base_p99.as_secs_f64() * 1e6,
        conc_p50.as_secs_f64() * 1e6,
        conc_p99.as_secs_f64() * 1e6,
        degradation,
    );
    if let Some(parent) = args.out.parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    std::fs::write(&args.out, json).expect("write results");
    println!("wrote {}", args.out.display());
    let _ = std::fs::remove_dir_all(&dir);

    if args.smoke {
        // 10% relative bound, plus an absolute grace of ~one scheduler
        // quantum: on a single-core runner a background thread cannot
        // physically interleave below preemption granularity, and that
        // cost is the host's, not the scrubber's. On multi-core hosts
        // the relative bound is the binding one.
        let limit = base_p99.mul_f64(1.10) + Duration::from_micros(1500);
        if conc_p99 > limit {
            eprintln!(
                "SMOKE FAIL: concurrent scrub degraded query p99 to {conc_p99:?} (limit {limit:?})"
            );
            std::process::exit(1);
        }
        if concurrent_bytes == 0 {
            eprintln!("SMOKE FAIL: the background scrub verified nothing");
            std::process::exit(1);
        }
        println!("smoke OK: p99 within bound and scrub made progress");
    }
}
