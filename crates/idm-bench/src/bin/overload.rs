//! Overload benchmark — cancellation latency of the resource-governance
//! layer. Runs the Table 4 workload under wall-clock deadlines that fire
//! mid-execution and measures the *overshoot*: how long past its
//! deadline a query takes to unwind through the cooperative checkpoints
//! and return `ResourceExhausted`. Emits `results/BENCH_overload.json`
//! with p50/p99 per parallelism level.
//!
//! ```sh
//! cargo run --release -p idm-bench --bin overload -- --sf 1
//! cargo run --release -p idm-bench --bin overload -- --smoke   # CI gate
//! ```
//!
//! `--smoke` runs a small-sf sweep and exits nonzero unless cancel p99
//! stays under 50ms — the acceptance bound for "exceeding any limit
//! aborts within one operator batch".

use std::path::PathBuf;
use std::time::{Duration, Instant};

use idm_bench::{build, BuildOptions, Workbench, TABLE4_QUERIES};
use idm_query::{ExecOptions, ExpansionStrategy, QueryBudget};

/// The acceptance bound on cancel p99.
const CANCEL_P99_BOUND: Duration = Duration::from_millis(50);

struct Args {
    scale: f64,
    out: PathBuf,
    smoke: bool,
    reps: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1.0,
        out: PathBuf::from("results/BENCH_overload.json"),
        smoke: false,
        reps: 20,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--sf" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    args.scale = v;
                }
                i += 2;
            }
            "--reps" => {
                if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    args.reps = v;
                }
                i += 2;
            }
            "--out" => {
                if let Some(path) = argv.get(i + 1) {
                    args.out = PathBuf::from(path);
                }
                i += 2;
            }
            "--smoke" => {
                args.smoke = true;
                i += 1;
            }
            _ => i += 1,
        }
    }
    args
}

/// Dataset without simulated source latency: the cost being measured is
/// the executor's own unwind path, not sleeps in the substrate model.
fn options_at(scale: f64) -> BuildOptions {
    BuildOptions {
        scale,
        imap_latency_scale: 0.0,
        fs_latency_scale: 0.0,
        imap_sleep: false,
        with_rss: true,
    }
}

/// One cancellation-latency sweep: every Table 4 query, `reps` deadline
/// runs each. Even reps use an already-expired deadline (overshoot is
/// the full elapsed time: trip at the first checkpoint and unwind);
/// odd reps use half the query's own baseline so the deadline fires
/// mid-plan. Runs that finish under their deadline are not
/// cancellations and yield no sample.
fn cancel_overshoots(bench: &Workbench, parallelism: usize, reps: usize) -> Vec<Duration> {
    let processor = bench.processor(ExpansionStrategy::Forward);
    let options = ExecOptions {
        parallelism,
        ..processor.options()
    };
    let mut processor = processor.with_options(options);

    let mut samples = Vec::new();
    for (_name, iql) in TABLE4_QUERIES.iter() {
        processor.set_budget(QueryBudget::none());
        let start = Instant::now();
        processor.execute(iql).expect("baseline run");
        let baseline = start.elapsed();

        for rep in 0..reps {
            let deadline = if rep % 2 == 0 {
                Duration::ZERO
            } else {
                baseline / 2
            };
            processor.set_budget(QueryBudget::with_deadline(deadline));
            let start = Instant::now();
            if processor.execute(iql).is_err() {
                samples.push(start.elapsed().saturating_sub(deadline));
            }
        }
    }
    samples
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

struct Sweep {
    parallelism: usize,
    samples: usize,
    p50: Duration,
    p99: Duration,
    max: Duration,
}

fn sweep(bench: &Workbench, parallelism: usize, reps: usize) -> Sweep {
    let mut overshoots = cancel_overshoots(bench, parallelism, reps);
    overshoots.sort();
    Sweep {
        parallelism,
        samples: overshoots.len(),
        p50: percentile(&overshoots, 0.50),
        p99: percentile(&overshoots, 0.99),
        max: overshoots.last().copied().unwrap_or(Duration::ZERO),
    }
}

fn to_json(s: &Sweep) -> String {
    format!(
        "{{\"parallelism\":{},\"samples\":{},\"p50_us\":{},\"p99_us\":{},\"max_us\":{}}}",
        s.parallelism,
        s.samples,
        s.p50.as_micros(),
        s.p99.as_micros(),
        s.max.as_micros()
    )
}

fn run(scale: f64, reps: usize, out: &PathBuf) -> Vec<Sweep> {
    let bench = build(options_at(scale));
    println!(
        "Overload — cancellation overshoot past the deadline (sf {scale}, {} views)\n",
        bench.system.store().vids().len()
    );
    println!(
        "{:>12} {:>8} {:>10} {:>10} {:>10}",
        "parallelism", "samples", "p50", "p99", "max"
    );

    let sweeps: Vec<Sweep> = [1, 4]
        .iter()
        .map(|&parallelism| {
            let s = sweep(&bench, parallelism, reps);
            println!(
                "{:>12} {:>8} {:>10?} {:>10?} {:>10?}",
                s.parallelism, s.samples, s.p50, s.p99, s.max
            );
            s
        })
        .collect();

    let json = format!(
        "{{\"bench\":\"overload\",\"sf\":{scale},\"reps\":{reps},\"bound_us\":{},\"runs\":[\n  {}\n]}}\n",
        CANCEL_P99_BOUND.as_micros(),
        sweeps.iter().map(to_json).collect::<Vec<_>>().join(",\n  ")
    );
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    std::fs::write(out, &json).expect("write BENCH_overload.json");
    println!("\nwrote {}", out.display());
    sweeps
}

fn main() {
    let args = parse_args();
    let (scale, reps) = if args.smoke {
        (0.05, args.reps.min(10))
    } else {
        (args.scale, args.reps)
    };
    let sweeps = run(scale, reps, &args.out);

    if args.smoke {
        for s in &sweeps {
            if s.samples == 0 {
                println!(
                    "FAIL: no cancellations sampled at parallelism {}",
                    s.parallelism
                );
                std::process::exit(1);
            }
            if s.p99 >= CANCEL_P99_BOUND {
                println!(
                    "FAIL: cancel p99 {:?} at parallelism {} exceeds the {:?} bound",
                    s.p99, s.parallelism, CANCEL_P99_BOUND
                );
                std::process::exit(1);
            }
        }
        println!("OK: cancel p99 under {CANCEL_P99_BOUND:?} at every parallelism");
    }
}
