//! Regenerates **Table 4** — the iQL evaluation queries and their
//! result counts, comparing measured counts against the generator's
//! planted ground truth and the paper's values.
//!
//! `cargo run --release -p idm-bench --bin table4 -- --sf 1.0`
//! reproduces paper-scale counts.

use idm_bench::{build, cli_options, PAPER_RESULT_COUNTS, TABLE4_QUERIES};
use idm_query::ExpansionStrategy;

fn main() {
    let mut options = cli_options();
    // Latency only matters for indexing-time experiments.
    options.imap_latency_scale = 0.0;
    println!(
        "Table 4 — iQL queries and result counts (scale {}, paper = 1.0)\n",
        options.scale
    );
    let bench = build(options);
    let expected = bench.expected_counts();

    println!(
        "{:<4} {:>9} {:>9} {:>9}  iQL",
        "Q", "measured", "planted", "paper@1.0"
    );
    let mut all_match = true;
    for (i, (name, iql)) in TABLE4_QUERIES.iter().enumerate() {
        let measured = bench.run_query(i, ExpansionStrategy::Forward);
        let ok = measured == expected[i];
        all_match &= ok;
        let display = if iql.len() > 72 {
            format!("{}…", &iql[..72])
        } else {
            (*iql).to_owned()
        };
        println!(
            "{:<4} {:>9} {:>9} {:>9}  {}{}",
            name,
            measured,
            expected[i],
            PAPER_RESULT_COUNTS[i],
            display,
            if ok { "" } else { "   <-- MISMATCH" }
        );
    }
    println!(
        "\n{}",
        if all_match {
            "All measured counts equal the planted ground truth."
        } else {
            "MISMATCH between measured and planted counts — investigate!"
        }
    );
    println!(
        "At --sf 1.0 the planted counts are calibrated to the paper's values\n\
         (941, 39, 88, 2, 2, ~30, 21, 16)."
    );
}
