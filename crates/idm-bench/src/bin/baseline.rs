//! Baseline comparison — the Section 1 motivation, quantified.
//!
//! The paper argues that 2006-era tools (grep/find, keyword desktop
//! search à la Google Desktop / Spotlight) cannot express queries that
//! bridge the inside/outside-file boundary: the user gets a flat list
//! of *files* matching keywords and must dig through each one manually
//! ("for structured file formats the user typically has to conduct a
//! second search inside the file" \[13\]).
//!
//! This harness runs the paper's Example 1 and Example 2 information
//! needs three ways over the same dataspace and reports how many
//! results the user must examine:
//!
//! 1. grep-style — keyword match over raw file/email bytes,
//! 2. desktop-search — keyword match over every indexed view
//!    (no structure, no path/class constraints),
//! 3. iDM + iQL — the structural query.
//!
//! `cargo run --release -p idm-bench --bin baseline -- --sf 0.25`

use idm_bench::{build, cli_options};
use idm_core::prelude::Vid;
use idm_query::ExpansionStrategy;

struct Need {
    label: &'static str,
    /// The phrase a keyword tool would be given.
    keyword: &'static str,
    /// The precise iQL query.
    iql: &'static str,
}

const NEEDS: &[Need] = &[
    Need {
        label: "Example 1: PIM Introduction sections mentioning Mike Franklin",
        keyword: "Mike Franklin",
        iql: r#"//PIM//Introduction[class="latex_section" and "Mike Franklin"]"#,
    },
    Need {
        label: "Example 2-style: OLAP figures captioned 'Indexing Time'",
        keyword: "Indexing Time",
        iql: r#"//OLAP//*[class="figure" and "Indexing Time"]"#,
    },
    Need {
        label: "Q4: Vision sections under /papers that cite Franklin",
        keyword: "Franklin",
        iql: r#"//papers//*Vision/*["Franklin"]"#,
    },
];

fn main() {
    let mut options = cli_options();
    options.imap_latency_scale = 0.0;
    options.fs_latency_scale = 0.0;
    println!(
        "Baseline comparison (scale {}): results the user must examine\n",
        options.scale
    );
    let bench = build(options);
    let indexes = bench.system.indexes();
    let store = bench.system.store();
    let processor = bench.processor(ExpansionStrategy::Forward);

    let is_base_item = |vid: Vid| {
        store.class_name(vid).ok().flatten().is_some_and(|c| {
            matches!(
                c.as_str(),
                "file" | "xmlfile" | "latexfile" | "attachment" | "emailmessage"
            )
        })
    };

    println!(
        "{:<62} {:>10} {:>10} {:>6}",
        "information need", "grep", "desktop", "iQL"
    );
    for need in NEEDS {
        // grep-style: files/emails whose bytes contain the phrase.
        let grep: usize = indexes
            .content
            .phrase_query(need.keyword)
            .into_iter()
            .filter(|v| is_base_item(*v))
            .count();
        // desktop search: every view containing the keyword (flat).
        let desktop = indexes.content.phrase_query(need.keyword).len();
        // iDM/iQL: the structural answer.
        let precise = processor.execute(need.iql).expect("iql runs").rows.len();
        println!(
            "{:<62} {:>10} {:>10} {:>6}",
            need.label, grep, desktop, precise
        );
    }

    println!(
        "\n'grep' returns whole files — finding the right *section* still\n\
         requires a second, manual search inside each hit. 'desktop' search\n\
         has no way to say \"only Introduction sections under PIM\", so it\n\
         over-returns. The iQL column is the exact answer set, because the\n\
         structure inside files and the folders outside them live in one\n\
         resource view graph."
    );
}
