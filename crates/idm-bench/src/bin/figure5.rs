//! Regenerates **Figure 5** — indexing times per data source, broken
//! into Catalog Insert, Component Indexing (including Content2iDM
//! conversion) and Data Source Access.
//!
//! `cargo run --release -p idm-bench --bin figure5 -- --sf 0.1`

use idm_bench::{build, cli_options, secs};

fn main() {
    let options = cli_options();
    println!(
        "Figure 5 — indexing times [s] (scale {}, IMAP latency scale {})\n",
        options.scale, options.imap_latency_scale
    );
    let bench = build(options);

    println!(
        "{:<14} {:>14} {:>20} {:>20} {:>10}",
        "Data Source", "Catalog [s]", "Comp. Indexing [s]", "Source Access [s]", "Total [s]"
    );
    for stats in &bench.stats {
        let label = match stats.source.as_str() {
            "filesystem" => "Filesystem",
            "imap" => "Email / IMAP",
            other => other,
        };
        // Conversion is part of component indexing in the paper's
        // three-way split.
        let component = stats.component_indexing + stats.conversion;
        println!(
            "{:<14} {:>14} {:>20} {:>20} {:>10}",
            label,
            secs(stats.catalog_insert),
            secs(component),
            secs(stats.data_source_access),
            secs(stats.total_time()),
        );
    }

    println!("\nASCII stacked bars (normalized per source):");
    for stats in &bench.stats {
        let total = stats.total_time().as_secs_f64().max(1e-9);
        let segs = [
            ("C", stats.catalog_insert.as_secs_f64()),
            (
                "I",
                (stats.component_indexing + stats.conversion).as_secs_f64(),
            ),
            ("A", stats.data_source_access.as_secs_f64()),
        ];
        let mut bar = String::new();
        for (tag, value) in segs {
            let cells = ((value / total) * 40.0).round() as usize;
            for _ in 0..cells {
                bar.push_str(tag);
            }
        }
        println!("{:<14} |{bar}|", stats.source);
    }
    println!("(C = catalog insert, I = component indexing, A = data source access)");

    println!("\nPaper shape (Figure 5): filesystem ≈ 22 min with roughly half");
    println!("spent on component indexing; email ≈ 68 min dominated by data");
    println!("source access. Shape checks:");
    for stats in &bench.stats {
        let component = stats.component_indexing + stats.conversion;
        match stats.source.as_str() {
            "filesystem" => {
                let share = component.as_secs_f64() / stats.total_time().as_secs_f64().max(1e-9);
                println!(
                    "  filesystem: component indexing share = {:.0}% (paper ≈ 50%)",
                    share * 100.0
                );
            }
            "imap" => {
                let share = stats.data_source_access.as_secs_f64()
                    / stats.total_time().as_secs_f64().max(1e-9);
                println!(
                    "  email: data source access share = {:.0}% (paper: dominant, ≈ 80%)",
                    share * 100.0
                );
            }
            _ => {}
        }
    }
    println!(
        "\n(total simulated IMAP latency: {} s)",
        secs(bench.dataset.imap.simulated_latency())
    );
}
