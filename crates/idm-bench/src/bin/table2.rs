//! Regenerates **Table 2** — characteristics of the personal dataset:
//! resource views per data source, split into base items and views
//! derived from XML/LaTeX content, plus total sizes.
//!
//! `cargo run --release -p idm-bench --bin table2 -- --sf 0.1`

use idm_bench::{build, cli_options, mb};

fn main() {
    let options = cli_options();
    println!(
        "Table 2 — dataset characteristics (scale factor {}, paper = 1.0)\n",
        options.scale
    );
    let bench = build(options);

    let paper: &[(&str, [i64; 7])] = &[
        // (source, [size MB, base f&f, base email, base total, xml, latex, total views])
        (
            "Filesystem",
            [4_243, 14_297, 0, 14_297, 117_298, 11_528, 143_123],
        ),
        ("Email / IMAP", [189, 0, 6_335, 6_335, 672, 350, 7_357]),
        (
            "Total",
            [4_435, 14_297, 6_335, 20_632, 117_970, 11_878, 150_480],
        ),
    ];

    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "Data Source",
        "Size (MB)",
        "Base views",
        "XML-derived",
        "LaTeX-der.",
        "Derived",
        "Total views"
    );
    let mut totals = (0u64, 0usize, 0usize, 0usize);
    for stats in &bench.stats {
        let label = match stats.source.as_str() {
            "filesystem" => "Filesystem",
            "imap" => "Email / IMAP",
            other => other,
        };
        println!(
            "{:<14} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
            label,
            mb(stats.total_content_bytes),
            stats.base_views,
            stats.derived_xml,
            stats.derived_latex,
            stats.derived_views(),
            stats.total_views()
        );
        totals.0 += stats.total_content_bytes;
        totals.1 += stats.base_views;
        totals.2 += stats.derived_views();
        totals.3 += stats.total_views();
    }
    println!(
        "{:<14} {:>10} {:>12} {:>25} {:>12} {:>12}",
        "Total",
        mb(totals.0),
        totals.1,
        "",
        totals.2,
        totals.3
    );

    println!("\nPaper values (scale 1.0) for comparison:");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "Data Source", "Size (MB)", "Base total", "XML-derived", "LaTeX-der.", "Total views"
    );
    for (label, row) in paper {
        println!(
            "{:<14} {:>10} {:>12} {:>12} {:>12} {:>12}",
            label, row[0], row[3], row[4], row[5], row[6]
        );
    }

    let c = &bench.dataset.counts;
    println!(
        "\nGenerator composition: {} fs items, {} emails ({} mail folders, {} attachments),",
        c.fs_items, c.emails, c.mail_folders, c.attachments
    );
    println!(
        "{} + {} XML docs, {} + {} LaTeX docs (filesystem + email).",
        c.fs_xml_docs, c.email_xml_docs, c.fs_latex_docs, c.email_latex_docs
    );
    println!(
        "\nShape check: derived views {}x the base items (paper: {:.1}x).",
        totals.2 / totals.1.max(1),
        129_848.0 / 20_632.0
    );
}
