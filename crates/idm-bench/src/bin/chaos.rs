//! Deterministic chaos driver — runs the whole-system simulator
//! ([`idm_system::run_sim`]) across a seed range and fails loudly on
//! the first violating seed, printing everything needed to reproduce:
//! the seed itself (the run is a pure function of it), the violations,
//! and the full event log.
//!
//! ```sh
//! cargo run --release -p idm-bench --bin chaos -- --seeds 200
//! cargo run --release -p idm-bench --bin chaos -- --seed 1337 --ops 500
//! ```
//!
//! CI runs `--seeds 200` (the `sim-chaos` job); a red run prints
//! `FAILING SEED <n>` — rerun that seed locally with `--seed <n>` to
//! get the identical schedule.

use idm_system::{run_sim, SimConfig};

struct Args {
    seeds: u64,
    first_seed: u64,
    single: Option<u64>,
    ops: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 200,
        first_seed: 1,
        single: None,
        ops: 120,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--seeds" => {
                if let Some(n) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    args.seeds = n;
                }
                i += 2;
            }
            "--first-seed" => {
                if let Some(n) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    args.first_seed = n;
                }
                i += 2;
            }
            "--seed" => {
                args.single = argv.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--ops" => {
                if let Some(n) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                    args.ops = n;
                }
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn run_seed(seed: u64, ops: usize, verbose: bool) -> bool {
    let outcome = match run_sim(&SimConfig::new(seed, ops)) {
        Ok(outcome) => outcome,
        Err(e) => {
            println!("FAILING SEED {seed}: hard error: {e}");
            return false;
        }
    };
    if verbose {
        println!("seed {seed}: fingerprint {:#018x}", outcome.fingerprint);
        println!("{:#?}", outcome.counters);
        for event in &outcome.events {
            println!("  {event}");
        }
    }
    if outcome.violations.is_empty() {
        return true;
    }
    println!(
        "FAILING SEED {seed} ({} violation(s), fingerprint {:#018x})",
        outcome.violations.len(),
        outcome.fingerprint
    );
    for violation in &outcome.violations {
        println!("  VIOLATION {violation}");
    }
    println!("  event log:");
    for event in &outcome.events {
        println!("    {event}");
    }
    false
}

fn main() {
    let args = parse_args();
    if let Some(seed) = args.single {
        let ok = run_seed(seed, args.ops, true);
        std::process::exit(if ok { 0 } else { 1 });
    }

    let mut totals = (0u64, 0u64);
    for seed in args.first_seed..args.first_seed + args.seeds {
        if run_seed(seed, args.ops, false) {
            totals.0 += 1;
        } else {
            totals.1 += 1;
        }
        if seed % 50 == 0 {
            println!("... {} seed(s) done", seed - args.first_seed + 1);
        }
    }
    println!(
        "chaos: {} seed(s) passed, {} failed ({} ops each)",
        totals.0, totals.1, args.ops
    );
    if totals.1 > 0 {
        std::process::exit(1);
    }
}
