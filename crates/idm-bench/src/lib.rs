//! # idm-bench — the evaluation harness (Section 7)
//!
//! Shared machinery for regenerating every table and figure of the
//! paper's evaluation over the synthetic personal dataspace:
//!
//! | Target | Binary | Criterion bench |
//! |---|---|---|
//! | Table 2 (dataset characteristics) | `table2` | — |
//! | Table 3 (index sizes) | `table3` | — |
//! | Figure 5 (indexing times) | `figure5` | `indexing` |
//! | Table 4 (queries + result counts) | `table4` | — |
//! | Figure 6 (query response times) | `figure6` | `queries` |
//! | Expansion-strategy ablation (ours) | — | `expansion` |
//! | Index micro-benchmarks (ours) | — | `components` |
//! | Converter throughput (ours) | — | `converters` |
//!
//! Run binaries as
//! `cargo run --release -p idm-bench --bin table4 -- --sf 0.1`.

#![warn(missing_docs)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use idm_core::durability::{DurabilityOptions, SyncPolicy, GROUP_HISTOGRAM_BUCKETS};
use idm_dataset::{generate, DatasetConfig, GeneratedDataset};
use idm_email::LatencyModel;
use idm_query::{ExpansionStrategy, QueryProcessor};
use idm_system::{BulkIngestOptions, FsPlugin, ImapPlugin, Pdsms, RssPlugin, SourceIngestStats};
use idm_vfs::NodeId;

/// The Table 4 queries, verbatim from the paper.
pub const TABLE4_QUERIES: [(&str, &str); 8] = [
    ("Q1", r#""database""#),
    ("Q2", r#""database tuning""#),
    ("Q3", r#"[size > 420000 and lastmodified < @12.06.2005]"#),
    ("Q4", r#"//papers//*Vision/*["Franklin"]"#),
    ("Q5", r#"//VLDB200?//?onclusion*/*["systems"]"#),
    (
        "Q6",
        r#"union( //VLDB2005//*["documents"], //VLDB2006//*["documents"])"#,
    ),
    (
        "Q7",
        r#"join( //VLDB2006//*[class="texref"] as A, //VLDB2006//*[class="environment"]//figure* as B, A.name=B.tuple.label)"#,
    ),
    (
        "Q8",
        r#"join ( //*[class="emailmessage"]//*.tex as A, //papers//*.tex as B, A.name = B.name )"#,
    ),
];

/// Result counts the paper reports for Q1–Q8 (Table 4).
pub const PAPER_RESULT_COUNTS: [usize; 8] = [941, 39, 88, 2, 2, 31, 21, 16];

/// A fully built dataspace system ready for measurements.
pub struct Workbench {
    /// The generated dataset (sources + ground truth).
    pub dataset: GeneratedDataset,
    /// The PDSMS over it.
    pub system: Pdsms,
    /// Per-source ingestion statistics.
    pub stats: Vec<SourceIngestStats>,
    /// Wall time of the full ingestion.
    pub ingest_time: Duration,
}

/// Workbench build options.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Dataset scale factor (1.0 ≈ paper size).
    pub scale: f64,
    /// Scale of the simulated IMAP latency (0 disables it).
    pub imap_latency_scale: f64,
    /// Scale of the simulated IDE-disk latency (0 disables it).
    pub fs_latency_scale: f64,
    /// Whether the IMAP server sleeps its latency (end-to-end timing)
    /// or only accounts it.
    pub imap_sleep: bool,
    /// Whether to register the RSS source as well.
    pub with_rss: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            scale: 0.05,
            imap_latency_scale: 1.0,
            fs_latency_scale: 0.25,
            imap_sleep: true,
            with_rss: false,
        }
    }
}

/// Generates the dataset and registers the sources, without ingesting.
fn assemble(options: BuildOptions) -> (GeneratedDataset, Pdsms) {
    let config = DatasetConfig {
        scale: options.scale,
        imap_latency: if options.imap_latency_scale > 0.0 {
            LatencyModel::remote_2005(options.imap_latency_scale)
        } else {
            LatencyModel::none()
        },
        imap_sleep: options.imap_sleep,
        ..DatasetConfig::default()
    };
    let dataset = generate(config);
    if options.fs_latency_scale > 0.0 {
        dataset
            .fs
            .set_latency(idm_vfs::DiskLatency::ide_2005(options.fs_latency_scale));
    }

    let mut system = Pdsms::new();
    system.register_source(Arc::new(FsPlugin::new(
        Arc::clone(&dataset.fs),
        NodeId::ROOT,
    )));
    system.register_source(Arc::new(ImapPlugin::new(Arc::clone(&dataset.imap))));
    if options.with_rss {
        system.register_source(Arc::new(RssPlugin::new(
            Arc::clone(&dataset.feeds),
            dataset.feed_urls.clone(),
        )));
    }
    (dataset, system)
}

/// Builds a workbench: generate the dataset, register the sources,
/// ingest and index everything.
pub fn build(options: BuildOptions) -> Workbench {
    let (dataset, system) = assemble(options);
    let start = Instant::now();
    let stats = system.index_all().expect("ingestion succeeds");
    let ingest_time = start.elapsed();

    Workbench {
        dataset,
        system,
        stats,
        ingest_time,
    }
}

/// How a measured ingest run drives the write path.
#[derive(Debug, Clone, Copy)]
pub enum IngestMode {
    /// `index_all`: record-at-a-time appends and inline indexing.
    Sequential,
    /// `index_all_bulk` with the given tuning.
    Bulk(BulkIngestOptions),
}

impl IngestMode {
    /// Short label for reports ("sequential" / "bulk").
    pub fn label(&self) -> &'static str {
        match self {
            IngestMode::Sequential => "sequential",
            IngestMode::Bulk(_) => "bulk",
        }
    }
}

/// One measured ingest run — a row of `BENCH_ingest.json`.
#[derive(Debug, Clone)]
pub struct IngestMeasurement {
    /// `"sequential"` or `"bulk"`.
    pub mode: &'static str,
    /// Dataset scale factor.
    pub scale: f64,
    /// Views ingested (base + derived, all sources).
    pub views: usize,
    /// Wall time of the ingest.
    pub elapsed: Duration,
    /// WAL records appended (0 when not durable).
    pub wal_records: u64,
    /// WAL write groups issued.
    pub wal_batches: u64,
    /// Fsyncs issued by the WAL writer.
    pub fsyncs: u64,
    /// Fsyncs avoided versus one-per-record.
    pub fsyncs_saved: u64,
    /// Index segments built by the bulk pipeline.
    pub segments: usize,
    /// Largest coalesced write group.
    pub largest_group: u64,
    /// Power-of-two group-size histogram (bucket i = groups of
    /// `[2^i, 2^(i+1))` records; the last bucket is open-ended).
    pub histogram: [u64; GROUP_HISTOGRAM_BUCKETS],
}

impl IngestMeasurement {
    /// Ingested views per second.
    pub fn views_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.views as f64 / secs
        } else {
            0.0
        }
    }

    /// The row as a JSON object (hand-rolled; no serde in-tree).
    pub fn to_json(&self) -> String {
        let histogram = self
            .histogram
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"mode\":\"{}\",\"sf\":{},\"views\":{},\"elapsed_s\":{:.4},",
                "\"views_per_sec\":{:.1},\"wal_records\":{},\"wal_batches\":{},",
                "\"fsyncs\":{},\"fsyncs_saved\":{},\"segments\":{},",
                "\"largest_group\":{},\"batch_size_histogram\":[{}]}}"
            ),
            self.mode,
            self.scale,
            self.views,
            self.elapsed.as_secs_f64(),
            self.views_per_sec(),
            self.wal_records,
            self.wal_batches,
            self.fsyncs,
            self.fsyncs_saved,
            self.segments,
            self.largest_group,
            histogram
        )
    }
}

/// Builds a workbench, durable when `wal_dir` is given (under
/// `SyncPolicy::Fsync`, so fsync counts measure real write barriers),
/// ingesting through the chosen mode and measuring the write path.
pub fn build_measured(
    options: BuildOptions,
    wal_dir: Option<&std::path::Path>,
    mode: IngestMode,
) -> (Workbench, IngestMeasurement) {
    let (dataset, mut system) = assemble(options);
    if let Some(dir) = wal_dir {
        system
            .make_durable_with(dir, DurabilityOptions::new(SyncPolicy::Fsync))
            .expect("make durable");
    }

    let before = system.store().wal_telemetry();
    let start = Instant::now();
    let (stats, segments) = match mode {
        IngestMode::Sequential => (system.index_all().expect("ingestion succeeds"), 0),
        IngestMode::Bulk(bulk) => {
            let report = system.index_all_bulk(&bulk).expect("ingestion succeeds");
            let segments = report.throughput.segments;
            (report.stats, segments)
        }
    };
    let elapsed = start.elapsed();
    let after = system.store().wal_telemetry();

    let mut measurement = IngestMeasurement {
        mode: mode.label(),
        scale: options.scale,
        views: stats.iter().map(SourceIngestStats::total_views).sum(),
        elapsed,
        wal_records: 0,
        wal_batches: 0,
        fsyncs: 0,
        fsyncs_saved: 0,
        segments,
        largest_group: 0,
        histogram: [0; GROUP_HISTOGRAM_BUCKETS],
    };
    if let (Some(before), Some(after)) = (before, after) {
        measurement.wal_records = after.frames - before.frames;
        measurement.wal_batches = after.groups - before.groups;
        measurement.fsyncs = after.syncs - before.syncs;
        measurement.fsyncs_saved = after.syncs_saved().saturating_sub(before.syncs_saved());
        measurement.largest_group = after.largest_group;
        for (i, bucket) in measurement.histogram.iter_mut().enumerate() {
            *bucket = after.histogram[i] - before.histogram[i];
        }
    }

    let workbench = Workbench {
        dataset,
        system,
        stats,
        ingest_time: elapsed,
    };
    (workbench, measurement)
}

impl Workbench {
    /// A query processor with the given expansion strategy.
    pub fn processor(&self, strategy: ExpansionStrategy) -> QueryProcessor {
        let mut processor = self.system.query_processor();
        processor.set_expansion(strategy);
        processor
    }

    /// Executes one of the Table 4 queries (0-based index), returning
    /// the result count.
    pub fn run_query(&self, index: usize, strategy: ExpansionStrategy) -> usize {
        let (_name, iql) = TABLE4_QUERIES[index];
        self.processor(strategy)
            .execute(iql)
            .unwrap_or_else(|e| panic!("query {index} failed: {e}"))
            .rows
            .len()
    }

    /// The expected (planted) result counts at this scale.
    pub fn expected_counts(&self) -> [usize; 8] {
        let e = self.dataset.expected;
        [e.q1, e.q2, e.q3, e.q4, e.q5, e.q6, e.q7, e.q8]
    }

    /// Total views by source, from the catalog.
    pub fn views_by_source(&self, source: &str) -> usize {
        self.system.indexes().catalog.by_source(source).len()
    }

    /// Warm-cache timing of a query: runs it `warmup + runs` times,
    /// averaging the last `runs` (the paper reports warm-cache averages
    /// once the deviation is small).
    pub fn time_query(&self, iql: &str, strategy: ExpansionStrategy, runs: usize) -> Duration {
        let processor = self.processor(strategy);
        for _ in 0..2 {
            let _ = processor.execute(iql).expect("warmup run");
        }
        let start = Instant::now();
        for _ in 0..runs {
            let _ = processor.execute(iql).expect("timed run");
        }
        start.elapsed() / runs as u32
    }
}

/// Parses `--sf <f64>` (and `--imap-latency <f64>`) from argv, with
/// defaults. Used by every harness binary.
pub fn cli_options() -> BuildOptions {
    let mut options = BuildOptions::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--sf" | "--scale" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    options.scale = v;
                }
                i += 2;
            }
            "--fs-latency" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    options.fs_latency_scale = v;
                }
                i += 2;
            }
            "--imap-latency" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    options.imap_latency_scale = v;
                }
                i += 2;
            }
            "--no-imap-sleep" => {
                options.imap_sleep = false;
                i += 1;
            }
            "--rss" => {
                options.with_rss = true;
                i += 1;
            }
            _ => i += 1,
        }
    }
    options
}

/// Formats a byte count as MB with one decimal.
pub fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a duration as seconds with three decimals.
pub fn secs(duration: Duration) -> String {
    format!("{:.3}", duration.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The central reproduction check: the Table 4 queries return the
    /// planted counts on a small-scale workbench.
    #[test]
    fn table4_counts_match_expectations_at_small_scale() {
        let bench = build(BuildOptions {
            scale: 0.02,
            imap_latency_scale: 0.0,
            fs_latency_scale: 0.0,
            imap_sleep: false,
            with_rss: false,
        });
        let expected = bench.expected_counts();
        for (i, (name, _)) in TABLE4_QUERIES.iter().enumerate() {
            let measured = bench.run_query(i, ExpansionStrategy::Forward);
            assert_eq!(
                measured, expected[i],
                "{name}: measured {measured} vs planted {}",
                expected[i]
            );
        }
    }

    #[test]
    fn strategies_agree_on_table4() {
        let bench = build(BuildOptions {
            scale: 0.02,
            imap_latency_scale: 0.0,
            fs_latency_scale: 0.0,
            imap_sleep: false,
            with_rss: false,
        });
        for i in 0..TABLE4_QUERIES.len() {
            let forward = bench.run_query(i, ExpansionStrategy::Forward);
            let backward = bench.run_query(i, ExpansionStrategy::Backward);
            let bidi = bench.run_query(i, ExpansionStrategy::Bidirectional);
            assert_eq!(forward, backward, "Q{} fwd vs bwd", i + 1);
            assert_eq!(forward, bidi, "Q{} fwd vs bidi", i + 1);
        }
    }

    #[test]
    fn figure5_shape_email_access_dominates() {
        let bench = build(BuildOptions {
            scale: 0.02,
            imap_latency_scale: 1.0,
            fs_latency_scale: 1.0,
            imap_sleep: true,
            with_rss: false,
        });
        let email = bench
            .stats
            .iter()
            .find(|s| s.source == "imap")
            .expect("email stats");
        // The paper's key observation: email indexing is dominated by
        // data source access.
        assert!(
            email.data_source_access > email.component_indexing + email.catalog_insert,
            "access {:?} vs rest {:?}",
            email.data_source_access,
            email.component_indexing + email.catalog_insert
        );
    }
}
