//! Plan/exec agreement over the paper's Q1–Q8 workload: the operators
//! named in the rendered plan ARE the operators the executor counts in
//! `ExecStats::ops`, at any parallelism — EXPLAIN cannot drift from
//! execution because both walk the same plan object.

use idm_bench::{build, BuildOptions, TABLE4_QUERIES};
use idm_query::{BuildSide, ExecOptions, ExpansionStrategy, OperatorCounts, Plan, PlanOp};

fn bench_options() -> BuildOptions {
    BuildOptions {
        scale: 0.02,
        imap_latency_scale: 0.0,
        fs_latency_scale: 0.0,
        imap_sleep: false,
        with_rss: false,
    }
}

/// Counts the operator keywords in a rendered plan. Every render line
/// starts with exactly one operator name, so text counts must equal the
/// structural [`Plan::operator_counts`].
fn counts_from_text(rendered: &str) -> OperatorCounts {
    let mut counts = OperatorCounts::default();
    for line in rendered.lines() {
        let line = line.trim_start();
        if line.starts_with("IndexAccess ") {
            counts.index_accesses += 1;
        } else if line.starts_with("Scan ") {
            counts.scans += 1;
        } else if line.starts_with("Intersect ") {
            counts.intersects += 1;
        } else if line.starts_with("Union ") {
            counts.unions += 1;
        } else if line.starts_with("Complement ") {
            counts.complements += 1;
        } else if line.starts_with("Relate ") {
            counts.relates += 1;
        } else if line.starts_with("HashJoin ") {
            counts.hash_joins += 1;
        } else {
            panic!("unrecognized plan line: {line:?}");
        }
    }
    counts
}

#[test]
fn q1_to_q8_plans_agree_with_execution_at_any_parallelism() {
    let bench = build(bench_options());
    let sequential = bench.processor(ExpansionStrategy::Forward);
    let parallel = bench
        .processor(ExpansionStrategy::Forward)
        .with_options(ExecOptions {
            parallelism: 4,
            ..ExecOptions::default()
        });

    for (qname, iql) in TABLE4_QUERIES {
        let plan = sequential.plan_iql(iql).expect(qname);
        let planned = plan.operator_counts();
        assert_eq!(
            counts_from_text(&plan.render()),
            planned,
            "{qname}: rendered operators differ from the plan tree"
        );

        let seq = sequential.execute(iql).expect(qname);
        assert_eq!(
            seq.stats.ops, planned,
            "{qname}: executed operators differ from the plan (sequential)"
        );

        let par = parallel.execute(iql).expect(qname);
        assert_eq!(par.rows, seq.rows, "{qname}: parallel rows differ");
        assert_eq!(
            par.stats.ops, planned,
            "{qname}: executed operators differ from the plan (parallelism 4)"
        );
    }
}

/// Snapshot of the operator shapes EXPLAIN must name for the workload —
/// the index accesses, expansions and joins of Table 4, as rendered
/// from the executable plan.
#[test]
fn q1_to_q8_explain_snapshots() {
    let bench = build(bench_options());
    let processor = bench.processor(ExpansionStrategy::Forward);
    let explain = |iql: &str| processor.explain(iql).expect("plan renders");

    let expectations: [(&str, &[&str]); 8] = [
        ("Q1", &[r#"IndexAccess ContentIndex phrase "database""#]),
        (
            "Q2",
            &[r#"IndexAccess ContentIndex phrase "database tuning""#],
        ),
        (
            "Q3",
            &[
                "Intersect (2 inputs, smallest-estimate first)",
                "IndexAccess TupleIndex size",
                "IndexAccess TupleIndex lastmodified",
            ],
        ),
        (
            "Q4",
            &[
                "Relate indirectly-related (//), Forward expansion",
                "Relate directly-related (/), Forward expansion",
                "IndexAccess NameIndex exact 'papers'",
                "IndexAccess NameIndex wildcard '*Vision'",
                r#"IndexAccess ContentIndex phrase "Franklin""#,
            ],
        ),
        (
            "Q5",
            &[
                "IndexAccess NameIndex wildcard 'VLDB200?'",
                "IndexAccess NameIndex wildcard '?onclusion*'",
                r#"IndexAccess ContentIndex phrase "systems""#,
            ],
        ),
        (
            "Q6",
            &[
                "Union (2 inputs, dedup)",
                "IndexAccess NameIndex exact 'VLDB2005'",
                "IndexAccess NameIndex exact 'VLDB2006'",
            ],
        ),
        (
            "Q7",
            &[
                "HashJoin on A.name = B.tuple.label",
                "IndexAccess Catalog class 'texref' (+ specializations)",
                "IndexAccess Catalog class 'environment' (+ specializations)",
                "IndexAccess NameIndex wildcard 'figure*'",
            ],
        ),
        (
            "Q8",
            &[
                "HashJoin on A.name = B.name",
                "IndexAccess Catalog class 'emailmessage' (+ specializations)",
                "IndexAccess NameIndex wildcard '*.tex'",
            ],
        ),
    ];

    for ((qname, iql), (ename, fragments)) in TABLE4_QUERIES.iter().zip(expectations) {
        assert_eq!(*qname, ename);
        let rendered = explain(iql);
        for fragment in fragments {
            assert!(
                rendered.contains(fragment),
                "{qname}: expected {fragment:?} in plan:\n{rendered}"
            );
        }
    }
}

/// The cost-driven rewrites are visible in the plan: intersections are
/// ordered by ascending estimate, and hash joins build on the side the
/// estimator says is smaller.
#[test]
fn rewrites_follow_cost_estimates() {
    let bench = build(bench_options());
    let processor = bench.processor(ExpansionStrategy::Forward);

    fn walk(node: &idm_query::PlanNode, seen: &mut usize) {
        match &node.op {
            PlanOp::Intersect(inputs) => {
                assert!(
                    inputs.windows(2).all(|w| w[0].est.rows <= w[1].est.rows),
                    "intersection inputs not estimate-ordered: {:?}",
                    inputs.iter().map(|n| n.est.rows).collect::<Vec<_>>()
                );
                *seen += 1;
                for input in inputs {
                    walk(input, seen);
                }
            }
            PlanOp::HashJoin {
                left, right, build, ..
            } => {
                let expected = if left.est.rows <= right.est.rows {
                    BuildSide::Left
                } else {
                    BuildSide::Right
                };
                assert_eq!(
                    *build, expected,
                    "build side contradicts estimates ({} vs {})",
                    left.est.rows, right.est.rows
                );
                *seen += 1;
                walk(left, seen);
                walk(right, seen);
            }
            PlanOp::UnionOp(inputs) => {
                for input in inputs {
                    walk(input, seen);
                }
            }
            PlanOp::Complement(inner) => walk(inner, seen),
            PlanOp::Relate {
                context,
                candidates,
                ..
            } => {
                walk(context, seen);
                walk(candidates, seen);
            }
            PlanOp::IndexAccess(_) | PlanOp::Scan => {}
        }
    }

    let mut cost_decisions = 0usize;
    for (qname, iql) in TABLE4_QUERIES {
        let plan: Plan = processor.plan_iql(iql).expect(qname);
        walk(&plan.root, &mut cost_decisions);
    }
    assert!(
        cost_decisions >= 3,
        "workload exercised too few cost decisions ({cost_decisions})"
    );
}
