//! Parallel-execution determinism: `parallelism = 1` and `parallelism = N`
//! must return identical, identically-ordered rows for the whole seed query
//! suite, across every expansion strategy, on repeated runs (run this under
//! `--release` too; the executor's chunking is deterministic by design).

use idm_bench::{build, BuildOptions, TABLE4_QUERIES};
use idm_query::{ExecOptions, ExpansionStrategy, QueryResult};

fn bench_options() -> BuildOptions {
    BuildOptions {
        scale: std::env::var("IDM_BENCH_SF")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.05),
        imap_latency_scale: 0.0,
        fs_latency_scale: 0.0,
        imap_sleep: false,
        with_rss: false,
    }
}

#[test]
fn parallel_execution_matches_sequential_rows_exactly() {
    let bench = build(bench_options());
    let strategies = [
        ExpansionStrategy::Forward,
        ExpansionStrategy::Backward,
        ExpansionStrategy::Bidirectional,
    ];
    // Several iterations: interleavings differ between runs, results must
    // not.
    for round in 0..3 {
        for strategy in strategies {
            let baseline: Vec<QueryResult> = {
                let processor = bench.processor(strategy);
                TABLE4_QUERIES
                    .iter()
                    .map(|(_, iql)| processor.execute(iql).expect("sequential run"))
                    .collect()
            };
            for parallelism in [2usize, 4, 8] {
                let processor = bench.processor(strategy).with_options(ExecOptions {
                    expansion: strategy,
                    parallelism,
                    ..ExecOptions::default()
                });
                for ((qname, iql), expect) in TABLE4_QUERIES.iter().zip(&baseline) {
                    let got = processor.execute(iql).expect("parallel run");
                    assert_eq!(
                        got.rows, expect.rows,
                        "{qname} rows differ (round {round}, {strategy:?}, \
                         parallelism {parallelism})"
                    );
                    // Candidate counts are interleaving-independent; only
                    // `nodes_expanded` may legally differ (chunk-local
                    // reverse-reachability caches).
                    assert_eq!(
                        got.stats.candidates_examined, expect.stats.candidates_examined,
                        "{qname} candidate counts differ (parallelism {parallelism})"
                    );
                }
            }
        }
    }
}

/// With the fault layer compiled in but no fault plan installed, every
/// substrate check is an inert no-op: query rows must be identical to a
/// run without the layer (this test runs under both feature sets in CI
/// and asserts self-consistency; the cross-feature comparison is the
/// two CI jobs agreeing on the same assertions).
#[test]
fn idle_fault_layer_leaves_query_rows_unchanged() {
    let bench = build(bench_options());
    let processor = bench.processor(ExpansionStrategy::Forward);
    let first: Vec<QueryResult> = TABLE4_QUERIES
        .iter()
        .map(|(_, iql)| processor.execute(iql).expect("first run"))
        .collect();
    for ((qname, iql), expect) in TABLE4_QUERIES.iter().zip(&first) {
        let got = processor.execute(iql).expect("second run");
        assert_eq!(got.rows, expect.rows, "{qname} rows changed");
        assert_eq!(
            got.stats.retries, 0,
            "{qname}: no fault plan installed, so no retries"
        );
        assert_eq!(
            got.stats.breaker_trips, 0,
            "{qname}: no fault plan installed, so no breaker trips"
        );
        assert_eq!(
            got.stats.stale_served, 0,
            "{qname}: nothing degraded, so no stale reads"
        );
    }
}

/// Planner determinism: the same query over the same catalog statistics
/// must produce a byte-identical plan — same render, same fingerprint —
/// on repeated plans and across independently constructed processors.
/// The result cache keys on the fingerprint, so any instability here
/// would silently turn cache hits into misses (or worse, collisions
/// into wrong answers).
#[test]
fn planning_is_deterministic_for_fixed_catalog_stats() {
    let bench = build(bench_options());
    let first = bench.processor(ExpansionStrategy::Forward);
    let second = bench.processor(ExpansionStrategy::Forward);
    for (qname, iql) in TABLE4_QUERIES {
        let a = first.plan_iql(iql).expect(qname);
        let b = first.plan_iql(iql).expect(qname);
        let c = second.plan_iql(iql).expect(qname);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "{qname}: fingerprint unstable across repeated plans"
        );
        assert_eq!(
            a.fingerprint(),
            c.fingerprint(),
            "{qname}: fingerprint differs between processors over the same stats"
        );
        assert_eq!(
            a.render(),
            c.render(),
            "{qname}: rendered plan differs between processors"
        );
        assert_eq!(
            a.render_with_estimates(),
            c.render_with_estimates(),
            "{qname}: estimates differ between processors over the same stats"
        );
    }
}

/// Different expansion strategies are different plans: the strategy is
/// part of the recorded plan, so path queries must fingerprint apart
/// (the result cache must never serve a Forward result to a Backward
/// processor).
#[test]
fn fingerprints_separate_expansion_strategies() {
    let bench = build(bench_options());
    let forward = bench.processor(ExpansionStrategy::Forward);
    let backward = bench.processor(ExpansionStrategy::Backward);
    // Q4 is a path query, so its plan contains Relate nodes.
    let (_, q4) = TABLE4_QUERIES[3];
    let f = forward.plan_iql(q4).expect("forward plan");
    let b = backward.plan_iql(q4).expect("backward plan");
    assert_ne!(
        f.fingerprint(),
        b.fingerprint(),
        "strategy must be part of the plan identity"
    );
    // Q1 has no Relate nodes; the strategy is irrelevant and the plans
    // coincide — maximizing cache sharing where it is safe.
    let (_, q1) = TABLE4_QUERIES[0];
    assert_eq!(
        forward.plan_iql(q1).expect("q1").fingerprint(),
        backward.plan_iql(q1).expect("q1").fingerprint(),
        "strategy-independent plans should share a fingerprint"
    );
}

#[test]
fn parallelism_one_is_the_default_and_bitwise_stable() {
    let bench = build(bench_options());
    let p1 = bench.processor(ExpansionStrategy::Forward);
    assert_eq!(p1.options().parallelism, 1, "sequential by default");
    for (qname, iql) in TABLE4_QUERIES {
        let a = p1.execute(iql).expect("run a");
        let b = p1.execute(iql).expect("run b");
        assert_eq!(a.rows, b.rows, "{qname} not stable across runs");
        assert_eq!(
            a.stats.nodes_expanded, b.stats.nodes_expanded,
            "{qname} sequential stats not stable"
        );
    }
}
