//! The full Replica&Indexes bundle: one of each per-component structure
//! plus the catalog, with the maintenance logic that keeps them in sync
//! with a [`ViewStore`]. This is the physical layer the iQL query
//! processor runs against and the unit whose sizes Table 3 reports.

use idm_core::prelude::*;

use crate::catalog::{CatalogEntry, ResourceViewCatalog};
use crate::fulltext::FullTextIndex;
use crate::group::GroupReplica;
use crate::name::NameIndex;
use crate::tuple::TupleIndex;

/// Per-index byte sizes (one Table 3 row).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexSizes {
    /// Name index & replica.
    pub name: usize,
    /// Tuple index & replica.
    pub tuple: usize,
    /// Content (full-text) index.
    pub content: usize,
    /// Group replica.
    pub group: usize,
    /// Resource view catalog.
    pub catalog: usize,
}

impl IndexSizes {
    /// Sum of all structures.
    pub fn total(&self) -> usize {
        self.name + self.tuple + self.content + self.group + self.catalog
    }
}

/// All indexes, replicas and the catalog of one dataspace.
#[derive(Default)]
pub struct IndexBundle {
    /// Name Index & Replica.
    pub name: NameIndex,
    /// Tuple Index & Replica.
    pub tuple: TupleIndex,
    /// Content Index (full text; not a replica).
    pub content: FullTextIndex,
    /// Group Replica (forward + reverse adjacency).
    pub group: GroupReplica,
    /// Resource View Catalog.
    pub catalog: ResourceViewCatalog,
}

/// What [`IndexBundle::index_view`] did with a view's content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentIndexing {
    /// Content was empty; nothing to index.
    Empty,
    /// Content was textual and went into the content index.
    Indexed {
        /// Number of bytes handed to the index (net input size).
        bytes: usize,
    },
    /// Content was binary or infinite; only its size was recorded.
    Skipped,
}

/// Heuristic: is this finite content textual (indexable)?
/// NUL bytes in the head mark binary formats (images, archives, …).
pub fn is_texty(bytes: &[u8]) -> bool {
    !bytes.iter().take(512).any(|b| *b == 0)
}

impl IndexBundle {
    /// An empty bundle.
    pub fn new() -> Self {
        IndexBundle::default()
    }

    /// Registers one view in the catalog and inserts its components into
    /// all four index structures. `source` labels the data source for
    /// Table 2/3-style accounting.
    ///
    /// Equivalent to [`IndexBundle::index_components`] followed by
    /// [`IndexBundle::register_in_catalog`]; the Resource View Manager
    /// calls the two halves separately so the Figure 5 phases (Catalog
    /// Insert vs. Component Indexing) can be timed independently.
    pub fn index_view(&self, store: &ViewStore, vid: Vid, source: &str) -> Result<ContentIndexing> {
        let outcome = self.index_components(store, vid)?;
        self.register_in_catalog(store, vid, source, outcome)?;
        Ok(outcome)
    }

    /// Inserts a view's components into the four index structures
    /// (Figure 5's "Component Indexing" phase).
    ///
    /// Lazy groups are **not** forced here; callers decide when the graph
    /// expands (the synchronization manager forces during ingestion, the
    /// lazy demo paths don't). Infinite groups are skipped — they are
    /// managed through stream windows, not replicas.
    pub fn index_components(&self, store: &ViewStore, vid: Vid) -> Result<ContentIndexing> {
        // Borrow-based access: the name and tuple are indexed in place
        // under the store's shard read lock instead of cloning the full
        // record per view (the index structures never call back into the
        // store, so no lock-order inversion is possible).
        store.with_name(vid, |name| {
            if let Some(name) = name {
                self.name.index(vid, name);
            }
        })?;
        store.with_tuple(vid, |tuple| {
            if let Some(tuple) = tuple {
                self.tuple.index(vid, tuple);
            }
        })?;

        // Content and group handles are cheap clones (Arc / slice refs).
        let content = store.content(vid)?;
        let outcome = if content.is_empty() {
            ContentIndexing::Empty
        } else if content.is_finite() {
            let bytes = content.bytes()?;
            if is_texty(&bytes) {
                let text = String::from_utf8_lossy(&bytes);
                self.content.index(vid, &text);
                ContentIndexing::Indexed { bytes: bytes.len() }
            } else {
                ContentIndexing::Skipped
            }
        } else {
            ContentIndexing::Skipped
        };

        // Group (materialized members only; see doc comment).
        match &store.group_handle(vid)? {
            Group::Materialized(data) => {
                let members: Vec<Vid> = data.members().collect();
                self.group.index(vid, &members);
            }
            Group::Lazy(lazy) => {
                if let Some(data) = lazy.is_materialized().then(|| {
                    // Re-force returns the cached value without computing.
                    lazy.force(store, vid)
                }) {
                    let members: Vec<Vid> = data?.members().collect();
                    self.group.index(vid, &members);
                }
            }
            Group::Empty | Group::InfiniteSeq(_) => {}
        }
        Ok(outcome)
    }

    /// Registers a view's catalog row (Figure 5's "Catalog Insert"
    /// phase). `outcome` reports what [`IndexBundle::index_components`]
    /// did with the content component.
    pub fn register_in_catalog(
        &self,
        store: &ViewStore,
        vid: Vid,
        source: &str,
        outcome: ContentIndexing,
    ) -> Result<()> {
        let content_size = match outcome {
            ContentIndexing::Indexed { bytes } => Some(bytes as u64),
            _ => store.content(vid)?.size_hint(),
        };
        self.catalog.register(CatalogEntry {
            vid: vid.as_u64(),
            name: store.with_name(vid, |n| n.unwrap_or_default().to_owned())?,
            class: store.class(vid)?.map(|c| store.classes().name(c)),
            source: source.to_owned(),
            content_size,
            content_indexed: matches!(outcome, ContentIndexing::Indexed { .. }),
        });
        Ok(())
    }

    /// Removes a view from every structure.
    pub fn remove_view(&self, vid: Vid) {
        if let Some(entry) = self.catalog.entry(vid) {
            if !entry.name.is_empty() {
                self.name.remove(vid, &entry.name);
            }
        }
        self.tuple.remove(vid);
        self.content.remove(vid);
        self.group.remove(vid);
        self.catalog.unregister(vid);
    }

    /// Current byte sizes of all structures.
    pub fn sizes(&self) -> IndexSizes {
        IndexSizes {
            name: self.name.footprint_bytes(),
            tuple: self.tuple.footprint_bytes(),
            content: self.content.footprint_bytes(),
            group: self.group.footprint_bytes(),
            catalog: self.catalog.footprint_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_core::class::builtin::names;

    fn fs_tuple(size: i64) -> TupleComponent {
        TupleComponent::of(vec![
            ("size", Value::Integer(size)),
            ("creation time", Value::Date(Timestamp(0))),
            ("last modified time", Value::Date(Timestamp(0))),
        ])
    }

    #[test]
    fn index_view_populates_all_structures() {
        let store = ViewStore::new();
        let bundle = IndexBundle::new();
        let child = store.build("child").insert();
        let vid = store
            .build("notes.txt")
            .tuple(fs_tuple(42))
            .text("searching for database tuning hints")
            .children(vec![child])
            .class_named(names::FILE)
            .insert();

        let outcome = bundle.index_view(&store, vid, "filesystem").unwrap();
        assert!(matches!(outcome, ContentIndexing::Indexed { bytes } if bytes > 0));

        assert_eq!(bundle.name.exact("notes.txt"), vec![vid]);
        assert_eq!(
            bundle
                .tuple
                .compare("size", crate::tuple::CompareOp::Eq, &Value::Integer(42)),
            vec![vid]
        );
        assert_eq!(bundle.content.phrase_query("database tuning"), vec![vid]);
        assert_eq!(bundle.group.children(vid), vec![child]);
        let entry = bundle.catalog.entry(vid).unwrap();
        assert_eq!(entry.class.as_deref(), Some("file"));
        assert_eq!(entry.source, "filesystem");
        assert!(entry.content_indexed);
    }

    #[test]
    fn binary_content_is_size_counted_not_indexed() {
        let store = ViewStore::new();
        let bundle = IndexBundle::new();
        let vid = store
            .build("photo.jpg")
            .content(Content::inline(vec![0xFFu8, 0xD8, 0x00, 0x10, 0x00]))
            .insert();
        let outcome = bundle.index_view(&store, vid, "filesystem").unwrap();
        assert_eq!(outcome, ContentIndexing::Skipped);
        let entry = bundle.catalog.entry(vid).unwrap();
        assert!(!entry.content_indexed);
        assert_eq!(entry.content_size, Some(5));
        assert_eq!(bundle.content.document_count(), 0);
    }

    #[test]
    fn unforced_lazy_groups_not_replicated() {
        let store = ViewStore::new();
        let bundle = IndexBundle::new();
        let provider = std::sync::Arc::new(|store: &ViewStore, _vid: Vid| {
            Ok(GroupData::of_set(vec![store.build("late").insert()]))
        });
        let vid = store.build("lazy").group(Group::lazy(provider)).insert();
        bundle.index_view(&store, vid, "fs").unwrap();
        assert!(bundle.group.children(vid).is_empty());

        // After forcing, re-indexing picks the members up.
        store.group(vid).unwrap();
        bundle.index_view(&store, vid, "fs").unwrap();
        assert_eq!(bundle.group.children(vid).len(), 1);
    }

    #[test]
    fn remove_view_clears_all_structures() {
        let store = ViewStore::new();
        let bundle = IndexBundle::new();
        let vid = store
            .build("gone.txt")
            .tuple(fs_tuple(1))
            .text("ephemeral words")
            .insert();
        bundle.index_view(&store, vid, "fs").unwrap();
        bundle.remove_view(vid);
        assert!(bundle.name.exact("gone.txt").is_empty());
        assert!(bundle.content.term_query("ephemeral").is_empty());
        assert!(bundle.tuple.tuple_of(vid).is_none());
        assert!(!bundle.catalog.contains(vid));
    }

    #[test]
    fn sizes_total_adds_up() {
        let store = ViewStore::new();
        let bundle = IndexBundle::new();
        for i in 0..50 {
            let vid = store
                .build(format!("doc{i}.txt"))
                .tuple(fs_tuple(i))
                .text(format!("document number {i} about dataspaces"))
                .insert();
            bundle.index_view(&store, vid, "fs").unwrap();
        }
        let sizes = bundle.sizes();
        assert_eq!(
            sizes.total(),
            sizes.name + sizes.tuple + sizes.content + sizes.group + sizes.catalog
        );
        assert!(sizes.content > 0 && sizes.name > 0 && sizes.catalog > 0);
    }
}
