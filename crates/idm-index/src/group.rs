//! The Group Replica: forward and reverse adjacency over group
//! components (Section 5.2).
//!
//! "One strategy could be to replicate the group components of all
//! resource views retrieved from remote data sources. As a consequence
//! queries referring to the group component can be executed exploiting
//! the replicas only" — this is that replica. The query processor's
//! forward/backward/bidirectional expansion strategies run entirely on
//! this structure.

use std::collections::{HashMap, HashSet, VecDeque};

use idm_core::prelude::Vid;
use parking_lot::RwLock;

#[derive(Default)]
struct Inner {
    forward: HashMap<Vid, Vec<Vid>>,
    reverse: HashMap<Vid, Vec<Vid>>,
    edges: usize,
}

/// The group component replica.
#[derive(Default)]
pub struct GroupReplica {
    inner: RwLock<Inner>,
}

impl GroupReplica {
    /// An empty replica.
    pub fn new() -> Self {
        GroupReplica::default()
    }

    /// Replicates a view's group members (replaces previous edges of
    /// that view).
    pub fn index(&self, parent: Vid, members: &[Vid]) {
        let mut inner = self.inner.write();
        if let Some(old) = inner.forward.remove(&parent) {
            inner.edges -= old.len();
            for child in old {
                if let Some(parents) = inner.reverse.get_mut(&child) {
                    parents.retain(|p| *p != parent);
                }
            }
        }
        if !members.is_empty() {
            inner.edges += members.len();
            inner.forward.insert(parent, members.to_vec());
            for child in members {
                inner.reverse.entry(*child).or_default().push(parent);
            }
        }
    }

    /// Removes a view entirely (as parent; in-edges pointing at it are
    /// kept — the dataspace tolerates dangling references).
    pub fn remove(&self, vid: Vid) {
        self.index(vid, &[]);
    }

    /// The directly related views of `vid` (out-edges).
    pub fn children(&self, vid: Vid) -> Vec<Vid> {
        self.inner
            .read()
            .forward
            .get(&vid)
            .cloned()
            .unwrap_or_default()
    }

    /// The views `vid` is directly related *from* (in-edges).
    pub fn parents(&self, vid: Vid) -> Vec<Vid> {
        self.inner
            .read()
            .reverse
            .get(&vid)
            .cloned()
            .unwrap_or_default()
    }

    /// All views indirectly related to `root` (forward BFS, cycle-safe).
    pub fn descendants(&self, root: Vid) -> Vec<Vid> {
        self.bfs(root, true)
    }

    /// All views from which `leaf` is indirectly reachable
    /// (reverse BFS, cycle-safe).
    pub fn ancestors(&self, leaf: Vid) -> Vec<Vid> {
        self.bfs(leaf, false)
    }

    fn bfs(&self, start: Vid, forward: bool) -> Vec<Vid> {
        let inner = self.inner.read();
        let adjacency = if forward {
            &inner.forward
        } else {
            &inner.reverse
        };
        let mut visited: HashSet<Vid> = HashSet::new();
        let mut queue: VecDeque<Vid> = [start].into();
        let mut out = Vec::new();
        let mut seen_start = false;
        while let Some(vid) = queue.pop_front() {
            for &next in adjacency.get(&vid).map(Vec::as_slice).unwrap_or(&[]) {
                if next == start {
                    // Start reachable from itself via a cycle: report once
                    // (matching idm_core::graph::descendants semantics).
                    if !seen_start {
                        seen_start = true;
                        out.push(start);
                    }
                    continue;
                }
                if visited.insert(next) {
                    out.push(next);
                    queue.push_back(next);
                }
            }
        }
        out
    }

    /// Whether `target` is indirectly related to `source`
    /// (`source →* target`), checked forward with early exit.
    pub fn reaches(&self, source: Vid, target: Vid) -> bool {
        let inner = self.inner.read();
        let mut visited: HashSet<Vid> = HashSet::new();
        let mut queue: VecDeque<Vid> = [source].into();
        while let Some(vid) = queue.pop_front() {
            for &next in inner.forward.get(&vid).map(Vec::as_slice).unwrap_or(&[]) {
                if next == target {
                    return true;
                }
                if visited.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        false
    }

    /// Exports the forward adjacency for persistence (the reverse side
    /// is derived on import).
    pub fn export_edges(&self) -> Vec<(u64, Vec<u64>)> {
        let inner = self.inner.read();
        let mut out: Vec<(u64, Vec<u64>)> = inner
            .forward
            .iter()
            .map(|(parent, children)| {
                (
                    parent.as_u64(),
                    children.iter().map(|c| c.as_u64()).collect(),
                )
            })
            .collect();
        out.sort_by_key(|(p, _)| *p);
        out
    }

    /// Rebuilds the replica (both directions) from exported edges.
    pub fn import_edges(&self, edges: Vec<(u64, Vec<u64>)>) {
        {
            let mut inner = self.inner.write();
            *inner = Inner::default();
        }
        for (parent, children) in edges {
            let children: Vec<Vid> = children.into_iter().map(Vid::from_raw).collect();
            self.index(Vid::from_raw(parent), &children);
        }
    }

    /// Number of replicated edges.
    pub fn edge_count(&self) -> usize {
        self.inner.read().edges
    }

    /// Serialized replica size in bytes: per view a varint header plus
    /// delta-varint member lists (both directions).
    pub fn footprint_bytes(&self) -> usize {
        fn varint(v: u64) -> usize {
            (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
        }
        fn side(map: &HashMap<Vid, Vec<Vid>>) -> usize {
            map.iter()
                .map(|(vid, members)| {
                    let mut bytes = varint(vid.as_u64()) + varint(members.len() as u64);
                    let mut prev = 0u64;
                    let mut sorted: Vec<u64> = members.iter().map(|m| m.as_u64()).collect();
                    sorted.sort_unstable();
                    for m in sorted {
                        bytes += varint(m.wrapping_sub(prev));
                        prev = m;
                    }
                    bytes
                })
                .sum()
        }
        let inner = self.inner.read();
        side(&inner.forward) + side(&inner.reverse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: u64) -> Vid {
        Vid::from_raw(i)
    }

    fn diamond() -> GroupReplica {
        // 1 → {2, 3}, 2 → 4, 3 → 4
        let replica = GroupReplica::new();
        replica.index(vid(1), &[vid(2), vid(3)]);
        replica.index(vid(2), &[vid(4)]);
        replica.index(vid(3), &[vid(4)]);
        replica
    }

    #[test]
    fn forward_and_reverse_edges() {
        let replica = diamond();
        assert_eq!(replica.children(vid(1)), vec![vid(2), vid(3)]);
        assert_eq!(replica.parents(vid(4)), vec![vid(2), vid(3)]);
        assert!(replica.children(vid(4)).is_empty());
        assert!(replica.parents(vid(1)).is_empty());
        assert_eq!(replica.edge_count(), 4);
    }

    #[test]
    fn descendants_and_ancestors() {
        let replica = diamond();
        let mut d = replica.descendants(vid(1));
        d.sort();
        assert_eq!(d, vec![vid(2), vid(3), vid(4)]);
        let mut a = replica.ancestors(vid(4));
        a.sort();
        assert_eq!(a, vec![vid(1), vid(2), vid(3)]);
    }

    #[test]
    fn reaches_with_cycles() {
        let replica = GroupReplica::new();
        replica.index(vid(1), &[vid(2)]);
        replica.index(vid(2), &[vid(3)]);
        replica.index(vid(3), &[vid(1)]); // cycle
        assert!(replica.reaches(vid(1), vid(3)));
        assert!(replica.reaches(vid(3), vid(2)));
        assert!(!replica.reaches(vid(1), vid(99)));
        // Self-reachability through the cycle.
        assert!(replica.reaches(vid(1), vid(1)));
        assert_eq!(replica.descendants(vid(1)).len(), 3);
    }

    #[test]
    fn reindex_replaces_edges() {
        let replica = diamond();
        replica.index(vid(1), &[vid(4)]);
        assert_eq!(replica.children(vid(1)), vec![vid(4)]);
        assert!(!replica.parents(vid(2)).contains(&vid(1)));
        assert!(replica.parents(vid(4)).contains(&vid(1)));
        assert_eq!(replica.edge_count(), 3);
    }

    #[test]
    fn remove_clears_out_edges_only() {
        let replica = diamond();
        replica.remove(vid(2));
        assert!(replica.children(vid(2)).is_empty());
        // In-edge 1 → 2 survives (dangling tolerated).
        assert!(replica.children(vid(1)).contains(&vid(2)));
        assert_eq!(replica.parents(vid(4)), vec![vid(3)]);
    }
}
