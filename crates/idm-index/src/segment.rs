//! Deferred index segments for bulk ingest.
//!
//! The record-at-a-time path ([`IndexBundle::index_view`]) interleaves
//! tokenization (CPU-heavy) with index-lock acquisition per view. Bulk
//! ingest instead *builds* an [`IndexSegment`] per chunk of views — all
//! store reads and tokenization, no index locks, safe to run on scoped
//! worker threads — and then *merges* the finished segments into the
//! live bundle in chunk order ([`IndexBundle::merge_segment`]).
//!
//! Merge invariants:
//!
//! - Chunks partition the ingest's vid-sorted view list contiguously,
//!   and segments are merged in chunk order, so every per-index insert
//!   happens in ascending-vid order — exactly the order the sequential
//!   path produces, keeping posting lists and replicas byte-identical.
//! - A segment captures the view *at build time*; like the sequential
//!   path, mutations racing an ingest are reconciled by the later
//!   re-index, not by the segment.
//! - Segments are process-local staging only — nothing here persists.
//!   The merged bundle is stamped with its LSN epoch at the next
//!   checkpoint (`save_with_epoch`), same as sequential ingest.

use idm_core::prelude::*;

use crate::bundle::{is_texty, ContentIndexing, IndexBundle};
use crate::catalog::CatalogEntry;
use crate::fulltext::{pretokenize, PretokenizedDoc};

/// One view's fully-prepared index contributions.
#[derive(Debug)]
struct SegmentEntry {
    vid: Vid,
    name: Option<String>,
    tuple: Option<TupleComponent>,
    doc: Option<PretokenizedDoc>,
    members: Option<Vec<Vid>>,
    outcome: ContentIndexing,
    catalog: CatalogEntry,
}

/// A batch of views' index contributions, built off the live bundle
/// (typically on a worker thread) and merged in with
/// [`IndexBundle::merge_segment`].
#[derive(Debug, Default)]
pub struct IndexSegment {
    entries: Vec<SegmentEntry>,
    /// Total bytes handed to the content index (net input size).
    net_input_bytes: u64,
}

impl IndexSegment {
    /// Prepares the index contributions of `vids` (one contiguous chunk
    /// of an ingest's view list). Reads the store — under its shard
    /// read locks — and tokenizes content, but touches no index.
    pub fn build(store: &ViewStore, vids: &[Vid], source: &str) -> Result<IndexSegment> {
        let mut segment = IndexSegment {
            entries: Vec::with_capacity(vids.len()),
            net_input_bytes: 0,
        };
        for &vid in vids {
            let name = store.with_name(vid, |name| name.map(ToOwned::to_owned))?;
            let tuple = store.with_tuple(vid, |tuple| tuple.cloned())?;

            let content = store.content(vid)?;
            let mut doc = None;
            let outcome = if content.is_empty() {
                ContentIndexing::Empty
            } else if content.is_finite() {
                let bytes = content.bytes()?;
                if is_texty(&bytes) {
                    doc = pretokenize(&String::from_utf8_lossy(&bytes));
                    segment.net_input_bytes += bytes.len() as u64;
                    ContentIndexing::Indexed { bytes: bytes.len() }
                } else {
                    ContentIndexing::Skipped
                }
            } else {
                ContentIndexing::Skipped
            };

            // Group members: materialized only, mirroring
            // `IndexBundle::index_components`.
            let members = match &store.group_handle(vid)? {
                Group::Materialized(data) => Some(data.members().collect::<Vec<Vid>>()),
                Group::Lazy(lazy) => {
                    if lazy.is_materialized() {
                        // Re-force returns the cached value without computing.
                        Some(lazy.force(store, vid)?.members().collect())
                    } else {
                        None
                    }
                }
                Group::Empty | Group::InfiniteSeq(_) => None,
            };

            let content_size = match outcome {
                ContentIndexing::Indexed { bytes } => Some(bytes as u64),
                _ => content.size_hint(),
            };
            let catalog = CatalogEntry {
                vid: vid.as_u64(),
                name: name.clone().unwrap_or_default(),
                class: store.class(vid)?.map(|c| store.classes().name(c)),
                source: source.to_owned(),
                content_size,
                content_indexed: matches!(outcome, ContentIndexing::Indexed { .. }),
            };

            segment.entries.push(SegmentEntry {
                vid,
                name,
                tuple,
                doc,
                members,
                outcome,
                catalog,
            });
        }
        Ok(segment)
    }

    /// Number of views in the segment.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the segment holds no views.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes handed to the content index.
    pub fn net_input_bytes(&self) -> u64 {
        self.net_input_bytes
    }

    /// Per-view content outcomes, in segment order (for stats).
    pub fn outcomes(&self) -> impl Iterator<Item = (Vid, ContentIndexing)> + '_ {
        self.entries.iter().map(|e| (e.vid, e.outcome))
    }
}

impl IndexBundle {
    /// Merges a prepared segment into the live structures. Cheap
    /// relative to [`IndexSegment::build`]: tokenization is done, so
    /// this is pure insertion under the per-index locks. Call in chunk
    /// order to keep insert order identical to the sequential path.
    pub fn merge_segment(&self, segment: IndexSegment) {
        for entry in segment.entries {
            if let Some(name) = &entry.name {
                self.name.index(entry.vid, name);
            }
            if let Some(tuple) = &entry.tuple {
                self.tuple.index(entry.vid, tuple);
            }
            if let Some(doc) = entry.doc {
                self.content.index_pretokenized(entry.vid, doc);
            }
            if let Some(members) = &entry.members {
                self.group.index(entry.vid, members);
            }
            self.catalog.register(entry.catalog);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::CompareOp;

    fn populate(store: &ViewStore, n: usize) -> Vec<Vid> {
        (0..n)
            .map(|i| {
                let child = store.build(format!("child{i}")).insert();
                store
                    .build(format!("doc{i}.txt"))
                    .tuple(TupleComponent::of(vec![("size", Value::Integer(i as i64))]))
                    .text(format!("segment document {i} about dataspaces"))
                    .children(vec![child])
                    .insert()
            })
            .collect()
    }

    #[test]
    fn segment_merge_matches_sequential_indexing() {
        let store = ViewStore::new();
        let vids = populate(&store, 8);

        let sequential = IndexBundle::new();
        for &vid in &vids {
            sequential.index_view(&store, vid, "fs").unwrap();
        }

        let bulk = IndexBundle::new();
        // Two chunks, merged in order.
        let seg_a = IndexSegment::build(&store, &vids[..4], "fs").unwrap();
        let seg_b = IndexSegment::build(&store, &vids[4..], "fs").unwrap();
        assert_eq!(seg_a.len() + seg_b.len(), 8);
        bulk.merge_segment(seg_a);
        bulk.merge_segment(seg_b);

        assert_eq!(
            sequential.content.document_count(),
            bulk.content.document_count()
        );
        assert_eq!(sequential.content.token_count(), bulk.content.token_count());
        for &vid in &vids {
            let seq_entry = sequential.catalog.entry(vid).unwrap();
            let bulk_entry = bulk.catalog.entry(vid).unwrap();
            assert_eq!(seq_entry, bulk_entry);
            assert_eq!(sequential.group.children(vid), bulk.group.children(vid));
        }
        assert_eq!(
            sequential.content.phrase_query("segment document"),
            bulk.content.phrase_query("segment document"),
        );
        assert_eq!(
            sequential
                .tuple
                .compare("size", CompareOp::Eq, &Value::Integer(3)),
            bulk.tuple
                .compare("size", CompareOp::Eq, &Value::Integer(3)),
        );
        assert_eq!(sequential.sizes().total(), bulk.sizes().total());
    }

    #[test]
    fn segment_reports_net_input_bytes() {
        let store = ViewStore::new();
        let vid = store.build("a.txt").text("hello world").insert();
        let seg = IndexSegment::build(&store, &[vid], "fs").unwrap();
        assert_eq!(seg.net_input_bytes(), "hello world".len() as u64);
        assert_eq!(
            seg.outcomes().next().unwrap().1,
            ContentIndexing::Indexed { bytes: 11 }
        );
    }
}
