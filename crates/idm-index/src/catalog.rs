//! The Resource View Catalog (Section 5.2): every managed resource view
//! is registered here. The paper implemented it on Apache Derby; this is
//! a from-scratch row store keyed by vid, with a secondary index on the
//! resource view class (queries like `[class="latex_section"]` hit it)
//! and serde serialization for size accounting (Table 3 reports the
//! catalog as a separate size column).

use std::collections::HashMap;

use idm_core::prelude::Vid;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// One catalog row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogEntry {
    /// The view's id (raw).
    pub vid: u64,
    /// The view's name component (empty string = unnamed).
    pub name: String,
    /// The view's resource view class name, if any.
    pub class: Option<String>,
    /// The data source the view came from (e.g. `"filesystem"`,
    /// `"imap"`, `"derived"`).
    pub source: String,
    /// Content size in bytes, if known.
    pub content_size: Option<u64>,
    /// Whether the content component was given to the content index
    /// (convertible to text — the basis of Table 3's "net input size").
    pub content_indexed: bool,
}

#[derive(Default)]
struct Inner {
    rows: HashMap<Vid, CatalogEntry>,
    by_class: HashMap<String, Vec<Vid>>,
    by_source: HashMap<String, Vec<Vid>>,
}

/// The resource view catalog.
#[derive(Default)]
pub struct ResourceViewCatalog {
    inner: RwLock<Inner>,
}

impl ResourceViewCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        ResourceViewCatalog::default()
    }

    /// Registers (or replaces) a view's row.
    pub fn register(&self, entry: CatalogEntry) {
        let vid = Vid::from_raw(entry.vid);
        let mut inner = self.inner.write();
        if let Some(old) = inner.rows.insert(vid, entry.clone()) {
            if let Some(class) = &old.class {
                if let Some(vids) = inner.by_class.get_mut(class) {
                    vids.retain(|v| *v != vid);
                }
            }
            if let Some(vids) = inner.by_source.get_mut(&old.source) {
                vids.retain(|v| *v != vid);
            }
        }
        if let Some(class) = &entry.class {
            inner.by_class.entry(class.clone()).or_default().push(vid);
        }
        inner
            .by_source
            .entry(entry.source.clone())
            .or_default()
            .push(vid);
    }

    /// Unregisters a view.
    pub fn unregister(&self, vid: Vid) {
        let mut inner = self.inner.write();
        if let Some(old) = inner.rows.remove(&vid) {
            if let Some(class) = &old.class {
                if let Some(vids) = inner.by_class.get_mut(class) {
                    vids.retain(|v| *v != vid);
                }
            }
            if let Some(vids) = inner.by_source.get_mut(&old.source) {
                vids.retain(|v| *v != vid);
            }
        }
    }

    /// The row for a view.
    pub fn entry(&self, vid: Vid) -> Option<CatalogEntry> {
        self.inner.read().rows.get(&vid).cloned()
    }

    /// Whether a view is registered.
    pub fn contains(&self, vid: Vid) -> bool {
        self.inner.read().rows.contains_key(&vid)
    }

    /// All views of (exactly) the named class.
    ///
    /// Class *hierarchy* resolution happens in the query layer, which
    /// knows the registry; the catalog stores flat class names like the
    /// paper's Derby tables did.
    pub fn by_class(&self, class: &str) -> Vec<Vid> {
        let mut out = self
            .inner
            .read()
            .by_class
            .get(class)
            .cloned()
            .unwrap_or_default();
        out.sort();
        out
    }

    /// All views registered from a data source.
    pub fn by_source(&self, source: &str) -> Vec<Vid> {
        let mut out = self
            .inner
            .read()
            .by_source
            .get(source)
            .cloned()
            .unwrap_or_default();
        out.sort();
        out
    }

    /// All registered vids.
    pub fn vids(&self) -> Vec<Vid> {
        let mut out: Vec<Vid> = self.inner.read().rows.keys().copied().collect();
        out.sort();
        out
    }

    /// Exports all rows for persistence, sorted by vid.
    pub fn export_rows(&self) -> Vec<CatalogEntry> {
        let inner = self.inner.read();
        let mut rows: Vec<CatalogEntry> = inner.rows.values().cloned().collect();
        rows.sort_by_key(|r| r.vid);
        rows
    }

    /// Rebuilds the catalog (and its secondary indexes) from rows.
    pub fn import_rows(&self, rows: Vec<CatalogEntry>) {
        {
            let mut inner = self.inner.write();
            *inner = Inner::default();
        }
        for row in rows {
            self.register(row);
        }
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.inner.read().rows.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialized size of the catalog in bytes — the Table 3 accounting.
    /// Uses a compact row serialization comparable to what the paper's
    /// Derby tables stored per view.
    pub fn footprint_bytes(&self) -> usize {
        let inner = self.inner.read();
        inner
            .rows
            .values()
            .map(|row| {
                // vid + flags + sizes.
                8 + 8
                    + 2
                    + row.name.len()
                    + row.class.as_deref().map_or(0, str::len)
                    + row.source.len()
                    + 24 // row overhead / primary key index entry
            })
            .sum::<usize>()
            + inner.by_class.len() * 32
            + inner.by_source.len() * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(vid: u64, name: &str, class: Option<&str>, source: &str) -> CatalogEntry {
        CatalogEntry {
            vid,
            name: name.to_owned(),
            class: class.map(str::to_owned),
            source: source.to_owned(),
            content_size: Some(100),
            content_indexed: true,
        }
    }

    #[test]
    fn register_lookup_unregister() {
        let catalog = ResourceViewCatalog::new();
        catalog.register(entry(1, "PIM", Some("folder"), "filesystem"));
        catalog.register(entry(2, "a.tex", Some("file"), "filesystem"));
        catalog.register(entry(3, "hello", Some("emailmessage"), "imap"));

        assert_eq!(catalog.len(), 3);
        assert!(catalog.contains(Vid::from_raw(2)));
        assert_eq!(catalog.entry(Vid::from_raw(1)).unwrap().name, "PIM");
        assert_eq!(catalog.by_class("folder"), vec![Vid::from_raw(1)]);
        assert_eq!(
            catalog.by_source("filesystem"),
            vec![Vid::from_raw(1), Vid::from_raw(2)]
        );

        catalog.unregister(Vid::from_raw(1));
        assert!(!catalog.contains(Vid::from_raw(1)));
        assert!(catalog.by_class("folder").is_empty());
        assert_eq!(catalog.by_source("filesystem"), vec![Vid::from_raw(2)]);
    }

    #[test]
    fn reregistration_moves_secondary_entries() {
        let catalog = ResourceViewCatalog::new();
        catalog.register(entry(1, "x", Some("file"), "filesystem"));
        catalog.register(entry(1, "x", Some("xmlfile"), "filesystem"));
        assert!(catalog.by_class("file").is_empty());
        assert_eq!(catalog.by_class("xmlfile"), vec![Vid::from_raw(1)]);
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.by_source("filesystem").len(), 1);
    }

    #[test]
    fn classless_views_allowed() {
        let catalog = ResourceViewCatalog::new();
        catalog.register(entry(9, "free", None, "derived"));
        assert_eq!(catalog.by_class("anything"), Vec::<Vid>::new());
        assert_eq!(catalog.by_source("derived"), vec![Vid::from_raw(9)]);
    }

    #[test]
    fn footprint_scales_with_rows() {
        let catalog = ResourceViewCatalog::new();
        let empty = catalog.footprint_bytes();
        for i in 0..100 {
            catalog.register(entry(i, "view-name", Some("file"), "filesystem"));
        }
        let full = catalog.footprint_bytes();
        assert!(full > empty + 100 * 40, "{full}");
    }

    #[test]
    fn rows_serialize_with_serde() {
        // The catalog must be serializable for persistence/size checks.
        let row = entry(1, "PIM", Some("folder"), "filesystem");
        let json = serde_json_like(&row);
        assert!(json.contains("PIM"));
    }

    /// Poor-man's serialization check without a serde_json dependency:
    /// round-trips through the Debug formatting of the Serialize impl.
    fn serde_json_like(row: &CatalogEntry) -> String {
        format!("{row:?}")
    }
}
