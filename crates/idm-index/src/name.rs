//! The Name Index & Replica: maps resource view names to vids and
//! answers the wildcard name patterns iQL paths use (`*Vision`,
//! `?onclusion*`, `VLDB200?`, `*.tex`, bare `*`).

use std::collections::BTreeMap;

use idm_core::prelude::Vid;
use parking_lot::RwLock;

/// A compiled name pattern with `*` (any run) and `?` (any one char).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamePattern {
    raw: String,
}

impl NamePattern {
    /// Compiles a pattern.
    pub fn new(pattern: impl Into<String>) -> Self {
        NamePattern {
            raw: pattern.into(),
        }
    }

    /// Whether the pattern matches every name (a bare `*`).
    pub fn matches_all(&self) -> bool {
        self.raw == "*"
    }

    /// Whether this pattern contains no wildcards (exact lookup).
    pub fn is_exact(&self) -> bool {
        !self.raw.contains(['*', '?'])
    }

    /// The raw pattern text.
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// Glob matching (iterative two-pointer with backtracking on `*`).
    pub fn matches(&self, name: &str) -> bool {
        let pattern: Vec<char> = self.raw.chars().collect();
        let text: Vec<char> = name.chars().collect();
        let (mut p, mut t) = (0usize, 0usize);
        let (mut star, mut star_t) = (None::<usize>, 0usize);
        while t < text.len() {
            if p < pattern.len() && (pattern[p] == '?' || pattern[p] == text[t]) {
                p += 1;
                t += 1;
            } else if p < pattern.len() && pattern[p] == '*' {
                star = Some(p);
                star_t = t;
                p += 1;
            } else if let Some(sp) = star {
                p = sp + 1;
                star_t += 1;
                t = star_t;
            } else {
                return false;
            }
        }
        while p < pattern.len() && pattern[p] == '*' {
            p += 1;
        }
        p == pattern.len()
    }
}

#[derive(Default)]
struct Inner {
    /// Name → vids with that exact name (the replica: names stored).
    by_name: BTreeMap<String, Vec<Vid>>,
    entries: usize,
}

/// The name index.
#[derive(Default)]
pub struct NameIndex {
    inner: RwLock<Inner>,
}

impl NameIndex {
    /// An empty index.
    pub fn new() -> Self {
        NameIndex::default()
    }

    /// Indexes a view under its name. Unnamed views are not indexed
    /// (they are still reachable via `*` path steps through expansion).
    pub fn index(&self, vid: Vid, name: &str) {
        if name.is_empty() {
            return;
        }
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let vids = inner.by_name.entry(name.to_owned()).or_default();
        if let Err(i) = vids.binary_search(&vid) {
            vids.insert(i, vid);
            inner.entries += 1;
        }
    }

    /// Removes a view from the index.
    pub fn remove(&self, vid: Vid, name: &str) {
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let mut emptied = false;
        if let Some(vids) = inner.by_name.get_mut(name) {
            if let Ok(i) = vids.binary_search(&vid) {
                vids.remove(i);
                inner.entries -= 1;
            }
            emptied = vids.is_empty();
        }
        if emptied {
            inner.by_name.remove(name);
        }
    }

    /// Views with exactly this name.
    pub fn exact(&self, name: &str) -> Vec<Vid> {
        self.inner
            .read()
            .by_name
            .get(name)
            .cloned()
            .unwrap_or_default()
    }

    /// Views whose name matches the pattern. Uses a prefix scan over the
    /// sorted dictionary when the pattern has a literal prefix.
    pub fn matching(&self, pattern: &NamePattern) -> Vec<Vid> {
        if pattern.is_exact() {
            return self.exact(pattern.as_str());
        }
        let inner = self.inner.read();
        let mut out = Vec::new();
        // Literal prefix before the first wildcard bounds the scan.
        let prefix: String = pattern
            .as_str()
            .chars()
            .take_while(|c| *c != '*' && *c != '?')
            .collect();
        let range: Box<dyn Iterator<Item = (&String, &Vec<Vid>)>> = if prefix.is_empty() {
            Box::new(inner.by_name.iter())
        } else {
            Box::new(
                inner
                    .by_name
                    .range(prefix.clone()..)
                    .take_while(move |(name, _)| name.starts_with(&prefix)),
            )
        };
        for (name, vids) in range {
            if pattern.matches(name) {
                out.extend_from_slice(vids);
            }
        }
        out.sort();
        out
    }

    /// Exports the name dictionary for persistence.
    pub fn export_names(&self) -> Vec<(String, Vec<u64>)> {
        let inner = self.inner.read();
        inner
            .by_name
            .iter()
            .map(|(name, vids)| (name.clone(), vids.iter().map(|v| v.as_u64()).collect()))
            .collect()
    }

    /// Rebuilds the index from an export.
    pub fn import_names(&self, names: Vec<(String, Vec<u64>)>) {
        let mut inner = self.inner.write();
        inner.entries = names.iter().map(|(_, v)| v.len()).sum();
        inner.by_name = names
            .into_iter()
            .map(|(name, vids)| (name, vids.into_iter().map(Vid::from_raw).collect()))
            .collect();
    }

    /// Number of distinct indexed names.
    pub fn name_count(&self) -> usize {
        self.inner.read().by_name.len()
    }

    /// Number of (name, vid) entries.
    pub fn entry_count(&self) -> usize {
        self.inner.read().entries
    }

    /// Serialized index size in bytes: the name replica (the strings
    /// themselves) plus delta-varint vid postings.
    pub fn footprint_bytes(&self) -> usize {
        fn varint(v: u64) -> usize {
            (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
        }
        let inner = self.inner.read();
        inner
            .by_name
            .iter()
            .map(|(name, vids)| {
                let mut bytes = name.len() + varint(vids.len() as u64) + 4;
                let mut prev = 0u64;
                for vid in vids {
                    bytes += varint(vid.as_u64().wrapping_sub(prev));
                    prev = vid.as_u64();
                }
                bytes
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: u64) -> Vid {
        Vid::from_raw(i)
    }

    #[test]
    fn glob_matching_table() {
        let cases = [
            // (pattern, name, matches) — the paper's Table 4 shapes.
            ("*Vision", "A Dataspace Vision", true),
            ("*Vision", "Vision", true),
            ("*Vision", "Visionary", false),
            ("?onclusion*", "Conclusions", true),
            ("?onclusion*", "conclusion", true),
            ("?onclusion*", "onclusion", false),
            ("VLDB200?", "VLDB2005", true),
            ("VLDB200?", "VLDB2006", true),
            ("VLDB200?", "VLDB20056", false),
            ("*.tex", "vldb 2006.tex", true),
            ("*.tex", "tex", false),
            ("*.tex", ".tex", true),
            ("figure*", "figure12", true),
            ("figure*", "fig", false),
            ("*", "anything at all", true),
            ("*", "", true),
            ("a*b*c", "aXXbYYc", true),
            ("a*b*c", "abc", true),
            ("a*b*c", "acb", false),
        ];
        for (pattern, name, expected) in cases {
            assert_eq!(
                NamePattern::new(pattern).matches(name),
                expected,
                "'{pattern}' vs '{name}'"
            );
        }
    }

    #[test]
    fn exact_and_wildcard_lookup() {
        let index = NameIndex::new();
        index.index(vid(1), "Introduction");
        index.index(vid(2), "Introduction");
        index.index(vid(3), "Conclusions");
        index.index(vid(4), "vldb 2006.tex");

        assert_eq!(index.exact("Introduction"), vec![vid(1), vid(2)]);
        assert!(index.exact("introduction").is_empty(), "case-sensitive");
        assert_eq!(
            index.matching(&NamePattern::new("?onclusion*")),
            vec![vid(3)]
        );
        assert_eq!(index.matching(&NamePattern::new("*.tex")), vec![vid(4)]);
        assert_eq!(index.matching(&NamePattern::new("*")).len(), 4);
    }

    #[test]
    fn prefix_scan_bounds_work() {
        let index = NameIndex::new();
        index.index(vid(1), "VLDB2005");
        index.index(vid(2), "VLDB2006");
        index.index(vid(3), "SIGMOD2006");
        assert_eq!(
            index.matching(&NamePattern::new("VLDB200?")),
            vec![vid(1), vid(2)]
        );
    }

    #[test]
    fn remove_and_dedup() {
        let index = NameIndex::new();
        index.index(vid(1), "a");
        index.index(vid(1), "a"); // duplicate ignored
        assert_eq!(index.entry_count(), 1);
        index.remove(vid(1), "a");
        assert!(index.exact("a").is_empty());
        assert_eq!(index.name_count(), 0);
        index.remove(vid(1), "a"); // no-op
    }

    #[test]
    fn unnamed_views_not_indexed() {
        let index = NameIndex::new();
        index.index(vid(1), "");
        assert_eq!(index.entry_count(), 0);
    }

    #[test]
    fn pathological_star_patterns_terminate() {
        let pattern = NamePattern::new("*a*a*a*a*a*a*a*a*b");
        let name = "a".repeat(60);
        assert!(!pattern.matches(&name));
        assert!(pattern.matches(&("a".repeat(20) + "b")));
    }
}
