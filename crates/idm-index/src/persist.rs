//! Durable storage for the Replica&Indexes module.
//!
//! The paper's prototype kept the Resource View Catalog in Apache Derby
//! and the full-text indexes in Lucene — both disk-backed, so a PDSMS
//! restart did not re-scan the user's dataspace. This module provides
//! the same property from scratch: a compact, versioned binary format
//! (varint-compressed, length-prefixed) that serializes the whole
//! [`IndexBundle`] and loads it back, byte-for-byte deterministic.
//!
//! The on-disk layout (version 2, `IDMIDX02`) is a magic header, the
//! store **epoch** (the WAL log sequence number the index was built
//! against — the durability layer's recovery handshake), five sections
//! (catalog, name, tuple, content, group), and a trailing FNV-1a-64
//! checksum over everything before it. Version-1 files (`IDMIDX01`,
//! no epoch, no checksum) still load; they report no epoch and so are
//! always treated as stale by the handshake.
//!
//! Saves are atomic: write a sibling temp file, fsync, rename over the
//! target, fsync the directory — a crash mid-save never corrupts an
//! existing index.

use std::io::{self, Read, Write};
use std::path::Path;

use idm_core::durability::codec::fnv1a64;
use idm_core::prelude::{Domain, Schema, Timestamp, TupleComponent, Value};

use crate::bundle::IndexBundle;
use crate::catalog::CatalogEntry;

const MAGIC: &[u8; 8] = b"IDMIDX01";
const MAGIC_V2: &[u8; 8] = b"IDMIDX02";

// ---- primitive codec ----------------------------------------------------

/// A growable binary writer with varint primitives.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// LEB128 unsigned varint.
    pub fn put_u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Zigzag-encoded signed varint.
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Raw bytes with length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// One byte.
    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// IEEE-754 double, little endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bits_bytes());
    }
}

trait F64Bytes {
    fn to_le_bits_bytes(self) -> [u8; 8];
}
impl F64Bytes for f64 {
    fn to_le_bits_bytes(self) -> [u8; 8] {
        self.to_bits().to_le_bytes()
    }
}

/// A binary reader matching [`Encoder`].
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over bytes.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    fn err(message: &str) -> io::Error {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("idm index file: {message}"),
        )
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// LEB128 unsigned varint.
    pub fn get_u64(&mut self) -> io::Result<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .buf
                .get(self.pos)
                .ok_or_else(|| Self::err("truncated varint"))?;
            self.pos += 1;
            if shift >= 64 {
                return Err(Self::err("varint overflow"));
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Zigzag-encoded signed varint.
    pub fn get_i64(&mut self) -> io::Result<i64> {
        let v = self.get_u64()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> io::Result<String> {
        let bytes = self.get_raw()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Self::err("invalid utf-8"))
    }

    /// Length-prefixed raw bytes.
    pub fn get_raw(&mut self) -> io::Result<&'a [u8]> {
        let len = self.get_u64()? as usize;
        if self.remaining() < len {
            return Err(Self::err("truncated bytes"));
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// One byte.
    pub fn get_u8(&mut self) -> io::Result<u8> {
        let byte = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| Self::err("truncated byte"))?;
        self.pos += 1;
        Ok(byte)
    }

    /// IEEE-754 double, little endian.
    pub fn get_f64(&mut self) -> io::Result<f64> {
        if self.remaining() < 8 {
            return Err(Self::err("truncated f64"));
        }
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }
}

// ---- value / tuple codec -------------------------------------------------

fn put_value(enc: &mut Encoder, value: &Value) {
    match value {
        Value::Text(s) => {
            enc.put_u8(0);
            enc.put_str(s);
        }
        Value::Integer(i) => {
            enc.put_u8(1);
            enc.put_i64(*i);
        }
        Value::Float(f) => {
            enc.put_u8(2);
            enc.put_f64(*f);
        }
        Value::Boolean(b) => {
            enc.put_u8(3);
            enc.put_u8(u8::from(*b));
        }
        Value::Date(t) => {
            enc.put_u8(4);
            enc.put_i64(t.0);
        }
    }
}

fn get_value(dec: &mut Decoder) -> io::Result<Value> {
    Ok(match dec.get_u8()? {
        0 => Value::Text(dec.get_str()?),
        1 => Value::Integer(dec.get_i64()?),
        2 => Value::Float(dec.get_f64()?),
        3 => Value::Boolean(dec.get_u8()? != 0),
        4 => Value::Date(Timestamp(dec.get_i64()?)),
        other => return Err(Decoder::err(&format!("unknown value tag {other}"))),
    })
}

fn domain_tag(domain: Domain) -> u8 {
    match domain {
        Domain::Text => 0,
        Domain::Integer => 1,
        Domain::Float => 2,
        Domain::Boolean => 3,
        Domain::Date => 4,
    }
}

fn tag_domain(tag: u8) -> io::Result<Domain> {
    Ok(match tag {
        0 => Domain::Text,
        1 => Domain::Integer,
        2 => Domain::Float,
        3 => Domain::Boolean,
        4 => Domain::Date,
        other => return Err(Decoder::err(&format!("unknown domain tag {other}"))),
    })
}

fn put_tuple(enc: &mut Encoder, tuple: &TupleComponent) {
    enc.put_u64(tuple.schema().arity() as u64);
    for (attr, value) in tuple.iter() {
        enc.put_str(&attr.name);
        enc.put_u8(domain_tag(attr.domain));
        put_value(enc, value);
    }
}

fn get_tuple(dec: &mut Decoder) -> io::Result<TupleComponent> {
    let arity = dec.get_u64()? as usize;
    let mut attrs = Vec::with_capacity(arity);
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name = dec.get_str()?;
        let domain = tag_domain(dec.get_u8()?)?;
        let value = get_value(dec)?;
        attrs.push(idm_core::prelude::Attribute::new(name, domain));
        values.push(value);
    }
    TupleComponent::new(Schema::new(attrs), values)
        .map_err(|e| Decoder::err(&format!("tuple does not validate: {e}")))
}

// ---- bundle sections -------------------------------------------------------

/// Serializes the bundle to bytes (current format, epoch 0 — use
/// [`to_bytes_with_epoch`] when the index belongs to a durable store).
pub fn to_bytes(bundle: &IndexBundle) -> Vec<u8> {
    to_bytes_with_epoch(bundle, 0)
}

/// Serializes the bundle in the `IDMIDX02` format: magic, epoch, the
/// five sections, then a trailing FNV-1a-64 checksum over all preceding
/// bytes.
pub fn to_bytes_with_epoch(bundle: &IndexBundle, epoch: u64) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.buf.extend_from_slice(MAGIC_V2);
    enc.put_u64(epoch);
    put_sections(&mut enc, bundle);
    let mut bytes = enc.into_bytes();
    let checksum = fnv1a64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

fn put_sections(enc: &mut Encoder, bundle: &IndexBundle) {
    // Section 1: catalog.
    let rows = bundle.catalog.export_rows();
    enc.put_u64(rows.len() as u64);
    for row in rows {
        enc.put_u64(row.vid);
        enc.put_str(&row.name);
        match &row.class {
            Some(class) => {
                enc.put_u8(1);
                enc.put_str(class);
            }
            None => enc.put_u8(0),
        }
        enc.put_str(&row.source);
        match row.content_size {
            Some(size) => {
                enc.put_u8(1);
                enc.put_u64(size);
            }
            None => enc.put_u8(0),
        }
        enc.put_u8(u8::from(row.content_indexed));
    }

    // Section 2: name index.
    let names = bundle.name.export_names();
    enc.put_u64(names.len() as u64);
    for (name, vids) in names {
        enc.put_str(&name);
        enc.put_u64(vids.len() as u64);
        let mut prev = 0u64;
        for vid in vids {
            enc.put_u64(vid.wrapping_sub(prev));
            prev = vid;
        }
    }

    // Section 3: tuple replica.
    let tuples = bundle.tuple.export_replica();
    enc.put_u64(tuples.len() as u64);
    for (vid, tuple) in tuples {
        enc.put_u64(vid);
        put_tuple(enc, &tuple);
    }

    // Section 4: content index.
    let postings = bundle.content.export_postings();
    enc.put_u64(bundle.content.document_count() as u64);
    enc.put_u64(bundle.content.token_count());
    enc.put_u64(postings.len() as u64);
    for (term, list) in postings {
        enc.put_str(&term);
        enc.put_u64(list.len() as u64);
        let mut prev_vid = 0u64;
        for (vid, positions) in list {
            enc.put_u64(vid.wrapping_sub(prev_vid));
            prev_vid = vid;
            enc.put_u64(positions.len() as u64);
            let mut prev_pos = 0u32;
            for pos in positions {
                enc.put_u64(u64::from(pos.wrapping_sub(prev_pos)));
                prev_pos = pos;
            }
        }
    }

    // Section 5: group replica (forward side only).
    let edges = bundle.group.export_edges();
    enc.put_u64(edges.len() as u64);
    for (parent, children) in edges {
        enc.put_u64(parent);
        enc.put_u64(children.len() as u64);
        for child in children {
            enc.put_u64(child);
        }
    }
}

/// Deserializes a bundle from bytes (either format; the epoch, if
/// present, is discarded — see [`from_bytes_with_epoch`]).
pub fn from_bytes(bytes: &[u8]) -> io::Result<IndexBundle> {
    from_bytes_with_epoch(bytes).map(|(bundle, _)| bundle)
}

fn get_sections(dec: &mut Decoder) -> io::Result<IndexBundle> {
    let bundle = IndexBundle::new();

    // Section 1: catalog.
    let row_count = dec.get_u64()? as usize;
    let mut rows = Vec::with_capacity(row_count.min(1 << 20));
    for _ in 0..row_count {
        let vid = dec.get_u64()?;
        let name = dec.get_str()?;
        let class = if dec.get_u8()? == 1 {
            Some(dec.get_str()?)
        } else {
            None
        };
        let source = dec.get_str()?;
        let content_size = if dec.get_u8()? == 1 {
            Some(dec.get_u64()?)
        } else {
            None
        };
        let content_indexed = dec.get_u8()? != 0;
        rows.push(CatalogEntry {
            vid,
            name,
            class,
            source,
            content_size,
            content_indexed,
        });
    }
    bundle.catalog.import_rows(rows);

    // Section 2: name index.
    let name_count = dec.get_u64()? as usize;
    let mut names = Vec::with_capacity(name_count.min(1 << 20));
    for _ in 0..name_count {
        let name = dec.get_str()?;
        let vid_count = dec.get_u64()? as usize;
        let mut vids = Vec::with_capacity(vid_count.min(1 << 20));
        let mut prev = 0u64;
        for _ in 0..vid_count {
            prev = prev.wrapping_add(dec.get_u64()?);
            vids.push(prev);
        }
        names.push((name, vids));
    }
    bundle.name.import_names(names);

    // Section 3: tuple replica.
    let tuple_count = dec.get_u64()? as usize;
    let mut tuples = Vec::with_capacity(tuple_count.min(1 << 20));
    for _ in 0..tuple_count {
        let vid = dec.get_u64()?;
        tuples.push((vid, get_tuple(dec)?));
    }
    bundle.tuple.import_replica(tuples);

    // Section 4: content index.
    let documents = dec.get_u64()? as usize;
    let tokens = dec.get_u64()?;
    let term_count = dec.get_u64()? as usize;
    let mut postings = Vec::with_capacity(term_count.min(1 << 20));
    for _ in 0..term_count {
        let term = dec.get_str()?;
        let doc_count = dec.get_u64()? as usize;
        let mut list = Vec::with_capacity(doc_count.min(1 << 20));
        let mut prev_vid = 0u64;
        for _ in 0..doc_count {
            prev_vid = prev_vid.wrapping_add(dec.get_u64()?);
            let pos_count = dec.get_u64()? as usize;
            let mut positions = Vec::with_capacity(pos_count.min(1 << 20));
            let mut prev_pos = 0u32;
            for _ in 0..pos_count {
                prev_pos = prev_pos.wrapping_add(dec.get_u64()? as u32);
                positions.push(prev_pos);
            }
            list.push((prev_vid, positions));
        }
        postings.push((term, list));
    }
    bundle.content.import_postings(postings, documents, tokens);

    // Section 5: group replica.
    let parent_count = dec.get_u64()? as usize;
    let mut edges = Vec::with_capacity(parent_count.min(1 << 20));
    for _ in 0..parent_count {
        let parent = dec.get_u64()?;
        let child_count = dec.get_u64()? as usize;
        let mut children = Vec::with_capacity(child_count.min(1 << 20));
        for _ in 0..child_count {
            children.push(dec.get_u64()?);
        }
        edges.push((parent, children));
    }
    bundle.group.import_edges(edges);

    if dec.remaining() != 0 {
        return Err(Decoder::err("trailing bytes"));
    }
    Ok(bundle)
}

/// Deserializes a bundle and, for `IDMIDX02` files, the store epoch it
/// was built against. Legacy `IDMIDX01` files load with no epoch.
pub fn from_bytes_with_epoch(bytes: &[u8]) -> io::Result<(IndexBundle, Option<u64>)> {
    if bytes.len() < 8 {
        return Err(Decoder::err("missing header"));
    }
    if &bytes[..8] == MAGIC {
        // Legacy v1: no epoch, no checksum.
        let mut dec = Decoder::new(&bytes[8..]);
        return Ok((get_sections(&mut dec)?, None));
    }
    if &bytes[..8] != MAGIC_V2 {
        return Err(Decoder::err("bad magic (not an iDM index file?)"));
    }
    if bytes.len() < 16 {
        return Err(Decoder::err("truncated checksum"));
    }
    let body_len = bytes.len() - 8;
    let stored = u64::from_le_bytes(
        bytes[body_len..]
            .try_into()
            .map_err(|_| Decoder::err("truncated checksum"))?,
    );
    if fnv1a64(&bytes[..body_len]) != stored {
        return Err(Decoder::err("checksum mismatch (corrupt index file)"));
    }
    let mut dec = Decoder::new(&bytes[8..body_len]);
    let epoch = dec.get_u64()?;
    let bundle = get_sections(&mut dec)?;
    Ok((bundle, Some(epoch)))
}

/// Integrity-checks an index artifact without materializing the bundle:
/// magic plus, for `IDMIDX02`, the trailing FNV-1a-64 over every
/// preceding byte — so any single-byte flip fails verification. Legacy
/// `IDMIDX01` files carry no checksum and verify vacuously (the live
/// system always writes v2). `Err(InvalidData)` means damaged.
pub fn verify(path: &Path) -> io::Result<u64> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 8 {
        return Err(Decoder::err("missing header"));
    }
    if &bytes[..8] == MAGIC {
        return Ok(bytes.len() as u64);
    }
    if &bytes[..8] != MAGIC_V2 || bytes.len() < 16 {
        return Err(Decoder::err("bad magic (not an iDM index file?)"));
    }
    let body_len = bytes.len() - 8;
    let stored = u64::from_le_bytes(
        bytes[body_len..]
            .try_into()
            .map_err(|_| Decoder::err("truncated checksum"))?,
    );
    if fnv1a64(&bytes[..body_len]) != stored {
        return Err(Decoder::err("checksum mismatch (corrupt index file)"));
    }
    Ok(bytes.len() as u64)
}

/// Saves the bundle to a file atomically (sibling temp file + fsync +
/// rename + directory fsync): a crash mid-save never corrupts an
/// existing index.
pub fn save(bundle: &IndexBundle, path: &Path) -> io::Result<()> {
    save_with_epoch(bundle, path, 0)
}

/// Saves the bundle atomically, stamping the store epoch it was built
/// against (the recovery handshake: on open, a mismatched epoch means
/// the index is stale and must be rebuilt).
pub fn save_with_epoch(bundle: &IndexBundle, path: &Path, epoch: u64) -> io::Result<()> {
    let bytes = to_bytes_with_epoch(bundle, epoch);
    let tmp = path.with_extension("idm.tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Durability of the rename itself; real fsync errors propagate,
    // only cannot-sync-directories platforms stay silent.
    idm_core::durability::snapshot::sync_parent_dir(path)?;
    Ok(())
}

/// Loads a bundle from a file.
pub fn load(path: &Path) -> io::Result<IndexBundle> {
    load_with_epoch(path).map(|(bundle, _)| bundle)
}

/// Loads a bundle and its stored epoch (`None` for legacy v1 files).
pub fn load_with_epoch(path: &Path) -> io::Result<(IndexBundle, Option<u64>)> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    from_bytes_with_epoch(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_core::prelude::*;

    fn populated_bundle() -> (ViewStore, IndexBundle) {
        let store = ViewStore::new();
        let bundle = IndexBundle::new();
        let child = store.build("child").text("nested content words").insert();
        for i in 0..20 {
            let vid = store
                .build(format!("doc{i}.txt"))
                .tuple(TupleComponent::of(vec![
                    ("size", Value::Integer(i * 100)),
                    ("ratio", Value::Float(i as f64 / 3.0)),
                    ("flag", Value::Boolean(i % 2 == 0)),
                    ("when", Value::Date(Timestamp(1_000_000 + i))),
                    ("label", Value::Text(format!("tag-{i}"))),
                ]))
                .text(format!("document {i} about dataspaces and database tuning"))
                .children(if i == 0 { vec![child] } else { vec![] })
                .class_named("file")
                .insert();
            bundle.index_view(&store, vid, "filesystem").unwrap();
        }
        bundle.index_view(&store, child, "filesystem").unwrap();
        (store, bundle)
    }

    fn assert_equivalent(a: &IndexBundle, b: &IndexBundle) {
        assert_eq!(a.catalog.export_rows(), b.catalog.export_rows());
        assert_eq!(a.name.export_names(), b.name.export_names());
        assert_eq!(a.content.export_postings(), b.content.export_postings());
        assert_eq!(a.content.document_count(), b.content.document_count());
        assert_eq!(a.group.export_edges(), b.group.export_edges());
        assert_eq!(a.tuple.export_replica(), b.tuple.export_replica());
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (_store, bundle) = populated_bundle();
        let bytes = to_bytes(&bundle);
        let loaded = from_bytes(&bytes).unwrap();
        assert_equivalent(&bundle, &loaded);

        // And the loaded bundle answers queries identically.
        assert_eq!(
            loaded.content.phrase_query("database tuning").len(),
            bundle.content.phrase_query("database tuning").len()
        );
        assert_eq!(loaded.name.exact("doc3.txt"), bundle.name.exact("doc3.txt"));
        assert_eq!(
            loaded
                .tuple
                .compare("size", crate::tuple::CompareOp::Gt, &Value::Integer(1500)),
            bundle
                .tuple
                .compare("size", crate::tuple::CompareOp::Gt, &Value::Integer(1500))
        );
        assert_eq!(
            loaded.group.children(Vid::from_raw(1)),
            bundle.group.children(Vid::from_raw(1))
        );
    }

    #[test]
    fn serialization_is_deterministic() {
        let (_s1, b1) = populated_bundle();
        let (_s2, b2) = populated_bundle();
        assert_eq!(to_bytes(&b1), to_bytes(&b2));
    }

    #[test]
    fn file_roundtrip() {
        let (_store, bundle) = populated_bundle();
        let dir = std::env::temp_dir().join(format!("idm-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("indexes.idm");
        save(&bundle, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_equivalent(&bundle, &loaded);
        // The file size should be in the same ballpark as the
        // footprint estimate (the estimate models this very format).
        let file_len = std::fs::metadata(&path).unwrap().len() as usize;
        let estimated = bundle.sizes().name + bundle.sizes().content;
        assert!(file_len > estimated / 2, "{file_len} vs {estimated}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_inputs_are_errors_not_panics() {
        let (_store, bundle) = populated_bundle();
        let bytes = to_bytes(&bundle);
        assert!(from_bytes(b"").is_err());
        assert!(from_bytes(b"NOTMAGIC").is_err());
        assert!(from_bytes(&bytes[..bytes.len() / 2]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(from_bytes(&trailing).is_err());
        let mut wrong_magic = bytes;
        wrong_magic[0] ^= 0xFF;
        assert!(from_bytes(&wrong_magic).is_err());
    }

    #[test]
    fn epoch_roundtrips_through_v2_format() {
        let (_store, bundle) = populated_bundle();
        let bytes = to_bytes_with_epoch(&bundle, 12345);
        assert_eq!(&bytes[..8], MAGIC_V2);
        let (loaded, epoch) = from_bytes_with_epoch(&bytes).unwrap();
        assert_eq!(epoch, Some(12345));
        assert_equivalent(&bundle, &loaded);
    }

    #[test]
    fn legacy_v1_files_still_load_with_no_epoch() {
        let (_store, bundle) = populated_bundle();
        // Re-create a v1 file: old magic, sections, no epoch, no checksum.
        let mut enc = Encoder::new();
        enc.buf.extend_from_slice(MAGIC);
        put_sections(&mut enc, &bundle);
        let legacy = enc.into_bytes();
        let (loaded, epoch) = from_bytes_with_epoch(&legacy).unwrap();
        assert_eq!(epoch, None);
        assert_equivalent(&bundle, &loaded);
        assert_equivalent(&bundle, &from_bytes(&legacy).unwrap());
    }

    #[test]
    fn checksum_catches_any_single_byte_flip() {
        let (_store, bundle) = populated_bundle();
        let bytes = to_bytes_with_epoch(&bundle, 7);
        for pos in (0..bytes.len()).step_by(97).chain([bytes.len() - 1]) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x20;
            assert!(
                from_bytes_with_epoch(&corrupt).is_err(),
                "flip at {pos} went undetected"
            );
        }
    }

    #[test]
    fn save_with_epoch_file_roundtrip() {
        let (_store, bundle) = populated_bundle();
        let dir = std::env::temp_dir().join(format!("idm-persist-epoch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("indexes.idm");
        save_with_epoch(&bundle, &path, 99).unwrap();
        let (loaded, epoch) = load_with_epoch(&path).unwrap();
        assert_eq!(epoch, Some(99));
        assert_equivalent(&bundle, &loaded);
        assert!(
            !path.with_extension("idm.tmp").exists(),
            "temp file cleaned up"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn varint_primitives_roundtrip() {
        let mut enc = Encoder::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            enc.put_u64(v);
        }
        let signed = [0i64, -1, 1, i64::MIN, i64::MAX, -123456789];
        for &v in &signed {
            enc.put_i64(v);
        }
        enc.put_str("héllo wörld");
        enc.put_f64(std::f64::consts::PI);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        for &v in &values {
            assert_eq!(dec.get_u64().unwrap(), v);
        }
        for &v in &signed {
            assert_eq!(dec.get_i64().unwrap(), v);
        }
        assert_eq!(dec.get_str().unwrap(), "héllo wörld");
        assert_eq!(dec.get_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(dec.remaining(), 0);
    }
}
