//! The Tuple Index & Replica: an in-memory, vertically partitioned
//! index over tuple component attributes (Section 7.2 cites the
//! Decomposition Storage Model \[11\]).
//!
//! Each attribute name gets its own sorted column of `(value, vid)`
//! pairs, so predicates like `[size > 42000 and lastmodified <
//! yesterday()]` resolve with two binary searches per attribute. iDM
//! schemas are per-tuple, so the same attribute name may carry values
//! from different domains in different views; the column orders values
//! by `(domain rank, value)` and comparisons only consider the
//! compatible domain section.

use std::cmp::Ordering;
use std::collections::HashMap;

use idm_core::prelude::{TupleComponent, Value, Vid};
use parking_lot::RwLock;

/// Comparison operators supported by attribute predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// Whether `ordering` (of value vs constant) satisfies the operator.
    pub fn accepts(self, ordering: Ordering) -> bool {
        matches!(
            (self, ordering),
            (CompareOp::Eq, Ordering::Equal)
                | (CompareOp::Ne, Ordering::Less)
                | (CompareOp::Ne, Ordering::Greater)
                | (CompareOp::Lt, Ordering::Less)
                | (CompareOp::Le, Ordering::Less)
                | (CompareOp::Le, Ordering::Equal)
                | (CompareOp::Gt, Ordering::Greater)
                | (CompareOp::Ge, Ordering::Greater)
                | (CompareOp::Ge, Ordering::Equal)
        )
    }
}

/// Total order over values for column sorting: domain rank first (with
/// integers and floats sharing a numeric rank), value order within.
fn sort_cmp(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Integer(_) | Value::Float(_) => 0,
            Value::Text(_) => 1,
            Value::Boolean(_) => 2,
            Value::Date(_) => 3,
        }
    }
    rank(a)
        .cmp(&rank(b))
        .then_with(|| a.compare(b).unwrap_or(Ordering::Equal))
}

#[derive(Default)]
struct Column {
    /// Sorted by `sort_cmp(value)`, ties by vid.
    entries: Vec<(Value, Vid)>,
    sorted: bool,
}

impl Column {
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.entries
                .sort_by(|(va, a), (vb, b)| sort_cmp(va, vb).then(a.cmp(b)));
            self.sorted = true;
        }
    }
}

#[derive(Default)]
struct Inner {
    columns: HashMap<String, Column>,
    /// Tuple replica: vid → tuple component (enables join field access
    /// like `B.tuple.label` without touching the data source).
    replica: HashMap<Vid, TupleComponent>,
}

/// The vertically partitioned tuple index plus replica.
#[derive(Default)]
pub struct TupleIndex {
    inner: RwLock<Inner>,
}

impl TupleIndex {
    /// An empty index.
    pub fn new() -> Self {
        TupleIndex::default()
    }

    /// Indexes a view's tuple component (and replicates it).
    pub fn index(&self, vid: Vid, tuple: &TupleComponent) {
        let mut inner = self.inner.write();
        if inner.replica.insert(vid, tuple.clone()).is_some() {
            // Re-index: drop stale column entries first.
            for column in inner.columns.values_mut() {
                column.entries.retain(|(_, v)| *v != vid);
            }
        }
        for (attr, value) in tuple.iter() {
            let column = inner.columns.entry(attr.name.clone()).or_default();
            column.entries.push((value.clone(), vid));
            column.sorted = false;
        }
    }

    /// Removes a view's tuple from index and replica.
    pub fn remove(&self, vid: Vid) {
        let mut inner = self.inner.write();
        if inner.replica.remove(&vid).is_some() {
            for column in inner.columns.values_mut() {
                column.entries.retain(|(_, v)| *v != vid);
            }
        }
    }

    /// The replicated tuple component of a view.
    pub fn tuple_of(&self, vid: Vid) -> Option<TupleComponent> {
        self.inner.read().replica.get(&vid).cloned()
    }

    /// One attribute value of a view, from the replica.
    pub fn value_of(&self, vid: Vid, attr: &str) -> Option<Value> {
        self.inner
            .read()
            .replica
            .get(&vid)
            .and_then(|t| t.get(attr).cloned())
    }

    /// Views whose `attr` value satisfies `op` against `constant`.
    /// Views whose value is of an incomparable domain never match.
    pub fn compare(&self, attr: &str, op: CompareOp, constant: &Value) -> Vec<Vid> {
        let mut inner = self.inner.write();
        let Some(column) = inner.columns.get_mut(attr) else {
            return Vec::new();
        };
        column.ensure_sorted();
        let mut out: Vec<Vid> = column
            .entries
            .iter()
            .filter_map(|(value, vid)| {
                value
                    .compare(constant)
                    .filter(|ord| op.accepts(*ord))
                    .map(|_| *vid)
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Views carrying any value for `attr`.
    pub fn has_attribute(&self, attr: &str) -> Vec<Vid> {
        let inner = self.inner.read();
        let Some(column) = inner.columns.get(attr) else {
            return Vec::new();
        };
        let mut out: Vec<Vid> = column.entries.iter().map(|(_, v)| *v).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Exports the tuple replica for persistence (columns are derived on
    /// import), sorted by vid.
    pub fn export_replica(&self) -> Vec<(u64, TupleComponent)> {
        let inner = self.inner.read();
        let mut rows: Vec<(u64, TupleComponent)> = inner
            .replica
            .iter()
            .map(|(vid, tuple)| (vid.as_u64(), tuple.clone()))
            .collect();
        rows.sort_by_key(|(v, _)| *v);
        rows
    }

    /// Rebuilds the index from an exported replica.
    pub fn import_replica(&self, rows: Vec<(u64, TupleComponent)>) {
        {
            let mut inner = self.inner.write();
            *inner = Inner::default();
        }
        for (vid, tuple) in rows {
            self.index(Vid::from_raw(vid), &tuple);
        }
    }

    /// Number of indexed views.
    pub fn view_count(&self) -> usize {
        self.inner.read().replica.len()
    }

    /// Number of attribute columns.
    pub fn column_count(&self) -> usize {
        self.inner.read().columns.len()
    }

    /// Approximate in-memory footprint in bytes (columns + replica).
    pub fn footprint_bytes(&self) -> usize {
        let inner = self.inner.read();
        let columns: usize = inner
            .columns
            .iter()
            .map(|(name, c)| {
                name.len()
                    + 48
                    + c.entries
                        .iter()
                        .map(|(v, _)| v.footprint() + 8)
                        .sum::<usize>()
            })
            .sum();
        let replica: usize = inner.replica.values().map(|t| t.footprint() + 32).sum();
        columns + replica
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_core::prelude::Timestamp;

    fn vid(i: u64) -> Vid {
        Vid::from_raw(i)
    }

    fn fs_tuple(size: i64, modified_day: u32) -> TupleComponent {
        TupleComponent::of(vec![
            ("size", Value::Integer(size)),
            (
                "last modified time",
                Value::Date(Timestamp::from_ymd(2005, 6, modified_day).unwrap()),
            ),
        ])
    }

    fn sample() -> TupleIndex {
        let index = TupleIndex::new();
        index.index(vid(1), &fs_tuple(100, 1));
        index.index(vid(2), &fs_tuple(500_000, 10));
        index.index(vid(3), &fs_tuple(420_001, 20));
        index
    }

    #[test]
    fn range_comparisons() {
        let index = sample();
        assert_eq!(
            index.compare("size", CompareOp::Gt, &Value::Integer(420_000)),
            vec![vid(2), vid(3)]
        );
        assert_eq!(
            index.compare("size", CompareOp::Le, &Value::Integer(100)),
            vec![vid(1)]
        );
        assert_eq!(
            index.compare("size", CompareOp::Eq, &Value::Integer(500_000)),
            vec![vid(2)]
        );
        assert_eq!(
            index.compare("size", CompareOp::Ne, &Value::Integer(100)),
            vec![vid(2), vid(3)]
        );
    }

    #[test]
    fn date_comparisons_match_q3() {
        let index = sample();
        let cutoff = Value::Date(Timestamp::parse_dmy("12.06.2005").unwrap());
        let before = index.compare("last modified time", CompareOp::Lt, &cutoff);
        assert_eq!(before, vec![vid(1), vid(2)]);
    }

    #[test]
    fn mixed_domains_in_one_column() {
        let index = TupleIndex::new();
        index.index(
            vid(1),
            &TupleComponent::of(vec![("label", Value::Text("fig:a".into()))]),
        );
        index.index(
            vid(2),
            &TupleComponent::of(vec![("label", Value::Integer(7))]),
        );
        // Text comparison sees only the text entry.
        assert_eq!(
            index.compare("label", CompareOp::Eq, &Value::Text("fig:a".into())),
            vec![vid(1)]
        );
        // Integer comparison sees only the numeric entry.
        assert_eq!(
            index.compare("label", CompareOp::Ge, &Value::Integer(0)),
            vec![vid(2)]
        );
        assert_eq!(index.has_attribute("label"), vec![vid(1), vid(2)]);
    }

    #[test]
    fn int_float_cross_domain_comparison() {
        let index = TupleIndex::new();
        index.index(vid(1), &TupleComponent::of(vec![("x", Value::Float(1.5))]));
        index.index(vid(2), &TupleComponent::of(vec![("x", Value::Integer(2))]));
        assert_eq!(
            index.compare("x", CompareOp::Gt, &Value::Integer(1)),
            vec![vid(1), vid(2)]
        );
        assert_eq!(
            index.compare("x", CompareOp::Gt, &Value::Float(1.6)),
            vec![vid(2)]
        );
    }

    #[test]
    fn reindex_replaces_old_values() {
        let index = TupleIndex::new();
        index.index(vid(1), &fs_tuple(10, 1));
        index.index(vid(1), &fs_tuple(99, 2));
        assert_eq!(
            index.compare("size", CompareOp::Eq, &Value::Integer(10)),
            Vec::<Vid>::new()
        );
        assert_eq!(
            index.compare("size", CompareOp::Eq, &Value::Integer(99)),
            vec![vid(1)]
        );
        assert_eq!(index.view_count(), 1);
    }

    #[test]
    fn remove_clears_everything() {
        let index = sample();
        index.remove(vid(2));
        assert!(index.tuple_of(vid(2)).is_none());
        assert_eq!(
            index.compare("size", CompareOp::Gt, &Value::Integer(420_000)),
            vec![vid(3)]
        );
    }

    #[test]
    fn replica_serves_join_field_access() {
        let index = TupleIndex::new();
        index.index(
            vid(5),
            &TupleComponent::of(vec![("label", Value::Text("fig:idx".into()))]),
        );
        assert_eq!(
            index.value_of(vid(5), "label"),
            Some(Value::Text("fig:idx".into()))
        );
        assert_eq!(index.value_of(vid(5), "nope"), None);
    }

    #[test]
    fn unknown_attribute_matches_nothing() {
        let index = sample();
        assert!(index
            .compare("ghost", CompareOp::Eq, &Value::Integer(1))
            .is_empty());
        assert!(index.has_attribute("ghost").is_empty());
    }
}
