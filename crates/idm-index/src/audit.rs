//! Index audit & repair: cross-checks the Replica&Indexes structures
//! against the live [`ViewStore`] and rebuilds any view whose postings
//! drifted.
//!
//! The indexes are *derived* state — every entry must be recomputable
//! from the store — so an audit needs no second source of truth: for a
//! view `v` it re-derives what each structure should hold and compares.
//! Per-slot **version counters** in the store make repeated audits
//! cheap: a [`AuditMemo`] remembers the version each view last verified
//! clean at, and an unchanged view is skipped entirely.
//!
//! Repair reuses the ingest path: mismatched views are removed from
//! every structure and rebuilt through [`IndexSegment::build`] +
//! [`IndexBundle::merge_segment`] — the same code recovery uses, so a
//! repaired index is indistinguishable from a freshly built one.

use std::collections::HashMap;

use idm_core::prelude::*;

use crate::bundle::IndexBundle;
use crate::segment::IndexSegment;
use crate::tokenizer;

/// How much of the store one audit round cross-checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditScope {
    /// A deterministic pseudo-random sample of at most `sample` views
    /// (cheap steady-state rounds).
    Sampled {
        /// Maximum views checked this round.
        sample: usize,
        /// Seed for the deterministic pick; vary it per round to cover
        /// the whole store over time.
        seed: u64,
    },
    /// Every live view, plus stale-entry detection (catalog entries for
    /// views the store no longer holds).
    Full,
}

/// One index/store disagreement.
#[derive(Debug, Clone)]
pub struct AuditMismatch {
    /// The drifted view.
    pub vid: u64,
    /// Which structure disagreed and how.
    pub detail: String,
}

/// What one audit round found.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Views cross-checked this round.
    pub views_checked: usize,
    /// Views skipped because their version was unchanged since the last
    /// clean check.
    pub skipped_unchanged: usize,
    /// Views whose postings disagree with the store.
    pub mismatches: Vec<AuditMismatch>,
    /// Catalog entries for views the store no longer holds (found only
    /// by [`AuditScope::Full`]).
    pub stale_entries: Vec<u64>,
}

impl AuditReport {
    /// Whether every checked view verified clean.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty() && self.stale_entries.is_empty()
    }
}

/// Version memo carried across audit rounds: vid → store version at the
/// last clean check. Unchanged views are skipped.
#[derive(Debug, Default)]
pub struct AuditMemo {
    versions: HashMap<u64, u64>,
}

impl AuditMemo {
    /// An empty memo (first audit checks everything it samples).
    pub fn new() -> Self {
        AuditMemo::default()
    }

    /// Forgets everything (e.g. after an index reload).
    pub fn clear(&mut self) {
        self.versions.clear();
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn sorted(mut vids: Vec<Vid>) -> Vec<u64> {
    vids.sort_unstable();
    let mut raw: Vec<u64> = vids.into_iter().map(|v| v.as_u64()).collect();
    raw.dedup();
    raw
}

/// Cross-checks one view against every structure. Returns `None` when
/// clean, `Some(detail)` on the first disagreement.
fn check_view(bundle: &IndexBundle, store: &ViewStore, vid: Vid) -> Result<Option<String>> {
    // Catalog row.
    let Some(entry) = bundle.catalog.entry(vid) else {
        return Ok(Some("missing catalog entry".into()));
    };
    let store_name = store.with_name(vid, |n| n.map(str::to_owned))?;
    if entry.name != store_name.clone().unwrap_or_default() {
        return Ok(Some(format!(
            "catalog name {:?} != store name {:?}",
            entry.name, store_name
        )));
    }
    let store_class = store.class(vid)?.map(|c| store.classes().name(c));
    if entry.class != store_class {
        return Ok(Some(format!(
            "catalog class {:?} != store class {:?}",
            entry.class, store_class
        )));
    }

    // Name index: the store's name must resolve back to this vid.
    if let Some(name) = &store_name {
        if !bundle.name.exact(name).contains(&vid) {
            return Ok(Some(format!("name index misses {name:?}")));
        }
    }

    // Tuple replica: byte-equal tuple component.
    let store_tuple = store.with_tuple(vid, |t| t.cloned())?;
    if bundle.tuple.tuple_of(vid) != store_tuple {
        return Ok(Some("tuple replica drifted".into()));
    }

    // Content index: spot-check term frequencies for the first distinct
    // terms of the re-derived token stream (the index is not a replica,
    // so full reconstruction is impossible by design).
    if entry.content_indexed {
        let content = store.content(vid)?;
        if content.is_finite() && !content.is_empty() {
            let bytes = content.bytes()?;
            let text = String::from_utf8_lossy(&bytes);
            let mut expected: HashMap<&str, usize> = HashMap::new();
            let tokens = tokenizer::tokenize(&text);
            for token in &tokens {
                *expected.entry(token.term.as_str()).or_default() += 1;
            }
            for (term, count) in expected.into_iter().take(8) {
                let indexed = bundle.content.term_frequency(vid, term);
                if indexed != count {
                    return Ok(Some(format!(
                        "content index has {indexed} occurrence(s) of {term:?}, store text has {count}"
                    )));
                }
            }
        }
    }

    // Group replica: forward adjacency equals materialized members.
    let expected_children: Vec<u64> = match &store.group_handle(vid)? {
        Group::Materialized(data) => sorted(data.members().collect()),
        Group::Lazy(lazy) if lazy.is_materialized() => {
            sorted(lazy.force(store, vid)?.members().collect())
        }
        _ => Vec::new(),
    };
    let indexed_children = sorted(bundle.group.children(vid));
    if indexed_children != expected_children {
        return Ok(Some(format!(
            "group replica has {} child(ren), store has {}",
            indexed_children.len(),
            expected_children.len()
        )));
    }
    Ok(None)
}

/// Runs one audit round. With a [`AuditMemo`], views whose store version
/// is unchanged since their last clean check are skipped (per-slot
/// version counters make drift detection O(changed views), not
/// O(store)).
///
/// A view mutated concurrently mid-check is not reported: its version is
/// re-read after a mismatch and a changed version voids the finding
/// (maintenance will have updated the index through the normal path).
pub fn audit(
    bundle: &IndexBundle,
    store: &ViewStore,
    scope: AuditScope,
    mut memo: Option<&mut AuditMemo>,
) -> Result<AuditReport> {
    let mut report = AuditReport::default();
    let mut vids = store.vids();
    vids.sort_unstable();

    let picked: Vec<Vid> = match scope {
        AuditScope::Full => vids.clone(),
        AuditScope::Sampled { sample, seed } => {
            if vids.len() <= sample {
                vids.clone()
            } else {
                let mut state = seed;
                let mut picked = Vec::with_capacity(sample);
                let mut pool = vids.clone();
                for _ in 0..sample {
                    let at = (splitmix(&mut state) % pool.len() as u64) as usize;
                    picked.push(pool.swap_remove(at));
                }
                picked.sort_unstable();
                picked
            }
        }
    };

    for vid in picked {
        let version_before = match store.version(vid) {
            Ok(v) => v,
            Err(_) => continue, // removed mid-round
        };
        if let Some(memo) = memo.as_deref_mut() {
            if memo.versions.get(&vid.as_u64()) == Some(&version_before) {
                report.skipped_unchanged += 1;
                continue;
            }
        }
        report.views_checked += 1;
        match check_view(bundle, store, vid)? {
            None => {
                if let Some(memo) = memo.as_deref_mut() {
                    memo.versions.insert(vid.as_u64(), version_before);
                }
            }
            Some(detail) => {
                let racing = store
                    .version(vid)
                    .map(|v| v != version_before)
                    .unwrap_or(true);
                if !racing {
                    report.mismatches.push(AuditMismatch {
                        vid: vid.as_u64(),
                        detail,
                    });
                }
            }
        }
    }

    if scope == AuditScope::Full {
        for vid in bundle.catalog.vids() {
            if !store.contains(vid) {
                report.stale_entries.push(vid.as_u64());
            }
        }
        report.stale_entries.sort_unstable();
    }
    Ok(report)
}

/// Repairs every finding of `report`: stale catalog entries are removed
/// from all structures, drifted views are removed and rebuilt through
/// the segment path (grouped by their catalog source so source
/// accounting survives the rebuild). Returns the number of views
/// repaired.
pub fn repair(bundle: &IndexBundle, store: &ViewStore, report: &AuditReport) -> Result<usize> {
    for &vid in &report.stale_entries {
        bundle.remove_view(Vid::from_raw(vid));
    }
    let mut by_source: HashMap<String, Vec<Vid>> = HashMap::new();
    for mismatch in &report.mismatches {
        let vid = Vid::from_raw(mismatch.vid);
        let source = bundle
            .catalog
            .entry(vid)
            .map(|e| e.source)
            .unwrap_or_else(|| "dataspace".to_owned());
        bundle.remove_view(vid);
        if store.contains(vid) {
            by_source.entry(source).or_default().push(vid);
        }
    }
    let mut repaired = report.stale_entries.len();
    for (source, vids) in by_source {
        let segment = IndexSegment::build(store, &vids, &source)?;
        repaired += segment.len();
        bundle.merge_segment(segment);
    }
    Ok(repaired)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn indexed_store() -> (ViewStore, IndexBundle, [Vid; 3]) {
        let store = ViewStore::new();
        let bundle = IndexBundle::new();
        let a = store
            .build("alpha.txt")
            .text("alpha beta beta gamma")
            .insert();
        let b = store.build("beta.txt").text("delta epsilon").insert();
        let g = store.build("folder").children(vec![a, b]).insert();
        for vid in [a, b, g] {
            bundle.index_view(&store, vid, "test").unwrap();
        }
        (store, bundle, [a, b, g])
    }

    #[test]
    fn clean_bundle_audits_clean() {
        let (store, bundle, _) = indexed_store();
        let report = audit(&bundle, &store, AuditScope::Full, None).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.views_checked, 3);
    }

    #[test]
    fn memo_skips_unchanged_views() {
        let (store, bundle, [vid, _, _]) = indexed_store();
        let mut memo = AuditMemo::new();
        let first = audit(&bundle, &store, AuditScope::Full, Some(&mut memo)).unwrap();
        assert_eq!(first.views_checked, 3);
        let second = audit(&bundle, &store, AuditScope::Full, Some(&mut memo)).unwrap();
        assert_eq!(second.views_checked, 0);
        assert_eq!(second.skipped_unchanged, 3);

        // A mutation re-enters the audit set.
        store.set_name(vid, Some("renamed.txt".into())).unwrap();
        let third = audit(&bundle, &store, AuditScope::Full, Some(&mut memo)).unwrap();
        assert_eq!(third.views_checked, 1);
    }

    #[test]
    fn drifted_postings_are_found_and_repaired() {
        let (store, bundle, [vid, _, _]) = indexed_store();
        // Sabotage three structures behind the store's back.
        bundle.name.remove(vid, "alpha.txt");
        bundle.content.remove(vid);
        bundle.tuple.remove(vid);

        let report = audit(&bundle, &store, AuditScope::Full, None).unwrap();
        assert_eq!(report.mismatches.len(), 1, "{report:?}");
        assert_eq!(report.mismatches[0].vid, vid.as_u64());

        let repaired = repair(&bundle, &store, &report).unwrap();
        assert_eq!(repaired, 1);
        let after = audit(&bundle, &store, AuditScope::Full, None).unwrap();
        assert!(after.is_clean(), "{after:?}");
        assert_eq!(bundle.name.exact("alpha.txt"), vec![vid]);
        assert_eq!(bundle.content.term_frequency(vid, "beta"), 2);
        // Source label survived the rebuild.
        assert_eq!(bundle.catalog.entry(vid).unwrap().source, "test");
    }

    #[test]
    fn stale_catalog_entries_are_found_and_removed() {
        let (store, bundle, [_, vid, _]) = indexed_store();
        store.remove(vid).unwrap();
        // The bundle was never told: a stale entry plus a drifted group
        // replica (the folder still lists the removed child — allowed,
        // group edges may dangle, so only the catalog is stale).
        let report = audit(&bundle, &store, AuditScope::Full, None).unwrap();
        assert_eq!(report.stale_entries, vec![vid.as_u64()]);

        repair(&bundle, &store, &report).unwrap();
        assert!(!bundle.catalog.contains(vid));
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let store = ViewStore::new();
        let bundle = IndexBundle::new();
        for i in 0..50 {
            let vid = store.build(format!("v{i}")).text("x").insert();
            bundle.index_view(&store, vid, "test").unwrap();
        }
        let a = audit(
            &bundle,
            &store,
            AuditScope::Sampled {
                sample: 7,
                seed: 42,
            },
            None,
        )
        .unwrap();
        let b = audit(
            &bundle,
            &store,
            AuditScope::Sampled {
                sample: 7,
                seed: 42,
            },
            None,
        )
        .unwrap();
        assert_eq!(a.views_checked, 7);
        assert_eq!(b.views_checked, 7);
        assert!(a.is_clean() && b.is_clean());
    }
}
