//! # idm-index — the Replica&Indexes module of iMeMex (Section 5.2)
//!
//! The paper's prototype used Apache Lucene for full-text indexes and
//! Apache Derby for the Resource View Catalog; this crate rebuilds both
//! from scratch, mirroring the four per-component structures used in the
//! evaluation (Section 7.2):
//!
//! 1. **Name Index & Replica** ([`name`]) — resolves exact and wildcard
//!    name patterns and stores the name values themselves,
//! 2. **Tuple Index & Replica** (mod `tuple`) — an in-memory, vertically
//!    partitioned sorted-column index over tuple component attributes
//!    (the paper cites the Decomposition Storage Model \[11\]),
//! 3. **Content Index** ([`fulltext`]) — a positional inverted keyword
//!    index supporting keyword, boolean and phrase queries; *not* a
//!    replica: the original content cannot be reconstructed from it,
//! 4. **Group Replica** ([`group`]) — forward and reverse adjacency over
//!    group components, so path expansion never touches the sources.
//!
//! Plus the **Resource View Catalog** ([`catalog`]) where every managed
//! view is registered. All structures report their approximate byte
//! footprint so Table 3 (index sizes) can be regenerated.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod audit;
pub mod bundle;
pub mod catalog;
pub mod fulltext;
pub mod group;
pub mod histogram;
pub mod name;
pub mod persist;
pub mod segment;
pub mod tokenizer;
pub mod tuple;

pub use audit::{audit, repair, AuditMemo, AuditMismatch, AuditReport, AuditScope};
pub use bundle::{ContentIndexing, IndexBundle, IndexSizes};
pub use catalog::{CatalogEntry, ResourceViewCatalog};
pub use fulltext::FullTextIndex;
pub use group::GroupReplica;
pub use histogram::{HistogramIndex, Signature};
pub use name::NameIndex;
pub use segment::IndexSegment;
pub use tokenizer::tokenize;
pub use tuple::TupleIndex;
