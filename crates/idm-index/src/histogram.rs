//! A histogram-based similarity index for non-textual content.
//!
//! Section 5.2: "content indexes are not restricted to text indexes. An
//! example of that is a content index that uses histogram information
//! to index pictures based on image similarity \[6\]" (the QBIC system).
//! This module implements that example: binary content components are
//! summarized by a normalized byte-value histogram and queried by
//! nearest-neighbour search under the L1 (histogram-intersection-style)
//! distance. For real images the histogram would be over color bins;
//! for the simulated dataspace the byte distribution plays that role —
//! the index structure and query interface are identical.

use idm_core::prelude::Vid;
use parking_lot::RwLock;

/// Number of histogram bins (byte values are folded into 8-value bins).
pub const BINS: usize = 32;

/// A normalized content histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    bins: [f32; BINS],
}

impl Signature {
    /// Computes the signature of a byte string. Empty content yields
    /// the zero signature.
    pub fn of(bytes: &[u8]) -> Self {
        let mut bins = [0f32; BINS];
        if bytes.is_empty() {
            return Signature { bins };
        }
        for &b in bytes {
            bins[(b as usize) * BINS / 256] += 1.0;
        }
        let total = bytes.len() as f32;
        for bin in &mut bins {
            *bin /= total;
        }
        Signature { bins }
    }

    /// L1 distance in `[0, 2]`; 0 = identical distributions.
    pub fn distance(&self, other: &Signature) -> f32 {
        self.bins
            .iter()
            .zip(&other.bins)
            .map(|(a, b)| (a - b).abs())
            .sum()
    }
}

#[derive(Default)]
struct Inner {
    entries: Vec<(Vid, Signature)>,
}

/// The similarity index: signatures by view, k-NN lookup.
#[derive(Default)]
pub struct HistogramIndex {
    inner: RwLock<Inner>,
}

impl HistogramIndex {
    /// An empty index.
    pub fn new() -> Self {
        HistogramIndex::default()
    }

    /// Indexes (or refreshes) a view's content signature.
    pub fn index(&self, vid: Vid, bytes: &[u8]) {
        let signature = Signature::of(bytes);
        let mut inner = self.inner.write();
        match inner.entries.binary_search_by_key(&vid, |(v, _)| *v) {
            Ok(i) => inner.entries[i].1 = signature,
            Err(i) => inner.entries.insert(i, (vid, signature)),
        }
    }

    /// Removes a view.
    pub fn remove(&self, vid: Vid) {
        let mut inner = self.inner.write();
        if let Ok(i) = inner.entries.binary_search_by_key(&vid, |(v, _)| *v) {
            inner.entries.remove(i);
        }
    }

    /// The `k` indexed views most similar to `query`, nearest first,
    /// as `(vid, distance)` pairs. Ties break by vid for determinism.
    pub fn nearest(&self, query: &Signature, k: usize) -> Vec<(Vid, f32)> {
        let inner = self.inner.read();
        let mut scored: Vec<(Vid, f32)> = inner
            .entries
            .iter()
            .map(|(vid, sig)| (*vid, sig.distance(query)))
            .collect();
        scored.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }

    /// Views within `radius` of the query, nearest first.
    pub fn within(&self, query: &Signature, radius: f32) -> Vec<(Vid, f32)> {
        let mut out = self.nearest(query, usize::MAX);
        out.retain(|(_, d)| *d <= radius);
        out
    }

    /// k-NN by example: the views most similar to an already-indexed
    /// view (excluding itself).
    pub fn similar_to(&self, vid: Vid, k: usize) -> Vec<(Vid, f32)> {
        let query = {
            let inner = self.inner.read();
            match inner.entries.binary_search_by_key(&vid, |(v, _)| *v) {
                Ok(i) => inner.entries[i].1.clone(),
                Err(_) => return Vec::new(),
            }
        };
        self.nearest(&query, k + 1)
            .into_iter()
            .filter(|(v, _)| *v != vid)
            .take(k)
            .collect()
    }

    /// Number of indexed views.
    pub fn len(&self) -> usize {
        self.inner.read().entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialized size in bytes (vid + quantized bins per entry).
    pub fn footprint_bytes(&self) -> usize {
        self.len() * (8 + BINS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: u64) -> Vid {
        Vid::from_raw(i)
    }

    /// Deterministic pseudo-image: a byte pattern with a given bias.
    fn image(bias: u8, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (bias as usize + i * 7 % 40) as u8)
            .collect()
    }

    #[test]
    fn identical_content_has_zero_distance() {
        let a = Signature::of(&image(10, 500));
        let b = Signature::of(&image(10, 500));
        assert_eq!(a.distance(&b), 0.0);
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let a = Signature::of(&image(0, 300));
        let b = Signature::of(&image(200, 300));
        assert_eq!(a.distance(&b), b.distance(&a));
        assert!(a.distance(&b) <= 2.0 + 1e-4, "{}", a.distance(&b));
        assert!(a.distance(&b) > 0.0);
    }

    #[test]
    fn nearest_prefers_similar_distributions() {
        let index = HistogramIndex::new();
        index.index(vid(1), &image(10, 400)); // dark-ish
        index.index(vid(2), &image(12, 400)); // near-dark
        index.index(vid(3), &image(200, 400)); // bright

        let query = Signature::of(&image(11, 400));
        let hits = index.nearest(&query, 2);
        assert_eq!(hits.len(), 2);
        let ids: Vec<Vid> = hits.iter().map(|(v, _)| *v).collect();
        assert!(ids.contains(&vid(1)) && ids.contains(&vid(2)));
        assert!(hits[0].1 <= hits[1].1, "nearest first");
    }

    #[test]
    fn similar_to_excludes_self() {
        let index = HistogramIndex::new();
        for i in 0..5 {
            index.index(vid(i), &image((i * 40) as u8, 300));
        }
        let similar = index.similar_to(vid(0), 2);
        assert_eq!(similar.len(), 2);
        assert!(similar.iter().all(|(v, _)| *v != vid(0)));
        assert!(index.similar_to(vid(99), 3).is_empty());
    }

    #[test]
    fn within_radius_filters() {
        let index = HistogramIndex::new();
        index.index(vid(1), &image(10, 300));
        index.index(vid(2), &image(250, 300));
        let query = Signature::of(&image(10, 300));
        let close = index.within(&query, 0.1);
        assert_eq!(close.len(), 1);
        assert_eq!(close[0].0, vid(1));
        assert_eq!(index.within(&query, 2.0).len(), 2);
    }

    #[test]
    fn reindex_and_remove() {
        let index = HistogramIndex::new();
        index.index(vid(1), &image(10, 100));
        index.index(vid(1), &image(200, 100)); // refresh
        assert_eq!(index.len(), 1);
        let query = Signature::of(&image(200, 100));
        assert_eq!(index.nearest(&query, 1)[0].1, 0.0);
        index.remove(vid(1));
        assert!(index.is_empty());
        index.remove(vid(1)); // no-op
    }

    #[test]
    fn empty_content_is_representable() {
        let zero = Signature::of(&[]);
        assert_eq!(zero.distance(&zero), 0.0);
        let index = HistogramIndex::new();
        index.index(vid(1), &[]);
        assert_eq!(index.nearest(&zero, 1)[0].0, vid(1));
    }
}
