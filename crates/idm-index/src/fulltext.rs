//! A positional inverted keyword index (the Lucene stand-in).
//!
//! Supports single-term lookups, boolean AND/OR combinations and exact
//! phrase queries via positional intersection. The index is **not** a
//! replica: term positions cannot reconstruct the original content
//! (Section 5.2 makes this distinction explicitly).

use std::collections::{BTreeMap, HashSet};

use idm_core::prelude::Vid;
use parking_lot::RwLock;

use crate::tokenizer::{terms, tokenize};

/// A posting: one document (view) and the positions of a term within it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Posting {
    vid: Vid,
    positions: Vec<u32>,
}

#[derive(Default)]
struct Inner {
    /// Term → postings sorted by vid.
    postings: BTreeMap<String, Vec<Posting>>,
    /// Number of indexed documents.
    documents: usize,
    /// Total tokens indexed.
    tokens: u64,
}

/// Exported posting lists: `(term, [(vid, positions)])`.
pub type ExportedPostings = Vec<(String, Vec<(u64, Vec<u32>)>)>;

/// A document pre-tokenized off the index lock: term → positions, plus
/// the total token count. Built by [`pretokenize`] (possibly on a
/// worker thread) and applied with [`FullTextIndex::index_pretokenized`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PretokenizedDoc {
    per_term: BTreeMap<String, Vec<u32>>,
    tokens: u64,
}

/// Tokenizes `text` into the form [`FullTextIndex::index_pretokenized`]
/// consumes — the CPU-heavy half of indexing, safe to run in parallel
/// per document. Returns `None` when the text yields no tokens.
pub fn pretokenize(text: &str) -> Option<PretokenizedDoc> {
    let tokens = tokenize(text);
    if tokens.is_empty() {
        return None;
    }
    let count = tokens.len() as u64;
    let mut per_term: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    for token in tokens {
        per_term.entry(token.term).or_default().push(token.position);
    }
    Some(PretokenizedDoc {
        per_term,
        tokens: count,
    })
}

/// The inverted full-text index.
#[derive(Default)]
pub struct FullTextIndex {
    inner: RwLock<Inner>,
}

impl FullTextIndex {
    /// An empty index.
    pub fn new() -> Self {
        FullTextIndex::default()
    }

    /// Indexes a document's text under `vid`.
    ///
    /// A vid must be indexed at most once; re-indexing requires
    /// [`FullTextIndex::remove`] first.
    pub fn index(&self, vid: Vid, text: &str) {
        if let Some(doc) = pretokenize(text) {
            self.index_pretokenized(vid, doc);
        }
    }

    /// Merges a document tokenized by [`pretokenize`] — the cheap,
    /// lock-holding half of [`FullTextIndex::index`], used by the bulk
    /// segment-merge path.
    pub fn index_pretokenized(&self, vid: Vid, doc: PretokenizedDoc) {
        let mut inner = self.inner.write();
        inner.documents += 1;
        inner.tokens += doc.tokens;
        for (term, positions) in doc.per_term {
            let postings = inner.postings.entry(term).or_default();
            // Insertion keeps vid order if vids are indexed in order;
            // otherwise insert at the right position.
            match postings.binary_search_by_key(&vid, |p| p.vid) {
                Ok(i) => postings[i].positions.extend(positions),
                Err(i) => postings.insert(i, Posting { vid, positions }),
            }
        }
    }

    /// Removes a document from the index.
    pub fn remove(&self, vid: Vid) {
        let mut inner = self.inner.write();
        let mut removed_any = false;
        inner.postings.retain(|_, postings| {
            if let Ok(i) = postings.binary_search_by_key(&vid, |p| p.vid) {
                postings.remove(i);
                removed_any = true;
            }
            !postings.is_empty()
        });
        if removed_any {
            inner.documents = inner.documents.saturating_sub(1);
        }
    }

    /// Documents containing `term` (normalized).
    pub fn term_query(&self, term: &str) -> Vec<Vid> {
        let normalized = terms(term);
        let Some(term) = normalized.first() else {
            return Vec::new();
        };
        let inner = self.inner.read();
        inner
            .postings
            .get(term)
            .map(|ps| ps.iter().map(|p| p.vid).collect())
            .unwrap_or_default()
    }

    /// Documents containing the exact phrase (terms at adjacent
    /// positions). A single-term phrase degrades to a term query.
    pub fn phrase_query(&self, phrase: &str) -> Vec<Vid> {
        let query_terms = terms(phrase);
        match query_terms.len() {
            0 => return Vec::new(),
            1 => return self.term_query(&query_terms[0]),
            _ => {}
        }
        let inner = self.inner.read();
        let mut lists: Vec<&Vec<Posting>> = Vec::with_capacity(query_terms.len());
        for term in &query_terms {
            match inner.postings.get(term) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        // Drive by the rarest list.
        let driver = lists
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.len())
            .map(|(i, _)| i)
            .unwrap_or(0);

        let mut out = Vec::new();
        'candidates: for posting in lists[driver] {
            let vid = posting.vid;
            // Gather positions of every term in this document.
            let mut doc_positions: Vec<&[u32]> = Vec::with_capacity(lists.len());
            for list in &lists {
                match list.binary_search_by_key(&vid, |p| p.vid) {
                    Ok(i) => doc_positions.push(&list[i].positions),
                    Err(_) => continue 'candidates,
                }
            }
            // Check adjacency: positions of term i must contain p0 + i.
            for &p0 in doc_positions[0] {
                if (1..doc_positions.len())
                    .all(|i| doc_positions[i].binary_search(&(p0 + i as u32)).is_ok())
                {
                    out.push(vid);
                    break;
                }
            }
        }
        out
    }

    /// Documents containing **all** the given phrases (boolean AND).
    pub fn all_of(&self, phrases: &[&str]) -> Vec<Vid> {
        let mut sets: Vec<HashSet<Vid>> = phrases
            .iter()
            .map(|p| self.phrase_query(p).into_iter().collect())
            .collect();
        let Some(mut acc) = sets.pop() else {
            return Vec::new();
        };
        for set in sets {
            acc.retain(|v| set.contains(v));
        }
        let mut out: Vec<Vid> = acc.into_iter().collect();
        out.sort();
        out
    }

    /// Documents containing **any** of the given phrases (boolean OR).
    pub fn any_of(&self, phrases: &[&str]) -> Vec<Vid> {
        let mut acc: HashSet<Vid> = HashSet::new();
        for phrase in phrases {
            acc.extend(self.phrase_query(phrase));
        }
        let mut out: Vec<Vid> = acc.into_iter().collect();
        out.sort();
        out
    }

    /// Exports the posting lists for persistence:
    /// `(term, [(vid, positions)])`, terms sorted.
    pub fn export_postings(&self) -> ExportedPostings {
        let inner = self.inner.read();
        inner
            .postings
            .iter()
            .map(|(term, postings)| {
                (
                    term.clone(),
                    postings
                        .iter()
                        .map(|p| (p.vid.as_u64(), p.positions.clone()))
                        .collect(),
                )
            })
            .collect()
    }

    /// Rebuilds the index from exported postings (plus the document and
    /// token counters, which cannot be derived from postings alone).
    pub fn import_postings(&self, postings: ExportedPostings, documents: usize, tokens: u64) {
        let mut inner = self.inner.write();
        inner.postings = postings
            .into_iter()
            .map(|(term, list)| {
                (
                    term,
                    list.into_iter()
                        .map(|(vid, positions)| Posting {
                            vid: Vid::from_raw(vid),
                            positions,
                        })
                        .collect(),
                )
            })
            .collect();
        inner.documents = documents;
        inner.tokens = tokens;
    }

    /// Total indexed tokens (persistence counter).
    pub fn token_count(&self) -> u64 {
        self.inner.read().tokens
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.inner.read().postings.len()
    }

    /// How often `term` occurs in document `vid` (0 if absent).
    pub fn term_frequency(&self, vid: Vid, term: &str) -> usize {
        let normalized = terms(term);
        let Some(term) = normalized.first() else {
            return 0;
        };
        let inner = self.inner.read();
        inner
            .postings
            .get(term)
            .and_then(|postings| {
                postings
                    .binary_search_by_key(&vid, |p| p.vid)
                    .ok()
                    .map(|i| postings[i].positions.len())
            })
            .unwrap_or(0)
    }

    /// Number of documents containing `term` (document frequency).
    pub fn document_frequency(&self, term: &str) -> usize {
        let normalized = terms(term);
        let Some(term) = normalized.first() else {
            return 0;
        };
        self.inner
            .read()
            .postings
            .get(term)
            .map(Vec::len)
            .unwrap_or(0)
    }

    /// Number of indexed documents.
    pub fn document_count(&self) -> usize {
        self.inner.read().documents
    }

    /// Serialized index size in bytes, modeling the compressed on-disk
    /// layout real keyword indexes (like the paper's Lucene) use:
    /// delta-encoded varint document ids and positions per term.
    pub fn footprint_bytes(&self) -> usize {
        fn varint(v: u64) -> usize {
            (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
        }
        let inner = self.inner.read();
        inner
            .postings
            .iter()
            .map(|(term, postings)| {
                let mut bytes = term.len() + varint(postings.len() as u64) + 8;
                let mut prev_vid = 0u64;
                for posting in postings {
                    bytes += varint(posting.vid.as_u64().wrapping_sub(prev_vid));
                    prev_vid = posting.vid.as_u64();
                    bytes += varint(posting.positions.len() as u64);
                    let mut prev_pos = 0u32;
                    for &pos in &posting.positions {
                        bytes += varint(u64::from(pos.wrapping_sub(prev_pos)));
                        prev_pos = pos;
                    }
                }
                bytes
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: u64) -> Vid {
        Vid::from_raw(i)
    }

    fn sample() -> FullTextIndex {
        let index = FullTextIndex::new();
        index.index(vid(1), "database systems and database tuning");
        index.index(vid(2), "tuning a database");
        index.index(vid(3), "the art of computer programming");
        index
    }

    #[test]
    fn term_query_finds_documents() {
        let index = sample();
        assert_eq!(index.term_query("database"), vec![vid(1), vid(2)]);
        assert_eq!(index.term_query("DATABASE"), vec![vid(1), vid(2)]);
        assert_eq!(index.term_query("tuning"), vec![vid(1), vid(2)]);
        assert!(index.term_query("nonexistent").is_empty());
    }

    #[test]
    fn phrase_query_requires_adjacency() {
        let index = sample();
        // "database tuning" is adjacent only in doc 1.
        assert_eq!(index.phrase_query("database tuning"), vec![vid(1)]);
        // Both words occur in doc 2 but not adjacently.
        assert!(index.phrase_query("database tuning").len() == 1);
        assert_eq!(index.phrase_query("tuning a database"), vec![vid(2)]);
        assert!(index.phrase_query("computer database").is_empty());
    }

    #[test]
    fn phrase_across_punctuation() {
        let index = FullTextIndex::new();
        index.index(vid(7), "...phrase 'Mike Franklin' appears here");
        assert_eq!(index.phrase_query("Mike Franklin"), vec![vid(7)]);
    }

    #[test]
    fn boolean_combinations() {
        let index = sample();
        assert_eq!(index.all_of(&["database", "tuning"]), vec![vid(1), vid(2)]);
        assert_eq!(index.all_of(&["database", "systems"]), vec![vid(1)]);
        assert_eq!(
            index.any_of(&["programming", "systems"]),
            vec![vid(1), vid(3)]
        );
        assert!(index.all_of(&[]).is_empty());
        assert!(index.any_of(&[]).is_empty());
    }

    #[test]
    fn remove_document() {
        let index = sample();
        index.remove(vid(1));
        assert_eq!(index.term_query("database"), vec![vid(2)]);
        assert_eq!(index.document_count(), 2);
        assert!(index.phrase_query("database tuning").is_empty());
        // Removing twice is a no-op.
        index.remove(vid(1));
        assert_eq!(index.document_count(), 2);
    }

    #[test]
    fn repeated_terms_in_document() {
        let index = FullTextIndex::new();
        index.index(vid(1), "go go go gadget");
        assert_eq!(index.term_query("go"), vec![vid(1)]);
        assert_eq!(index.phrase_query("go go gadget"), vec![vid(1)]);
        assert!(index.phrase_query("gadget go").is_empty());
    }

    #[test]
    fn empty_documents_not_counted() {
        let index = FullTextIndex::new();
        index.index(vid(1), "   !!! ");
        assert_eq!(index.document_count(), 0);
    }

    #[test]
    fn out_of_order_vids() {
        let index = FullTextIndex::new();
        index.index(vid(9), "alpha");
        index.index(vid(3), "alpha");
        index.index(vid(5), "alpha");
        assert_eq!(index.term_query("alpha"), vec![vid(3), vid(5), vid(9)]);
    }

    #[test]
    fn footprint_grows_with_content() {
        let index = FullTextIndex::new();
        let before = index.footprint_bytes();
        index.index(vid(1), "some words to index for footprint accounting");
        assert!(index.footprint_bytes() > before);
    }
}
