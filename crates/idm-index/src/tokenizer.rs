//! The analyzer feeding the full-text indexes: lowercased alphanumeric
//! tokens with positions (positions make phrase queries possible).

/// A token: the normalized term and its position in the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lowercased term text.
    pub term: String,
    /// 0-based position in the document's token stream.
    pub position: u32,
}

/// Tokenizes text: maximal runs of alphanumeric characters, lowercased.
/// Everything else separates tokens.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut position = 0u32;
    for c in text.chars() {
        if c.is_alphanumeric() {
            for lower in c.to_lowercase() {
                current.push(lower);
            }
        } else if !current.is_empty() {
            tokens.push(Token {
                term: std::mem::take(&mut current),
                position,
            });
            position += 1;
        }
    }
    if !current.is_empty() {
        tokens.push(Token {
            term: current,
            position,
        });
    }
    tokens
}

/// Tokenizes a query phrase into its terms (no positions needed).
pub fn terms(text: &str) -> Vec<String> {
    tokenize(text).into_iter().map(|t| t.term).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_alphanumerics() {
        let tokens = tokenize("Show me: all LaTeX 'Introduction' sections!");
        let terms: Vec<&str> = tokens.iter().map(|t| t.term.as_str()).collect();
        assert_eq!(
            terms,
            vec!["show", "me", "all", "latex", "introduction", "sections"]
        );
        let positions: Vec<u32> = tokens.iter().map(|t| t.position).collect();
        assert_eq!(positions, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn numbers_are_tokens() {
        assert_eq!(terms("VLDB 2006 paper"), vec!["vldb", "2006", "paper"]);
        assert_eq!(terms("vldb2006"), vec!["vldb2006"]);
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!@# $%^").is_empty());
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(terms("Zürich ETH"), vec!["zürich", "eth"]);
    }

    #[test]
    fn adjacent_positions_for_phrases() {
        let tokens = tokenize("database tuning guide");
        assert_eq!(tokens[0].position + 1, tokens[1].position);
        assert_eq!(tokens[1].position + 1, tokens[2].position);
    }
}
