//! Property-based tests: every index structure is checked against a
//! naive reference implementation on random inputs.

use std::cmp::Ordering;

use idm_core::prelude::{TupleComponent, Value, Vid};
use idm_index::name::{NameIndex, NamePattern};
use idm_index::tuple::{CompareOp, TupleIndex};
use idm_index::{tokenize, FullTextIndex, GroupReplica};
use proptest::prelude::*;

// ---- Full-text index vs naive scan ------------------------------------

fn arb_doc() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-d]{1,3}", 0..12).prop_map(|words| words.join(" "))
}

proptest! {
    /// phrase_query agrees with a naive token-window scan.
    #[test]
    fn phrase_query_matches_naive(docs in proptest::collection::vec(arb_doc(), 1..12),
                                  phrase in proptest::collection::vec("[a-d]{1,3}", 1..4)) {
        let index = FullTextIndex::new();
        for (i, doc) in docs.iter().enumerate() {
            index.index(Vid::from_raw(i as u64), doc);
        }
        let phrase_text = phrase.join(" ");
        let mut got = index.phrase_query(&phrase_text);
        got.sort();

        let mut want: Vec<Vid> = docs.iter().enumerate().filter_map(|(i, doc)| {
            let tokens: Vec<String> = tokenize(doc).into_iter().map(|t| t.term).collect();
            let found = tokens.windows(phrase.len()).any(|w| w == phrase.as_slice());
            found.then_some(Vid::from_raw(i as u64))
        }).collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// all_of is the intersection of the individual phrase results.
    #[test]
    fn all_of_is_intersection(docs in proptest::collection::vec(arb_doc(), 1..10),
                              p1 in "[a-d]{1,3}", p2 in "[a-d]{1,3}") {
        let index = FullTextIndex::new();
        for (i, doc) in docs.iter().enumerate() {
            index.index(Vid::from_raw(i as u64), doc);
        }
        let both = index.all_of(&[&p1, &p2]);
        let s1: std::collections::HashSet<Vid> = index.phrase_query(&p1).into_iter().collect();
        let s2: std::collections::HashSet<Vid> = index.phrase_query(&p2).into_iter().collect();
        let mut want: Vec<Vid> = s1.intersection(&s2).copied().collect();
        want.sort();
        prop_assert_eq!(both, want);
    }

    /// Removal really removes: after removing a document it never
    /// appears in any term query for its own words.
    #[test]
    fn remove_is_complete(docs in proptest::collection::vec(arb_doc(), 1..8), victim in 0usize..8) {
        let index = FullTextIndex::new();
        for (i, doc) in docs.iter().enumerate() {
            index.index(Vid::from_raw(i as u64), doc);
        }
        let victim = victim % docs.len();
        index.remove(Vid::from_raw(victim as u64));
        for token in tokenize(&docs[victim]) {
            prop_assert!(!index.term_query(&token.term).contains(&Vid::from_raw(victim as u64)));
        }
    }
}

// ---- Name pattern matching vs naive glob -------------------------------

/// Naive recursive glob used as the reference semantics.
fn naive_glob(pattern: &[char], text: &[char]) -> bool {
    match (pattern.first(), text.first()) {
        (None, None) => true,
        (Some('*'), _) => {
            naive_glob(&pattern[1..], text) || (!text.is_empty() && naive_glob(pattern, &text[1..]))
        }
        (Some('?'), Some(_)) => naive_glob(&pattern[1..], &text[1..]),
        (Some(p), Some(t)) if p == t => naive_glob(&pattern[1..], &text[1..]),
        _ => false,
    }
}

proptest! {
    /// The iterative matcher agrees with the naive recursive definition.
    #[test]
    fn glob_matches_reference(pattern in "[ab*?]{0,8}", text in "[ab]{0,10}") {
        let fast = NamePattern::new(pattern.clone()).matches(&text);
        let p: Vec<char> = pattern.chars().collect();
        let t: Vec<char> = text.chars().collect();
        prop_assert_eq!(fast, naive_glob(&p, &t), "pattern '{}' text '{}'", pattern, text);
    }

    /// matching() returns exactly the names the pattern matches.
    #[test]
    fn name_index_matching_is_exact(names in proptest::collection::vec("[ab]{1,6}", 1..15),
                                    pattern in "[ab*?]{1,6}") {
        let index = NameIndex::new();
        for (i, name) in names.iter().enumerate() {
            index.index(Vid::from_raw(i as u64), name);
        }
        let compiled = NamePattern::new(pattern);
        let got: std::collections::HashSet<Vid> =
            index.matching(&compiled).into_iter().collect();
        for (i, name) in names.iter().enumerate() {
            prop_assert_eq!(
                got.contains(&Vid::from_raw(i as u64)),
                compiled.matches(name),
                "name '{}'", name
            );
        }
    }
}

// ---- Tuple index vs naive filter ----------------------------------------

proptest! {
    /// compare() agrees with a naive filter over the stored tuples.
    #[test]
    fn tuple_compare_matches_naive(values in proptest::collection::vec(-50i64..50, 1..25),
                                   constant in -50i64..50,
                                   op_choice in 0usize..6) {
        let ops = [CompareOp::Eq, CompareOp::Ne, CompareOp::Lt,
                   CompareOp::Le, CompareOp::Gt, CompareOp::Ge];
        let op = ops[op_choice];
        let index = TupleIndex::new();
        for (i, v) in values.iter().enumerate() {
            index.index(
                Vid::from_raw(i as u64),
                &TupleComponent::of(vec![("x", Value::Integer(*v))]),
            );
        }
        let mut got = index.compare("x", op, &Value::Integer(constant));
        got.sort();
        let mut want: Vec<Vid> = values.iter().enumerate().filter_map(|(i, v)| {
            op.accepts(v.cmp(&constant)).then_some(Vid::from_raw(i as u64))
        }).collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// CompareOp::accepts encodes the six comparison operators.
    #[test]
    fn compare_op_semantics(a in any::<i32>(), b in any::<i32>()) {
        let ord = a.cmp(&b);
        prop_assert_eq!(CompareOp::Eq.accepts(ord), a == b);
        prop_assert_eq!(CompareOp::Ne.accepts(ord), a != b);
        prop_assert_eq!(CompareOp::Lt.accepts(ord), a < b);
        prop_assert_eq!(CompareOp::Le.accepts(ord), a <= b);
        prop_assert_eq!(CompareOp::Gt.accepts(ord), a > b);
        prop_assert_eq!(CompareOp::Ge.accepts(ord), a >= b);
        let _ = Ordering::Equal; // keep the import honest
    }
}

// ---- Group replica vs core traversal -------------------------------------

proptest! {
    /// descendants() over the replica equals a naive reachability
    /// computation on the same edge set.
    #[test]
    fn replica_descendants_match_naive(edges in proptest::collection::vec((0u64..10, 0u64..10), 0..30)) {
        let replica = GroupReplica::new();
        let mut adjacency: std::collections::HashMap<u64, Vec<Vid>> = Default::default();
        for (a, b) in &edges {
            adjacency.entry(*a).or_default().push(Vid::from_raw(*b));
        }
        for (parent, children) in &adjacency {
            replica.index(Vid::from_raw(*parent), children);
        }

        // Naive BFS.
        let root = 0u64;
        let mut reach: std::collections::HashSet<u64> = Default::default();
        let mut queue = vec![root];
        while let Some(n) = queue.pop() {
            for (a, b) in &edges {
                if *a == n && reach.insert(*b) {
                    queue.push(*b);
                }
            }
        }
        let mut want: Vec<Vid> = reach.into_iter().map(Vid::from_raw).collect();
        want.sort();
        let mut got = replica.descendants(Vid::from_raw(root));
        got.sort();
        prop_assert_eq!(got, want);
    }

    /// parents() is the exact inverse of children().
    #[test]
    fn replica_reverse_is_inverse(edges in proptest::collection::vec((0u64..8, 0u64..8), 0..25)) {
        let replica = GroupReplica::new();
        let mut adjacency: std::collections::HashMap<u64, Vec<Vid>> = Default::default();
        for (a, b) in &edges {
            adjacency.entry(*a).or_default().push(Vid::from_raw(*b));
        }
        for (parent, children) in &adjacency {
            replica.index(Vid::from_raw(*parent), children);
        }
        for node in 0u64..8 {
            let vid = Vid::from_raw(node);
            for child in replica.children(vid) {
                prop_assert!(replica.parents(child).contains(&vid));
            }
            for parent in replica.parents(vid) {
                prop_assert!(replica.children(parent).contains(&vid));
            }
        }
    }
}

// ---- persistence roundtrip on arbitrary bundles ---------------------------

proptest! {
    /// Arbitrary bundles roundtrip through the binary format.
    #[test]
    fn persist_roundtrip(docs in proptest::collection::vec(
        ("[a-z .]{0,30}", "[a-z0-9._]{1,10}", -1000i64..1000),
        0..15,
    )) {
        use idm_core::prelude::{TupleComponent, Value, ViewStore};
        let store = ViewStore::new();
        let bundle = idm_index::IndexBundle::new();
        let mut prev = None;
        for (text, name, size) in docs {
            let mut builder = store.build(name).text(text);
            builder = builder.tuple(TupleComponent::of(vec![("size", Value::Integer(size))]));
            if let Some(prev) = prev {
                builder = builder.children(vec![prev]);
            }
            let vid = builder.insert();
            bundle.index_view(&store, vid, "prop").unwrap();
            prev = Some(vid);
        }
        let bytes = idm_index::persist::to_bytes(&bundle);
        let loaded = idm_index::persist::from_bytes(&bytes).expect("roundtrip");
        prop_assert_eq!(loaded.catalog.export_rows(), bundle.catalog.export_rows());
        prop_assert_eq!(loaded.name.export_names(), bundle.name.export_names());
        prop_assert_eq!(loaded.content.export_postings(), bundle.content.export_postings());
        prop_assert_eq!(loaded.group.export_edges(), bundle.group.export_edges());
        prop_assert_eq!(loaded.tuple.export_replica(), bundle.tuple.export_replica());
        // Determinism: re-encoding the loaded bundle gives the same bytes.
        prop_assert_eq!(idm_index::persist::to_bytes(&loaded), bytes);
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn persist_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = idm_index::persist::from_bytes(&bytes);
    }

    /// Any byte-level truncation of a checksummed index file is an
    /// error — never a panic, never a silently short bundle.
    #[test]
    fn persist_truncation_always_errors(cut in 0usize..10_000, epoch in 0u64..1000) {
        let bundle = small_bundle();
        let bytes = idm_index::persist::to_bytes_with_epoch(&bundle, epoch);
        let cut = cut % bytes.len(); // strictly shorter than the file
        prop_assert!(idm_index::persist::from_bytes_with_epoch(&bytes[..cut]).is_err());
    }

    /// Any single-byte corruption of a checksummed index file is an
    /// error: the trailing FNV-1a checksum catches every flip.
    #[test]
    fn persist_single_byte_corruption_always_errors(
        pos in 0usize..10_000,
        flip in 1u8..=255,
        epoch in 0u64..1000,
    ) {
        let bundle = small_bundle();
        let mut bytes = idm_index::persist::to_bytes_with_epoch(&bundle, epoch);
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        prop_assert!(idm_index::persist::from_bytes_with_epoch(&bytes).is_err());
    }
}

fn small_bundle() -> idm_index::IndexBundle {
    use idm_core::prelude::{TupleComponent, Value, ViewStore};
    let store = ViewStore::new();
    let bundle = idm_index::IndexBundle::new();
    let child = store.build("leaf.txt").text("leaf words here").insert();
    bundle.index_view(&store, child, "prop").unwrap();
    let parent = store
        .build("root")
        .tuple(TupleComponent::of(vec![("size", Value::Integer(42))]))
        .text("root document about dataspaces")
        .children(vec![child])
        .insert();
    bundle.index_view(&store, parent, "prop").unwrap();
    bundle
}
