//! The `LaTeX2iDM` Content2iDM converter.
//!
//! Produces the Figure 1(b) subgraph shape for a LaTeX file:
//!
//! ```text
//! latexfile ──⟨ latex_document ⟩
//!   latex_document ──⟨ documentclass, title, abstract, document ⟩
//!     document ──⟨ sections… ⟩
//!       latex_section ──⟨ text…, texref…, environments…, subsections… ⟩
//!         environment(figure) ──⟨ figure ⟩      (tuple: label, caption)
//!         texref ──⟨ referenced view ⟩          (graph edge, not tree!)
//! ```
//!
//! Resolved `\ref{…}` views point at the *referenced* section/figure view
//! through their group component — the same label-directed edge that in
//! Figure 1(b) connects the `ref` node to 'Preliminaries' and makes the
//! extracted structure a genuine graph.

use std::collections::HashMap;

use idm_core::class::builtin::names;
use idm_core::prelude::*;

use crate::parser::{parse_latex, Inline, LatexBlock, LatexDocument, LatexEnv};

/// Result of instantiating a LaTeX document in a view store.
#[derive(Debug)]
pub struct LatexMapping {
    /// The `latex_document` root view.
    pub document: Vid,
    /// Number of views created.
    pub derived: usize,
    /// Label → view (sections and figures with `\label`s).
    pub labels: HashMap<String, Vid>,
    /// All `texref` views created.
    pub refs: Vec<Vid>,
}

struct Converter<'a> {
    store: &'a ViewStore,
    text: ClassId,
    section: ClassId,
    environment: ClassId,
    figure: ClassId,
    texref: ClassId,
    labels: HashMap<String, Vid>,
    refs: Vec<(Vid, String)>,
    figure_counter: usize,
    table_counter: usize,
}

impl<'a> Converter<'a> {
    fn text_view(&self, text: &str) -> Vid {
        self.store
            .build_unnamed()
            .content(Content::text(text.to_owned()))
            .class(self.text)
            .insert()
    }

    fn convert_blocks(&mut self, blocks: &[LatexBlock]) -> Result<Vec<Vid>> {
        let mut out = Vec::new();
        for block in blocks {
            match block {
                LatexBlock::Paragraph(inlines) => {
                    for inline in inlines {
                        match inline {
                            Inline::Text(t) => out.push(self.text_view(t)),
                            Inline::Ref(label) => {
                                let vid =
                                    self.store.build(label.clone()).class(self.texref).insert();
                                self.refs.push((vid, label.clone()));
                                out.push(vid);
                            }
                            Inline::Cite(key) => {
                                // Citations become text for search purposes.
                                out.push(self.text_view(key));
                            }
                        }
                    }
                }
                LatexBlock::Section(section) => {
                    let children = self.convert_blocks(&section.blocks)?;
                    // The section view's own content component is the
                    // symbol sequence of its whole region (Section 5.1
                    // queries test phrases against a *section's* χ:
                    // "//Introduction[… and "Mike Franklin"]").
                    let deep_text = section_deep_text(section);
                    let mut builder = self
                        .store
                        .build(section.title.clone())
                        .tuple(TupleComponent::of(vec![(
                            "level",
                            Value::Integer(i64::from(section.level)),
                        )]))
                        .class(self.section);
                    if !deep_text.is_empty() {
                        builder = builder.content(Content::text(deep_text));
                    }
                    if !children.is_empty() {
                        builder = builder.sequence(children);
                    }
                    let vid = builder.insert();
                    if let Some(label) = &section.label {
                        self.labels.insert(label.clone(), vid);
                    }
                    out.push(vid);
                }
                LatexBlock::Environment(env) => {
                    out.push(self.convert_environment(env)?);
                }
            }
        }
        Ok(out)
    }

    fn convert_environment(&mut self, env: &LatexEnv) -> Result<Vid> {
        // The inner content view: `figure<n>`/`table<n>` under the
        // environment view, carrying label and caption in its tuple and
        // the caption text in its content — this is what Q7's
        // `[class="environment"]//figure*` and the Section 5.1 OLAP
        // query `[class="figure" and "Indexing time"]` select.
        let (inner_name, inner_class) = if env.kind == "figure" {
            self.figure_counter += 1;
            (format!("figure{}", self.figure_counter), self.figure)
        } else {
            self.table_counter += 1;
            (format!("table{}", self.table_counter), self.figure)
        };
        let caption = env.caption.clone().unwrap_or_default();
        let mut pairs = Vec::new();
        if let Some(label) = &env.label {
            pairs.push(("label", Value::Text(label.clone())));
        }
        pairs.push(("caption", Value::Text(caption.clone())));
        let mut inner_builder = self
            .store
            .build(inner_name)
            .tuple(TupleComponent::of(pairs))
            .class(inner_class);
        if !caption.is_empty() {
            inner_builder = inner_builder.content(Content::text(caption));
        }
        let inner = inner_builder.insert();
        if let Some(label) = &env.label {
            self.labels.insert(label.clone(), inner);
        }

        let mut children = vec![inner];
        if !env.body_text.trim().is_empty() {
            children.push(self.text_view(&env.body_text));
        }
        Ok(self
            .store
            .build(env.kind.clone())
            .sequence(children)
            .class(self.environment)
            .insert())
    }
}

/// The concatenated text of a section's region: paragraph text,
/// environment captions/bodies and nested sections' text.
fn section_deep_text(section: &crate::parser::LatexSection) -> String {
    fn walk(blocks: &[LatexBlock], out: &mut String) {
        for block in blocks {
            match block {
                LatexBlock::Paragraph(inlines) => {
                    for inline in inlines {
                        if let Inline::Text(t) = inline {
                            if !out.is_empty() {
                                out.push(' ');
                            }
                            out.push_str(t);
                        }
                    }
                }
                LatexBlock::Environment(env) => {
                    for part in [env.caption.as_deref(), Some(env.body_text.as_str())]
                        .into_iter()
                        .flatten()
                    {
                        if !part.is_empty() {
                            if !out.is_empty() {
                                out.push(' ');
                            }
                            out.push_str(part);
                        }
                    }
                }
                LatexBlock::Section(nested) => walk(&nested.blocks, out),
            }
        }
    }
    let mut out = String::new();
    walk(&section.blocks, &mut out);
    out
}

/// Instantiates a parsed LaTeX document as resource views.
pub fn document_to_views(store: &ViewStore, doc: &LatexDocument) -> Result<LatexMapping> {
    let before = store.len();
    let classes = store.classes();
    let mut converter = Converter {
        store,
        text: classes.require(names::TEXT)?,
        section: classes.require(names::LATEX_SECTION)?,
        environment: classes.require(names::ENVIRONMENT)?,
        figure: classes.require(names::FIGURE)?,
        texref: classes.require(names::TEXREF)?,
        labels: HashMap::new(),
        refs: Vec::new(),
        figure_counter: 0,
        table_counter: 0,
    };

    let mut doc_children = Vec::new();
    // Metadata views (Figure 1(b): documentclass, title, abstract) are
    // `text`-classed, which requires non-empty content — empty metadata
    // simply has no view.
    for (node_name, value) in [
        ("documentclass", doc.doc_class.as_deref()),
        ("title", doc.title.as_deref()),
        ("abstract", doc.abstract_text.as_deref()),
    ] {
        if let Some(value) = value.filter(|v| !v.is_empty()) {
            doc_children.push(
                store
                    .build(node_name)
                    .content(Content::text(value.to_owned()))
                    .class(converter.text)
                    .insert(),
            );
        }
    }
    let body_children = converter.convert_blocks(&doc.blocks)?;
    // The 'document' portion view is a pure structural node (no class:
    // schema-later modeling is fine in iDM).
    let body = store.build("document").sequence(body_children).insert();
    doc_children.push(body);

    let document = store
        .build(doc.title.clone().unwrap_or_else(|| "document".to_owned()))
        .sequence(doc_children)
        .class_named(names::LATEX_DOCUMENT)
        .insert();

    // Resolve references: each texref's group points at the labeled view.
    for (ref_vid, label) in &converter.refs {
        if let Some(target) = converter.labels.get(label) {
            store.set_group(*ref_vid, Group::of_set(vec![*target]))?;
        }
    }

    Ok(LatexMapping {
        document,
        derived: store.len() - before,
        labels: converter.labels,
        refs: converter.refs.iter().map(|(v, _)| *v).collect(),
    })
}

/// Parses LaTeX text and instantiates it.
pub fn text_to_views(store: &ViewStore, latex: &str) -> Result<LatexMapping> {
    let doc = parse_latex(latex).map_err(|e| IdmError::Parse {
        detail: e.to_string(),
    })?;
    document_to_views(store, &doc)
}

/// Upgrades a `file` view whose content is LaTeX: instantiates the
/// document subgraph and wires it as the file's group `⟨V_document⟩`,
/// marking the file with class `latexfile`.
pub fn latex_to_views(store: &ViewStore, file: Vid) -> Result<LatexMapping> {
    let latex = store.content(file)?.text_lossy()?;
    let mapping = text_to_views(store, &latex)?;
    store.set_group(file, Group::of_seq(vec![mapping.document]))?;
    store.set_class(file, store.classes().lookup(names::LATEX_FILE))?;
    Ok(mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_core::graph;

    const VLDB_TEX: &str = r"
\documentclass{vldb}
\title{iDM: A Unified and Versatile Data Model}
\begin{abstract}
A data model for dataspaces.
\end{abstract}
\section{Introduction}
Mike Franklin proposed dataspaces.
\subsection{The Problem}
See Section~\ref{sec:prelim} for definitions.
\section{Preliminaries} \label{sec:prelim}
Definitions go here.
\begin{figure}
\caption{Indexing Time by source}
\label{fig:idx}
\end{figure}
The results in Figure~\ref{fig:idx} show interactive times.
";

    #[test]
    fn figure_1b_shape() {
        let store = ViewStore::new();
        let mapping = text_to_views(&store, VLDB_TEX).unwrap();
        let doc_children = store.group(mapping.document).unwrap().finite_members();
        let names: Vec<Option<String>> = doc_children
            .iter()
            .map(|v| store.name(*v).unwrap())
            .collect();
        assert_eq!(
            names,
            vec![
                Some("documentclass".into()),
                Some("title".into()),
                Some("abstract".into()),
                Some("document".into())
            ]
        );
    }

    #[test]
    fn sections_become_named_class_views() {
        let store = ViewStore::new();
        let mapping = text_to_views(&store, VLDB_TEX).unwrap();
        let all = graph::descendants(&store, mapping.document, usize::MAX).unwrap();
        let sections: Vec<String> = all
            .iter()
            .filter(|v| store.conforms_to(**v, names::LATEX_SECTION).unwrap())
            .map(|v| store.name(*v).unwrap().unwrap())
            .collect();
        assert!(sections.contains(&"Introduction".to_owned()));
        assert!(sections.contains(&"The Problem".to_owned()));
        assert!(sections.contains(&"Preliminaries".to_owned()));
        // Level in the tuple component.
        let intro = all
            .iter()
            .find(|v| store.name(**v).unwrap().as_deref() == Some("Introduction"))
            .unwrap();
        assert_eq!(
            store.tuple(*intro).unwrap().unwrap().get("level"),
            Some(&Value::Integer(1))
        );
    }

    #[test]
    fn refs_point_at_their_targets() {
        // The graph structure of Figure 1(b): ref → Preliminaries.
        let store = ViewStore::new();
        let mapping = text_to_views(&store, VLDB_TEX).unwrap();
        assert_eq!(mapping.refs.len(), 2);
        let prelim = mapping.labels.get("sec:prelim").copied().unwrap();
        let sec_ref = mapping
            .refs
            .iter()
            .copied()
            .find(|r| store.name(*r).unwrap().as_deref() == Some("sec:prelim"))
            .unwrap();
        assert_eq!(store.group(sec_ref).unwrap().finite_members(), vec![prelim]);
        // The target is now related to BOTH its section parent and the ref
        // (two in-edges: a graph, not a tree).
        let rev = graph::reverse_adjacency(&store);
        assert!(rev.get(&prelim).unwrap().len() >= 2);
    }

    #[test]
    fn figure_environment_structure_for_q7() {
        let store = ViewStore::new();
        let mapping = text_to_views(&store, VLDB_TEX).unwrap();
        let all = graph::descendants(&store, mapping.document, usize::MAX).unwrap();
        let env = all
            .iter()
            .copied()
            .find(|v| store.conforms_to(*v, names::ENVIRONMENT).unwrap())
            .unwrap();
        assert_eq!(store.name(env).unwrap().as_deref(), Some("figure"));
        let inner = store.group(env).unwrap().finite_members()[0];
        assert!(store.conforms_to(inner, names::FIGURE).unwrap());
        assert_eq!(store.name(inner).unwrap().as_deref(), Some("figure1"));
        let tuple = store.tuple(inner).unwrap().unwrap();
        assert_eq!(tuple.get("label"), Some(&Value::Text("fig:idx".into())));
        assert!(store
            .content(inner)
            .unwrap()
            .text_lossy()
            .unwrap()
            .contains("Indexing Time"));
    }

    #[test]
    fn unresolved_refs_stay_leaf_views() {
        let store = ViewStore::new();
        let mapping = text_to_views(&store, "\\section{S}\nSee \\ref{missing}").unwrap();
        let r = mapping.refs[0];
        assert!(store.group(r).unwrap().finite().unwrap().is_empty());
        assert_eq!(store.name(r).unwrap().as_deref(), Some("missing"));
    }

    #[test]
    fn file_enrichment_marks_latexfile() {
        let store = ViewStore::new();
        let tau = TupleComponent::of(vec![
            ("size", Value::Integer(1)),
            ("creation time", Value::Date(Timestamp(0))),
            ("last modified time", Value::Date(Timestamp(0))),
        ]);
        let file = store
            .build("vldb 2006.tex")
            .tuple(tau)
            .text(VLDB_TEX)
            .class_named(names::FILE)
            .insert();
        let mapping = latex_to_views(&store, file).unwrap();
        assert!(store.conforms_to(file, names::LATEX_FILE).unwrap());
        assert!(store.conforms_to(file, names::FILE).unwrap());
        assert_eq!(
            store.group(file).unwrap().finite_members(),
            vec![mapping.document]
        );
        // Inside-outside boundary removed: sections reachable from file.
        assert!(graph::is_indirectly_related(&store, file, mapping.labels["sec:prelim"]).unwrap());
    }

    #[test]
    fn derived_count_reported() {
        let store = ViewStore::new();
        let before = store.len();
        let mapping = text_to_views(&store, VLDB_TEX).unwrap();
        assert_eq!(mapping.derived, store.len() - before);
        assert!(mapping.derived >= 12, "got {}", mapping.derived);
    }
}
