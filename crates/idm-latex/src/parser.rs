//! A pragmatic structural LaTeX parser.
//!
//! LaTeX is not a context-free format and a full TeX engine is far out of
//! scope; like iMeMex's original `LaTeX2iDM` converter, this parser
//! extracts the *structural* information a dataspace system queries:
//! document class, title, abstract, the (sub)section tree with labels,
//! figure/table environments with captions and labels, inline `\ref`
//! references and plain paragraph text. Unknown commands are stripped;
//! their braced arguments are inlined as text (so `\emph{really}` reads
//! "really"); comments and math are handled gracefully.

use std::fmt;

/// Inline content inside a paragraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inline {
    /// A run of plain text.
    Text(String),
    /// A `\ref{label}` reference.
    Ref(String),
    /// A `\cite{key}` citation.
    Cite(String),
}

/// A block-level element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatexBlock {
    /// A paragraph of inline content.
    Paragraph(Vec<Inline>),
    /// A (sub)section with nested blocks.
    Section(LatexSection),
    /// A figure/table environment.
    Environment(LatexEnv),
}

/// A `\section` / `\subsection` / `\subsubsection`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatexSection {
    /// Nesting level: 1 = section, 2 = subsection, 3 = subsubsection.
    pub level: u8,
    /// Section title.
    pub title: String,
    /// The `\label` attached to the heading, if any.
    pub label: Option<String>,
    /// Contained blocks (paragraphs, environments, deeper sections).
    pub blocks: Vec<LatexBlock>,
}

/// A `figure`/`table` environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatexEnv {
    /// Environment kind: `figure` or `table`.
    pub kind: String,
    /// The `\caption{…}` text, if any.
    pub caption: Option<String>,
    /// The `\label{…}`, if any.
    pub label: Option<String>,
    /// Remaining body text (includegraphics args, tabular content, …).
    pub body_text: String,
}

/// A parsed LaTeX document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatexDocument {
    /// The `\documentclass{…}` argument.
    pub doc_class: Option<String>,
    /// The `\title{…}` argument.
    pub title: Option<String>,
    /// The abstract environment's text.
    pub abstract_text: Option<String>,
    /// Top-level blocks of the document body.
    pub blocks: Vec<LatexBlock>,
}

impl LatexDocument {
    /// All sections in document order (pre-order over nesting).
    pub fn sections(&self) -> Vec<&LatexSection> {
        fn walk<'a>(blocks: &'a [LatexBlock], out: &mut Vec<&'a LatexSection>) {
            for block in blocks {
                if let LatexBlock::Section(s) = block {
                    out.push(s);
                    walk(&s.blocks, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.blocks, &mut out);
        out
    }

    /// All environments in document order.
    pub fn environments(&self) -> Vec<&LatexEnv> {
        fn walk<'a>(blocks: &'a [LatexBlock], out: &mut Vec<&'a LatexEnv>) {
            for block in blocks {
                match block {
                    LatexBlock::Environment(e) => out.push(e),
                    LatexBlock::Section(s) => walk(&s.blocks, out),
                    LatexBlock::Paragraph(_) => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.blocks, &mut out);
        out
    }

    /// All `\ref` targets in document order.
    pub fn refs(&self) -> Vec<&str> {
        fn walk<'a>(blocks: &'a [LatexBlock], out: &mut Vec<&'a str>) {
            for block in blocks {
                match block {
                    LatexBlock::Paragraph(inlines) => {
                        for inline in inlines {
                            if let Inline::Ref(label) = inline {
                                out.push(label);
                            }
                        }
                    }
                    LatexBlock::Section(s) => walk(&s.blocks, out),
                    LatexBlock::Environment(_) => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.blocks, &mut out);
        out
    }
}

/// A LaTeX parse error (the parser is tolerant; errors are rare and
/// signal truncated/unbalanced input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatexError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LatexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LaTeX error: {}", self.message)
    }
}

impl std::error::Error for LatexError {}

/// Parses LaTeX source into its structural skeleton.
pub fn parse_latex(input: &str) -> Result<LatexDocument, LatexError> {
    let cleaned = strip_comments(input);
    let mut scanner = Scanner {
        chars: cleaned.chars().collect(),
        pos: 0,
    };
    let mut doc = LatexDocument::default();

    // Section stack: (level, section). Blocks attach to the innermost
    // open section, or to the document when none is open.
    let mut stack: Vec<LatexSection> = Vec::new();
    let mut paragraph: Vec<Inline> = Vec::new();
    let mut text_run = String::new();

    macro_rules! flush_text {
        () => {
            if !text_run.trim().is_empty() {
                paragraph.push(Inline::Text(std::mem::take(&mut text_run)));
            } else {
                text_run.clear();
            }
        };
    }
    macro_rules! flush_paragraph {
        ($stack:expr, $doc:expr) => {
            flush_text!();
            if !paragraph.is_empty() {
                let block = LatexBlock::Paragraph(std::mem::take(&mut paragraph));
                attach(&mut $stack, &mut $doc, block);
            }
        };
    }

    while let Some(c) = scanner.peek() {
        if c == '\\' {
            let command = scanner.read_command();
            match command.as_str() {
                "documentclass" => {
                    scanner.skip_bracket_arg();
                    doc.doc_class = Some(scanner.read_brace_arg()?);
                }
                "title" => {
                    doc.title = Some(flatten_inline_commands(&scanner.read_brace_arg()?));
                }
                "section" | "subsection" | "subsubsection" => {
                    flush_paragraph!(stack, doc);
                    let level = match command.as_str() {
                        "section" => 1,
                        "subsection" => 2,
                        _ => 3,
                    };
                    scanner.skip_star();
                    let title = flatten_inline_commands(&scanner.read_brace_arg()?);
                    // Close sections at the same or deeper level.
                    close_to_level(&mut stack, &mut doc, level);
                    let label = scanner.peek_label();
                    stack.push(LatexSection {
                        level,
                        title,
                        label,
                        blocks: Vec::new(),
                    });
                }
                "begin" => {
                    let env = scanner.read_brace_arg()?;
                    match env.as_str() {
                        "abstract" => {
                            let body = scanner.read_until_end_env("abstract")?;
                            doc.abstract_text = Some(flatten_env_text(&body));
                        }
                        "document" => { /* transparent wrapper */ }
                        "figure" | "table" => {
                            flush_paragraph!(stack, doc);
                            scanner.skip_bracket_arg(); // [htbp]
                            let body = scanner.read_until_end_env(&env)?;
                            let parsed = parse_environment(&env, &body);
                            attach(&mut stack, &mut doc, LatexBlock::Environment(parsed));
                        }
                        other => {
                            // Unknown environment: keep its text content.
                            let body = scanner.read_until_end_env(other)?;
                            text_run.push_str(&flatten_env_text(&body));
                            text_run.push(' ');
                        }
                    }
                }
                "end" => {
                    // Stray \end{document} or an unknown env's end that a
                    // tolerant scan already consumed: skip its argument.
                    let _ = scanner.read_brace_arg();
                }
                "ref" => {
                    flush_text!();
                    paragraph.push(Inline::Ref(scanner.read_brace_arg()?));
                }
                "cite" => {
                    flush_text!();
                    paragraph.push(Inline::Cite(scanner.read_brace_arg()?));
                }
                "label" => {
                    let label = scanner.read_brace_arg()?;
                    // A label mid-body attaches to the innermost section
                    // when that section has none yet.
                    if let Some(section) = stack.last_mut() {
                        if section.label.is_none() {
                            section.label = Some(label);
                        }
                    }
                }
                "par" => {
                    flush_paragraph!(stack, doc);
                }
                "\\" => { /* forced line break */ }
                "" => {
                    // Escaped character like \% or \&: keep it literally.
                    if let Some(escaped) = scanner.next() {
                        text_run.push(escaped);
                    }
                }
                _other => {
                    // Unknown command: inline its braced arguments' text.
                    scanner.skip_star();
                    scanner.skip_bracket_arg();
                    while scanner.peek() == Some('{') {
                        let arg = scanner.read_brace_arg()?;
                        text_run.push_str(&flatten_inline_commands(&arg));
                    }
                }
            }
        } else if c == '$' {
            // Math: copy verbatim up to the closing '$'.
            scanner.next();
            let display = scanner.peek() == Some('$');
            if display {
                scanner.next();
            }
            let math = scanner.read_until_math_end(display);
            text_run.push_str(&math);
        } else if c == '\n' {
            scanner.next();
            // Blank line = paragraph break.
            if scanner.peek_is_blank_line() {
                flush_paragraph!(stack, doc);
            } else {
                text_run.push(' ');
            }
        } else if c == '{' || c == '}' {
            scanner.next(); // grouping braces are transparent
        } else {
            text_run.push(c);
            scanner.next();
        }
    }
    flush_paragraph!(stack, doc);
    close_to_level(&mut stack, &mut doc, 1);
    Ok(doc)
}

fn attach(stack: &mut [LatexSection], doc: &mut LatexDocument, block: LatexBlock) {
    if let Some(section) = stack.last_mut() {
        section.blocks.push(block);
    } else {
        doc.blocks.push(block);
    }
}

fn close_to_level(stack: &mut Vec<LatexSection>, doc: &mut LatexDocument, level: u8) {
    while stack.last().is_some_and(|s| s.level >= level) {
        let closed = stack.pop().expect("non-empty");
        match stack.last_mut() {
            Some(parent) => parent.blocks.push(LatexBlock::Section(closed)),
            None => doc.blocks.push(LatexBlock::Section(closed)),
        }
    }
}

/// Extracts caption/label from an environment body; the rest is body text.
fn parse_environment(kind: &str, body: &str) -> LatexEnv {
    let mut caption = None;
    let mut label = None;
    let mut text = String::new();
    let mut rest = body;
    while let Some(backslash) = rest.find('\\') {
        text.push_str(&rest[..backslash]);
        rest = &rest[backslash + 1..];
        let cmd_end = rest
            .find(|c: char| !c.is_ascii_alphabetic())
            .unwrap_or(rest.len());
        let (cmd, after) = rest.split_at(cmd_end);
        match cmd {
            "caption" | "label" => {
                if let Some((arg, remaining)) = read_braced(after) {
                    if cmd == "caption" {
                        caption = Some(flatten_inline_commands(&arg));
                    } else {
                        label = Some(arg);
                    }
                    rest = remaining;
                } else {
                    rest = after;
                }
            }
            _ => {
                // Strip the command, keep one braced arg's text if present.
                if let Some((arg, remaining)) = read_braced(after) {
                    text.push_str(&flatten_inline_commands(&arg));
                    rest = remaining;
                } else {
                    rest = after;
                }
            }
        }
    }
    text.push_str(rest);
    LatexEnv {
        kind: kind.to_owned(),
        caption,
        label,
        body_text: normalize_ws(&text),
    }
}

/// Reads `{…}` (with nesting) from the start of `s`, skipping leading
/// whitespace and one optional `[…]` argument.
fn read_braced(s: &str) -> Option<(String, &str)> {
    let mut chars = s.char_indices().peekable();
    // Skip whitespace and one bracket group.
    let mut idx = 0;
    while let Some(&(i, c)) = chars.peek() {
        idx = i;
        if c.is_whitespace() {
            chars.next();
        } else if c == '[' {
            for (j, d) in chars.by_ref() {
                if d == ']' {
                    idx = j + 1;
                    break;
                }
            }
        } else {
            break;
        }
    }
    let rest = &s[idx..];
    if !rest.starts_with('{') {
        return None;
    }
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((rest[1..i].to_owned(), &rest[i + 1..]));
                }
            }
            _ => {}
        }
    }
    None
}

/// Drops `%` comments (but keeps escaped `\%`).
fn strip_comments(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for line in input.lines() {
        let mut escaped = false;
        let mut end = line.len();
        for (i, c) in line.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '%' => {
                    end = i;
                    break;
                }
                _ => {}
            }
        }
        out.push_str(&line[..end]);
        out.push('\n');
    }
    out
}

/// Strips inline commands from already-extracted argument text
/// (`\emph{really} nice` → `really nice`).
fn flatten_inline_commands(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(backslash) = rest.find('\\') {
        out.push_str(&rest[..backslash]);
        rest = &rest[backslash + 1..];
        let cmd_end = rest
            .find(|c: char| !c.is_ascii_alphabetic())
            .unwrap_or(rest.len());
        if cmd_end == 0 {
            // Escaped character.
            let mut chars = rest.chars();
            if let Some(c) = chars.next() {
                out.push(c);
            }
            rest = chars.as_str();
        } else {
            rest = &rest[cmd_end..];
        }
    }
    out.push_str(rest);
    normalize_ws(&out.replace(['{', '}'], ""))
}

fn flatten_env_text(body: &str) -> String {
    flatten_inline_commands(body)
}

fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

struct Scanner {
    chars: Vec<char>,
    pos: usize,
}

impl Scanner {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    /// Reads the command name after a `\` (consumes the backslash).
    fn read_command(&mut self) -> String {
        debug_assert_eq!(self.peek(), Some('\\'));
        self.pos += 1;
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
            self.pos += 1;
        }
        if self.pos == start && self.peek() == Some('\\') {
            self.pos += 1;
            return "\\".to_owned();
        }
        self.chars[start..self.pos].iter().collect()
    }

    fn skip_star(&mut self) {
        if self.peek() == Some('*') {
            self.pos += 1;
        }
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c == ' ' || c == '\t') {
            self.pos += 1;
        }
    }

    fn skip_bracket_arg(&mut self) {
        self.skip_ws();
        if self.peek() == Some('[') {
            while let Some(c) = self.next() {
                if c == ']' {
                    break;
                }
            }
        }
    }

    fn read_brace_arg(&mut self) -> Result<String, LatexError> {
        self.skip_ws();
        if self.peek() != Some('{') {
            return Err(LatexError {
                message: "expected '{' after command".into(),
            });
        }
        let mut depth = 0usize;
        let mut out = String::new();
        while let Some(c) = self.next() {
            match c {
                '{' => {
                    if depth > 0 {
                        out.push(c);
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(out);
                    }
                    out.push(c);
                }
                _ => out.push(c),
            }
        }
        Err(LatexError {
            message: "unbalanced braces".into(),
        })
    }

    /// If the next non-whitespace token is `\label{…}`, consume and
    /// return it (used for labels directly after section headings).
    fn peek_label(&mut self) -> Option<String> {
        let save = self.pos;
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
        if self.peek() == Some('\\') {
            let cmd_save = self.pos;
            let command = self.read_command();
            if command == "label" {
                if let Ok(label) = self.read_brace_arg() {
                    return Some(label);
                }
            }
            self.pos = cmd_save;
        }
        self.pos = save;
        None
    }

    /// Reads raw text until `\end{env}` (consumes the end marker).
    fn read_until_end_env(&mut self, env: &str) -> Result<String, LatexError> {
        let marker: Vec<char> = format!("\\end{{{env}}}").chars().collect();
        let hay = &self.chars[self.pos..];
        let found = hay
            .windows(marker.len())
            .position(|window| window == marker.as_slice());
        match found {
            Some(i) => {
                let body: String = hay[..i].iter().collect();
                self.pos += i + marker.len();
                Ok(body)
            }
            None => Err(LatexError {
                message: format!("missing \\end{{{env}}}"),
            }),
        }
    }

    fn read_until_math_end(&mut self, display: bool) -> String {
        let mut out = String::new();
        while let Some(c) = self.next() {
            if c == '$' {
                if display && self.peek() == Some('$') {
                    self.next();
                }
                break;
            }
            out.push(c);
        }
        out
    }

    /// After consuming a '\n': is the upcoming line blank (paragraph gap)?
    fn peek_is_blank_line(&mut self) -> bool {
        let mut i = self.pos;
        while let Some(&c) = self.chars.get(i) {
            match c {
                ' ' | '\t' | '\r' => i += 1,
                '\n' => {
                    self.pos = i + 1;
                    return true;
                }
                _ => return false,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_LIKE: &str = r"
\documentclass[10pt]{article}
\title{iDM: A Unified Data Model}
\begin{document}
\begin{abstract}
We present a \emph{unified} data model. % inline comment
\end{abstract}

\section{Introduction} \label{sec:intro}
Personal information is heterogeneous. See Section~\ref{sec:prelim}.

\subsection{The Problem}
As shown in Figure~\ref{fig:arch}, queries span boundaries.

\section{Preliminaries} \label{sec:prelim}
Some definitions with 100\% rigor and $O(n \log n)$ bounds.

\begin{figure}[htbp]
\includegraphics{arch.pdf}
\caption{Indexing Time over the iMeMex architecture}
\label{fig:arch}
\end{figure}

\end{document}
";

    #[test]
    fn parses_preamble() {
        let doc = parse_latex(PAPER_LIKE).unwrap();
        assert_eq!(doc.doc_class.as_deref(), Some("article"));
        assert_eq!(doc.title.as_deref(), Some("iDM: A Unified Data Model"));
        assert!(doc
            .abstract_text
            .as_deref()
            .unwrap()
            .contains("unified data model"));
        assert!(
            !doc.abstract_text.unwrap().contains("inline comment"),
            "comments stripped"
        );
    }

    #[test]
    fn section_tree_with_labels() {
        let doc = parse_latex(PAPER_LIKE).unwrap();
        let sections = doc.sections();
        let titles: Vec<&str> = sections.iter().map(|s| s.title.as_str()).collect();
        assert_eq!(titles, vec!["Introduction", "The Problem", "Preliminaries"]);
        assert_eq!(sections[0].label.as_deref(), Some("sec:intro"));
        assert_eq!(sections[0].level, 1);
        assert_eq!(sections[1].level, 2);
        // 'The Problem' nests inside 'Introduction'.
        let intro = sections[0];
        assert!(intro
            .blocks
            .iter()
            .any(|b| matches!(b, LatexBlock::Section(s) if s.title == "The Problem")));
    }

    #[test]
    fn refs_extracted_in_order() {
        let doc = parse_latex(PAPER_LIKE).unwrap();
        assert_eq!(doc.refs(), vec!["sec:prelim", "fig:arch"]);
    }

    #[test]
    fn figure_environment_with_caption_and_label() {
        let doc = parse_latex(PAPER_LIKE).unwrap();
        let envs = doc.environments();
        assert_eq!(envs.len(), 1);
        let figure = envs[0];
        assert_eq!(figure.kind, "figure");
        assert_eq!(figure.label.as_deref(), Some("fig:arch"));
        assert!(figure.caption.as_deref().unwrap().contains("Indexing Time"));
        assert!(figure.body_text.contains("arch.pdf"));
    }

    #[test]
    fn escaped_percent_is_not_a_comment() {
        let doc = parse_latex("\\section{S}\nGrowth of 100\\% yearly").unwrap();
        let section = &doc.sections()[0];
        let LatexBlock::Paragraph(para) = &section.blocks[0] else {
            panic!("expected paragraph");
        };
        let Inline::Text(text) = &para[0] else {
            panic!("expected text");
        };
        assert!(text.contains("100% yearly"), "{text}");
    }

    #[test]
    fn unknown_commands_inline_their_arguments() {
        let doc = parse_latex("\\section{S}\nA \\textbf{bold \\emph{nested}} word").unwrap();
        let LatexBlock::Paragraph(para) = &doc.sections()[0].blocks[0] else {
            panic!();
        };
        let text: String = para
            .iter()
            .map(|i| match i {
                Inline::Text(t) => t.clone(),
                _ => String::new(),
            })
            .collect();
        assert!(text.contains("bold nested"), "{text}");
    }

    #[test]
    fn blank_line_separates_paragraphs() {
        let doc = parse_latex("\\section{S}\nfirst para\n\nsecond para").unwrap();
        let paras = doc.sections()[0]
            .blocks
            .iter()
            .filter(|b| matches!(b, LatexBlock::Paragraph(_)))
            .count();
        assert_eq!(paras, 2);
    }

    #[test]
    fn sections_close_correctly_at_same_level() {
        let doc =
            parse_latex("\\section{A}\n\\subsection{A1}\n\\subsection{A2}\n\\section{B}").unwrap();
        let top: Vec<&str> = doc
            .blocks
            .iter()
            .filter_map(|b| match b {
                LatexBlock::Section(s) => Some(s.title.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(top, vec!["A", "B"]);
        let a = doc.sections()[0];
        let subs: Vec<&str> = a
            .blocks
            .iter()
            .filter_map(|b| match b {
                LatexBlock::Section(s) => Some(s.title.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(subs, vec!["A1", "A2"]);
    }

    #[test]
    fn math_is_kept_as_text() {
        let doc = parse_latex("\\section{S}\ncomplexity $n^2$ and $$x+y$$ done").unwrap();
        let LatexBlock::Paragraph(para) = &doc.sections()[0].blocks[0] else {
            panic!();
        };
        let text: String = para
            .iter()
            .map(|i| match i {
                Inline::Text(t) => t.clone(),
                _ => String::new(),
            })
            .collect();
        assert!(text.contains("n^2"), "{text}");
        assert!(text.contains("x+y"), "{text}");
    }

    #[test]
    fn unbalanced_braces_error() {
        assert!(parse_latex("\\section{unclosed").is_err());
        assert!(parse_latex("\\begin{figure} no end").is_err());
    }

    #[test]
    fn cites_extracted() {
        let doc = parse_latex("\\section{S}\nSee \\cite{codd70} for detail").unwrap();
        let LatexBlock::Paragraph(para) = &doc.sections()[0].blocks[0] else {
            panic!();
        };
        assert!(para.contains(&Inline::Cite("codd70".into())));
    }

    #[test]
    fn table_environment_parsed() {
        let doc = parse_latex(
            "\\section{S}\n\\begin{table}\n\\caption{Results}\\label{tab:r}\nbody\n\\end{table}",
        )
        .unwrap();
        let envs = doc.environments();
        assert_eq!(envs[0].kind, "table");
        assert_eq!(envs[0].caption.as_deref(), Some("Results"));
        assert_eq!(envs[0].label.as_deref(), Some("tab:r"));
    }
}
