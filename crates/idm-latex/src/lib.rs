//! # idm-latex — LaTeX for the iMeMex dataspace
//!
//! The paper repeatedly uses LaTeX as the canonical example of
//! **graph-structured** content inside files (Figure 1: the `ref` node in
//! `vldb 2006.tex` connects the subsection 'The Problem' to the section
//! 'Preliminaries'). This crate provides:
//!
//! - [`parser`] — a from-scratch structural LaTeX parser extracting
//!   document class, title, abstract, (sub)sections with labels, figure
//!   and table environments with captions/labels, inline `\ref{…}`
//!   references, and paragraph text;
//! - [`convert`] — the `LaTeX2iDM` Content2iDM converter producing
//!   resource view subgraphs with classes `latex_document`,
//!   `latex_section`, `environment`, `figure`, `texref` and `text`.
//!   Resolved `\ref`s become *group edges to the referenced view*, which
//!   is what makes the resulting subgraph a graph rather than a tree.

#![warn(missing_docs)]

pub mod convert;
pub mod parser;

pub use convert::{latex_to_views, LatexMapping};
pub use parser::{parse_latex, Inline, LatexBlock, LatexDocument, LatexEnv, LatexSection};
