//! Property-based tests: the LaTeX parser is total (never panics),
//! structural invariants hold on generated documents, and conversion
//! respects the section tree.

use idm_latex::parser::{parse_latex, LatexBlock};
use proptest::prelude::*;

/// A generated well-formed LaTeX document description.
#[derive(Debug, Clone)]
struct DocSpec {
    sections: Vec<(u8, String, Vec<String>)>, // (level, title, paragraphs)
}

fn arb_doc() -> impl Strategy<Value = DocSpec> {
    proptest::collection::vec(
        (
            1u8..=3,
            "[A-Z][a-z]{2,8}",
            proptest::collection::vec("[a-z][a-z ]{3,30}", 0..3),
        ),
        0..6,
    )
    .prop_map(|sections| DocSpec { sections })
}

fn render(spec: &DocSpec) -> String {
    let mut out = String::from("\\documentclass{article}\n\\begin{document}\n");
    for (level, title, paragraphs) in &spec.sections {
        let command = match level {
            1 => "section",
            2 => "subsection",
            _ => "subsubsection",
        };
        out.push_str(&format!("\\{command}{{{title}}}\n"));
        for paragraph in paragraphs {
            out.push_str(paragraph);
            out.push_str("\n\n");
        }
    }
    out.push_str("\\end{document}\n");
    out
}

proptest! {
    /// The parser is total on arbitrary input.
    #[test]
    fn parser_never_panics(input in ".{0,500}") {
        let _ = parse_latex(&input);
    }

    /// The parser is total on "almost LaTeX" (generated doc with random
    /// mutation applied).
    #[test]
    fn parser_never_panics_on_mangled(spec in arb_doc(), cut in 0usize..500) {
        let mut source = render(&spec);
        let cut = cut % (source.len() + 1);
        while !source.is_char_boundary(cut.min(source.len())) {
            source.pop();
        }
        source.truncate(cut.min(source.len()));
        let _ = parse_latex(&source);
    }

    /// Every generated section appears exactly once, in order, and the
    /// nesting respects levels: a section's direct subsections all have
    /// strictly greater levels.
    #[test]
    fn section_structure_preserved(spec in arb_doc()) {
        let doc = parse_latex(&render(&spec)).expect("well-formed doc parses");
        let parsed = doc.sections();
        let titles: Vec<&str> = parsed.iter().map(|s| s.title.as_str()).collect();
        let expected: Vec<&str> = spec.sections.iter().map(|(_, t, _)| t.as_str()).collect();
        prop_assert_eq!(titles, expected, "pre-order section titles");
        for section in &parsed {
            for block in &section.blocks {
                if let LatexBlock::Section(nested) = block {
                    prop_assert!(nested.level > section.level);
                }
            }
        }
    }

    /// Paragraph text survives into the parse (whitespace-normalized).
    #[test]
    fn paragraph_text_preserved(spec in arb_doc()) {
        let doc = parse_latex(&render(&spec)).expect("parses");
        let parsed = doc.sections();
        for (i, (_, _, paragraphs)) in spec.sections.iter().enumerate() {
            let direct_paragraphs: Vec<String> = parsed[i]
                .blocks
                .iter()
                .filter_map(|b| match b {
                    LatexBlock::Paragraph(inlines) => Some(
                        inlines
                            .iter()
                            .filter_map(|inline| match inline {
                                idm_latex::parser::Inline::Text(t) => Some(t.trim().to_owned()),
                                _ => None,
                            })
                            .collect::<Vec<_>>()
                            .join(" "),
                    ),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(direct_paragraphs.len(), paragraphs.len());
            for (got, want) in direct_paragraphs.iter().zip(paragraphs) {
                prop_assert_eq!(got.split_whitespace().collect::<Vec<_>>(),
                                want.split_whitespace().collect::<Vec<_>>());
            }
        }
    }

    /// Conversion mints one latex_section view per parsed section and
    /// resolves every ref that has a matching label.
    #[test]
    fn conversion_counts(spec in arb_doc(), with_figure in any::<bool>()) {
        use idm_core::prelude::*;
        let mut source = render(&spec);
        if with_figure {
            source.push_str(
                "\\section{Extra}\n\\begin{figure}\\caption{C}\\label{fig:p}\\end{figure}\n\
                 See \\ref{fig:p} and \\ref{missing}.\n",
            );
        }
        let store = ViewStore::new();
        let mapping = idm_latex::convert::text_to_views(&store, &source).expect("convert");
        let section_class = store.classes().lookup("latex_section").unwrap();
        let sections = store
            .vids()
            .into_iter()
            .filter(|v| store.class(*v).unwrap() == Some(section_class))
            .count();
        let expected = spec.sections.len() + usize::from(with_figure);
        prop_assert_eq!(sections, expected);
        if with_figure {
            // fig:p resolves, 'missing' stays a leaf.
            let resolved = mapping
                .refs
                .iter()
                .filter(|r| !store.group(**r).unwrap().finite_members().is_empty())
                .count();
            prop_assert_eq!(resolved, 1);
        }
    }
}
