//! Infinite view-sequence sources: tuple streams, RSS polling streams
//! and the generic state-to-pseudo-stream polling facility.

use std::sync::Arc;

use idm_core::class::builtin::names;
use idm_core::prelude::*;
use idm_xml::rss::FeedServer;
use parking_lot::Mutex;

/// A generator-backed infinite **tuple stream** (Table 1, `tupstream`):
/// element `n` of the sequence is the tuple produced by the generator
/// for `n`. Pulling mints a `tuple`-classed view.
pub struct GeneratorTupleStream {
    schema: Schema,
    generator: Box<dyn Fn(u64) -> Vec<Value> + Send + Sync>,
    next: Mutex<u64>,
}

impl GeneratorTupleStream {
    /// Creates a stream over `schema` with the given element generator.
    pub fn new(
        schema: Schema,
        generator: impl Fn(u64) -> Vec<Value> + Send + Sync + 'static,
    ) -> Self {
        GeneratorTupleStream {
            schema,
            generator: Box::new(generator),
            next: Mutex::new(0),
        }
    }

    /// Builds the `tupstream` view carrying this infinite group.
    pub fn into_stream_view(self, store: &ViewStore) -> Result<Vid> {
        let class = store.classes().require(names::TUPSTREAM)?;
        Ok(store
            .build_unnamed()
            .group(Group::infinite(Arc::new(self)))
            .class(class)
            .insert())
    }
}

impl ViewSequenceSource for GeneratorTupleStream {
    fn try_next(&self, store: &ViewStore) -> Result<Option<Vid>> {
        let mut next = self.next.lock();
        let n = *next;
        *next += 1;
        let values = (self.generator)(n);
        let tau = TupleComponent::new(self.schema.clone(), values)?;
        let class = store.classes().require(names::TUPLE)?;
        Ok(Some(store.build_unnamed().tuple(tau).class(class).insert()))
    }
}

/// An RSS/ATOM polling pseudo-stream (`rssatom`).
///
/// RSS servers publish a plain XML document and offer no notifications
/// (paper footnote 5), so the state is converted into a pseudo data
/// stream by polling: each poll fetches the feed document, and items not
/// seen before are delivered as `xmldoc` views, forming the infinite
/// `⟨V_1^xmldoc, …⟩` sequence of Table 1.
pub struct RssStreamSource {
    server: Arc<FeedServer>,
    url: String,
    seen: Mutex<usize>,
}

impl RssStreamSource {
    /// Creates a polling stream over `url` at `server`.
    pub fn new(server: Arc<FeedServer>, url: impl Into<String>) -> Self {
        RssStreamSource {
            server,
            url: url.into(),
            seen: Mutex::new(0),
        }
    }

    /// Builds the `rssatom` view carrying this infinite group.
    pub fn into_stream_view(self, store: &ViewStore) -> Result<Vid> {
        let class = store.classes().require(names::RSSATOM)?;
        let name = self.url.clone();
        Ok(store
            .build(name)
            .group(Group::infinite(Arc::new(self)))
            .class(class)
            .insert())
    }
}

impl ViewSequenceSource for RssStreamSource {
    fn try_next(&self, store: &ViewStore) -> Result<Option<Vid>> {
        let mut seen = self.seen.lock();
        let xml = self.server.fetch(&self.url)?;
        let feed = idm_xml::rss::Feed::from_xml(&xml)?;
        if *seen >= feed.items.len() {
            return Ok(None);
        }
        let item = &feed.items[*seen];
        *seen += 1;
        // Each delivered element is an XML document view over the item.
        let item_xml = format!(
            "<item published=\"{}\"><title>{}</title><author>{}</author><description>{}</description></item>",
            item.published.0,
            escape(&item.title),
            escape(&item.author),
            escape(&item.body),
        );
        let (doc, _) = idm_xml::convert::text_to_views(store, &item_xml)?;
        Ok(Some(doc))
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// State-snapshot function of a [`PollingStream`].
pub type PollFn<T> = Box<dyn Fn() -> Result<Vec<T>> + Send + Sync>;
/// Per-item view builder of a [`PollingStream`].
pub type MaterializeFn<T> = Box<dyn Fn(&ViewStore, &T) -> Result<Vid> + Send + Sync>;

/// The generic polling facility (Section 4.4.1): converts any stateful
/// source into a pseudo data stream. The closure reports *all* items of
/// the current state in a stable order; the stream delivers each item
/// once, as views built by the `materialize` callback.
pub struct PollingStream<T> {
    poll: PollFn<T>,
    materialize: MaterializeFn<T>,
    delivered: Mutex<usize>,
}

impl<T> PollingStream<T> {
    /// Creates a polling stream from a state snapshot function and a
    /// per-item view builder.
    pub fn new(
        poll: impl Fn() -> Result<Vec<T>> + Send + Sync + 'static,
        materialize: impl Fn(&ViewStore, &T) -> Result<Vid> + Send + Sync + 'static,
    ) -> Self {
        PollingStream {
            poll: Box::new(poll),
            materialize: Box::new(materialize),
            delivered: Mutex::new(0),
        }
    }
}

impl<T: Send + Sync> ViewSequenceSource for PollingStream<T> {
    fn try_next(&self, store: &ViewStore) -> Result<Option<Vid>> {
        let mut delivered = self.delivered.lock();
        let state = (self.poll)()?;
        if *delivered >= state.len() {
            return Ok(None);
        }
        let item = &state[*delivered];
        *delivered += 1;
        Ok(Some((self.materialize)(store, item)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_core::validate::{validate, ValidationMode};
    use idm_xml::rss::{Feed, FeedItem};

    #[test]
    fn tuple_stream_mints_valid_tuple_views() {
        let store = ViewStore::new();
        let schema = Schema::of(&[("seq", Domain::Integer), ("reading", Domain::Float)]);
        let stream = GeneratorTupleStream::new(schema, |n| {
            vec![Value::Integer(n as i64), Value::Float(n as f64 * 0.5)]
        });
        let vid = stream.into_stream_view(&store).unwrap();
        validate(&store, vid, ValidationMode::Deep).unwrap();
        assert!(store.conforms_to(vid, names::TUPSTREAM).unwrap());
        assert!(
            store.conforms_to(vid, names::DATSTREAM).unwrap(),
            "tupstream ⊑ datstream"
        );

        let GroupSnapshot::Infinite(source) = store.group(vid).unwrap() else {
            panic!("expected infinite group");
        };
        for expect in 0..5i64 {
            let element = source.try_next(&store).unwrap().unwrap();
            let tuple = store.tuple(element).unwrap().unwrap();
            assert_eq!(tuple.get("seq"), Some(&Value::Integer(expect)));
            validate(&store, element, ValidationMode::Deep).unwrap();
        }
    }

    #[test]
    fn rss_pseudo_stream_delivers_new_items_once() {
        let server = Arc::new(FeedServer::new());
        let url = "http://feeds.example.org/db-group";
        server.publish(url, Feed::new("db group"));
        server.append_item(
            url,
            FeedItem {
                title: "VLDB accepted".into(),
                author: "jens".into(),
                published: Timestamp(100),
                body: "iDM paper accepted".into(),
            },
        );

        let store = ViewStore::new();
        let stream = RssStreamSource::new(Arc::clone(&server), url)
            .into_stream_view(&store)
            .unwrap();
        assert!(store.conforms_to(stream, names::RSSATOM).unwrap());
        let GroupSnapshot::Infinite(source) = store.group(stream).unwrap() else {
            panic!()
        };

        let doc = source.try_next(&store).unwrap().unwrap();
        assert!(store.conforms_to(doc, names::XMLDOC).unwrap());
        // Item delivered once; the stream is dry until the server changes.
        assert!(source.try_next(&store).unwrap().is_none());

        server.append_item(
            url,
            FeedItem {
                title: "Second post".into(),
                author: "marcos".into(),
                published: Timestamp(200),
                body: "body".into(),
            },
        );
        let doc2 = source.try_next(&store).unwrap().unwrap();
        let root = store.group(doc2).unwrap().finite_members()[0];
        assert_eq!(store.name(root).unwrap().as_deref(), Some("item"));
        assert!(source.try_next(&store).unwrap().is_none());
    }

    #[test]
    fn rss_items_with_markup_survive_escaping() {
        let server = Arc::new(FeedServer::new());
        server.publish("u", Feed::new("t"));
        server.append_item(
            "u",
            FeedItem {
                title: "a < b & c".into(),
                author: "x".into(),
                published: Timestamp(1),
                body: "<script>".into(),
            },
        );
        let store = ViewStore::new();
        let source = RssStreamSource::new(server, "u");
        let doc = source.try_next(&store).unwrap().unwrap();
        let all = idm_core::graph::descendants(&store, doc, usize::MAX).unwrap();
        let texts: Vec<String> = all
            .iter()
            .filter(|v| store.conforms_to(**v, names::XMLTEXT).unwrap())
            .map(|v| store.content(*v).unwrap().text_lossy().unwrap())
            .collect();
        assert!(texts.contains(&"a < b & c".to_owned()));
        assert!(texts.contains(&"<script>".to_owned()));
    }

    #[test]
    fn generic_polling_stream() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let state = Arc::new(Mutex::new(vec!["a".to_owned()]));
        let polls = Arc::new(AtomicUsize::new(0));
        let state2 = Arc::clone(&state);
        let polls2 = Arc::clone(&polls);
        let stream = PollingStream::new(
            move || {
                polls2.fetch_add(1, Ordering::SeqCst);
                Ok(state2.lock().clone())
            },
            |store, item: &String| Ok(store.build(item.clone()).insert()),
        );

        let store = ViewStore::new();
        let v = stream.try_next(&store).unwrap().unwrap();
        assert_eq!(store.name(v).unwrap().as_deref(), Some("a"));
        assert!(stream.try_next(&store).unwrap().is_none());

        state.lock().push("b".to_owned());
        let v = stream.try_next(&store).unwrap().unwrap();
        assert_eq!(store.name(v).unwrap().as_deref(), Some("b"));
        assert!(polls.load(Ordering::SeqCst) >= 3, "polled each pull");
    }
}
