//! Push-based dispatch of **logical change records**.
//!
//! [`crate::engine::PushEngine`] fans out [`ChangeEvent`]s — cheap
//! notifications that *something* about a view changed. Incremental
//! consumers (delta-maintained standing queries, replicas, auditing)
//! need more: the [`ChangeRecord`]s the store's durability layer
//! already defines, which carry the *content* of each mutation
//! (inserted view, new name, new tuple, group edge). A [`RecordEngine`]
//! subscribes to the store's record fan-out and pushes whole batches to
//! registered [`RecordOperator`]s.
//!
//! Batching is deliberate: a record operator like a standing-query
//! maintainer amortizes per-batch work (classification, one
//! re-evaluation per dirty index) across every record of a pump, so the
//! engine delivers one `Vec` per pump rather than one call per record.
//! Dispatch is explicit ([`RecordEngine::pump`]) so tests and sync
//! rounds are deterministic; [`RecordEngine::spawn_pump`] provides a
//! background dispatcher for live feeds.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::Receiver;
use idm_core::prelude::*;
use parking_lot::Mutex;

use crate::engine::PumpGuard;

/// A record operator: receives each batch of logical change records.
pub trait RecordOperator: Send + Sync {
    /// Processes one batch (never empty). `store` gives access to the
    /// *current* state of the mutated views — records describe what
    /// changed, the store holds what it changed to.
    fn on_records(&self, store: &ViewStore, records: &[ChangeRecord]);
}

/// Fans batches of [`ChangeRecord`]s out to registered operators.
pub struct RecordEngine {
    store: Arc<ViewStore>,
    rx: Receiver<ChangeRecord>,
    operators: Mutex<Vec<Arc<dyn RecordOperator>>>,
    batches: AtomicU64,
    records: AtomicU64,
}

impl RecordEngine {
    /// Attaches an engine to a store. Only records written after
    /// attachment flow (attaching arms the store's record fan-out).
    pub fn attach(store: Arc<ViewStore>) -> Self {
        let rx = store.subscribe_records();
        RecordEngine {
            store,
            rx,
            operators: Mutex::new(Vec::new()),
            batches: AtomicU64::new(0),
            records: AtomicU64::new(0),
        }
    }

    /// Registers an operator.
    pub fn register(&self, operator: Arc<dyn RecordOperator>) {
        self.operators.lock().push(operator);
    }

    /// Dispatches all pending records as one batch; returns how many
    /// records it carried (0 = nothing pending, no operator called).
    pub fn pump(&self) -> usize {
        let batch: Vec<ChangeRecord> = self.rx.try_iter().collect();
        if batch.is_empty() {
            return 0;
        }
        self.dispatch(&batch);
        batch.len()
    }

    fn dispatch(&self, batch: &[ChangeRecord]) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.records
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let operators = self.operators.lock().clone();
        for op in operators {
            op.on_records(&self.store, batch);
        }
    }

    /// `(batches dispatched, records dispatched)` since attachment.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.batches.load(Ordering::Relaxed),
            self.records.load(Ordering::Relaxed),
        )
    }

    /// Spawns a background thread that dispatches records as they
    /// arrive (coalescing whatever is queued into one batch) until the
    /// returned guard is dropped.
    pub fn spawn_pump(self: Arc<Self>) -> PumpGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let engine = Arc::clone(&self);
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match engine.rx.recv_timeout(std::time::Duration::from_millis(10)) {
                    Ok(first) => {
                        let mut batch = vec![first];
                        batch.extend(engine.rx.try_iter());
                        engine.dispatch(&batch);
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                }
            }
        });
        PumpGuard::new(stop, handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Collector {
        batches: Mutex<Vec<Vec<ChangeRecord>>>,
    }

    impl RecordOperator for Collector {
        fn on_records(&self, _store: &ViewStore, records: &[ChangeRecord]) {
            self.batches.lock().push(records.to_vec());
        }
    }

    #[test]
    fn pump_coalesces_pending_records_into_one_batch() {
        let store = Arc::new(ViewStore::new());
        let engine = RecordEngine::attach(Arc::clone(&store));
        let collector = Arc::new(Collector::default());
        engine.register(Arc::clone(&collector) as Arc<dyn RecordOperator>);

        assert_eq!(engine.pump(), 0, "nothing pending, no operator call");
        let vid = store.build("a").insert();
        store.set_name(vid, Some("b".into())).unwrap();
        assert_eq!(engine.pump(), 2);

        let batches = collector.batches.lock();
        assert_eq!(batches.len(), 1, "one batch, not one call per record");
        assert!(matches!(batches[0][0], ChangeRecord::Insert { .. }));
        assert!(matches!(batches[0][1], ChangeRecord::SetName { .. }));
        drop(batches);
        assert_eq!(engine.counters(), (1, 2));
    }

    #[test]
    fn background_pump_delivers_live_records() {
        let store = Arc::new(ViewStore::new());
        let engine = Arc::new(RecordEngine::attach(Arc::clone(&store)));
        let collector = Arc::new(Collector::default());
        engine.register(Arc::clone(&collector) as Arc<dyn RecordOperator>);
        let guard = Arc::clone(&engine).spawn_pump();

        store.build("live").text("stream tuple").insert();
        for _ in 0..200 {
            if !collector.batches.lock().is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        drop(guard);
        assert!(!collector.batches.lock().is_empty());
    }
}
