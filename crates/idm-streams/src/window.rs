//! Stream windows over infinite group components (Section 5.2).
//!
//! An infinite group sequence can never be materialized; the
//! Replica&Indexes module instead manages it through a bounded window of
//! the most recent elements. [`StreamWindow`] pulls from a
//! [`ViewSequenceSource`] and retains the last `capacity` element vids.

use std::collections::VecDeque;

use idm_core::prelude::*;
use parking_lot::Mutex;

/// A bounded window over an infinite view sequence.
pub struct StreamWindow {
    capacity: usize,
    inner: Mutex<WindowInner>,
}

struct WindowInner {
    elements: VecDeque<Vid>,
    /// Total elements ever pulled (including evicted ones).
    total: u64,
}

impl StreamWindow {
    /// A window keeping the most recent `capacity` elements.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        StreamWindow {
            capacity,
            inner: Mutex::new(WindowInner {
                elements: VecDeque::new(),
                total: 0,
            }),
        }
    }

    /// Pulls all currently available elements from `source` into the
    /// window; returns how many arrived.
    pub fn pull_available(
        &self,
        store: &ViewStore,
        source: &dyn ViewSequenceSource,
    ) -> Result<usize> {
        let mut arrived = 0;
        while let Some(vid) = source.try_next(store)? {
            self.push(vid);
            arrived += 1;
        }
        Ok(arrived)
    }

    /// Pulls at most `n` elements.
    pub fn pull_n(
        &self,
        store: &ViewStore,
        source: &dyn ViewSequenceSource,
        n: usize,
    ) -> Result<usize> {
        let mut arrived = 0;
        while arrived < n {
            match source.try_next(store)? {
                Some(vid) => {
                    self.push(vid);
                    arrived += 1;
                }
                None => break,
            }
        }
        Ok(arrived)
    }

    fn push(&self, vid: Vid) {
        let mut inner = self.inner.lock();
        if inner.elements.len() == self.capacity {
            inner.elements.pop_front();
        }
        inner.elements.push_back(vid);
        inner.total += 1;
    }

    /// The current window contents, oldest first.
    pub fn contents(&self) -> Vec<Vid> {
        self.inner.lock().elements.iter().copied().collect()
    }

    /// Number of elements currently in the window.
    pub fn len(&self) -> usize {
        self.inner.lock().elements.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total elements ever observed (≥ window length once eviction began).
    pub fn total_observed(&self) -> u64 {
        self.inner.lock().total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A source minting numbered views forever (a true infinite source,
    /// throttled here by pull_n).
    struct NumberSource {
        next: AtomicU64,
    }

    impl ViewSequenceSource for NumberSource {
        fn try_next(&self, store: &ViewStore) -> Result<Option<Vid>> {
            let n = self.next.fetch_add(1, Ordering::SeqCst);
            Ok(Some(store.build(format!("item{n}")).insert()))
        }
    }

    #[test]
    fn window_evicts_oldest() {
        let store = ViewStore::new();
        let source = NumberSource {
            next: AtomicU64::new(0),
        };
        let window = StreamWindow::new(3);
        window.pull_n(&store, &source, 5).unwrap();
        assert_eq!(window.len(), 3);
        assert_eq!(window.total_observed(), 5);
        let names: Vec<String> = window
            .contents()
            .iter()
            .map(|v| store.name(*v).unwrap().unwrap())
            .collect();
        assert_eq!(names, vec!["item2", "item3", "item4"]);
    }

    #[test]
    fn pull_available_drains_dry_sources() {
        struct DryAfter(AtomicU64);
        impl ViewSequenceSource for DryAfter {
            fn try_next(&self, store: &ViewStore) -> Result<Option<Vid>> {
                let n = self.0.fetch_add(1, Ordering::SeqCst);
                if n < 2 {
                    Ok(Some(store.build(format!("x{n}")).insert()))
                } else {
                    Ok(None)
                }
            }
        }
        let store = ViewStore::new();
        let window = StreamWindow::new(10);
        let source = DryAfter(AtomicU64::new(0));
        assert_eq!(window.pull_available(&store, &source).unwrap(), 2);
        assert_eq!(window.len(), 2);
        assert_eq!(window.pull_available(&store, &source).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = StreamWindow::new(0);
    }
}
