//! Push-based stream operators (Section 4.4.2).
//!
//! Operators register with a [`PushEngine`] attached to a [`ViewStore`].
//! Incoming change events on any resource view — a new email message, a
//! new tuple on a data stream — are passed to all subscribed operators,
//! which process them immediately, like the data-driven operators of
//! specialized data stream management systems.
//!
//! Dispatch is explicit ([`PushEngine::pump`]) so tests and benchmarks
//! are deterministic; [`PushEngine::spawn_pump`] provides a background
//! dispatcher thread for live use.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::channel::Receiver;
use idm_core::prelude::*;
use parking_lot::Mutex;

/// A push operator: receives change events the moment they occur.
pub trait PushOperator: Send + Sync {
    /// Which change kinds this operator wants (`None` = all).
    fn interests(&self) -> Option<Vec<ChangeKind>> {
        None
    }

    /// Processes one event. `store` gives access to the changed view's
    /// components.
    fn on_event(&self, store: &ViewStore, event: &ChangeEvent);
}

/// The push engine: fans change events out to registered operators.
pub struct PushEngine {
    store: Arc<ViewStore>,
    rx: Receiver<ChangeEvent>,
    operators: Mutex<Vec<Arc<dyn PushOperator>>>,
}

impl PushEngine {
    /// Attaches an engine to a store. Only events after attachment flow.
    pub fn attach(store: Arc<ViewStore>) -> Self {
        let rx = store.subscribe();
        PushEngine {
            store,
            rx,
            operators: Mutex::new(Vec::new()),
        }
    }

    /// Registers an operator.
    pub fn register(&self, operator: Arc<dyn PushOperator>) {
        self.operators.lock().push(operator);
    }

    /// Dispatches all pending events; returns how many were processed.
    pub fn pump(&self) -> usize {
        let mut count = 0;
        while let Ok(event) = self.rx.try_recv() {
            self.dispatch(&event);
            count += 1;
        }
        count
    }

    fn dispatch(&self, event: &ChangeEvent) {
        let operators = self.operators.lock().clone();
        for op in operators {
            let interested = op
                .interests()
                .is_none_or(|kinds| kinds.contains(&event.kind));
            if interested {
                op.on_event(&self.store, event);
            }
        }
    }

    /// Spawns a background thread that dispatches events as they arrive
    /// until the returned guard is dropped.
    pub fn spawn_pump(self: Arc<Self>) -> PumpGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let engine = Arc::clone(&self);
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match engine.rx.recv_timeout(std::time::Duration::from_millis(10)) {
                    Ok(event) => engine.dispatch(&event),
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                }
            }
        });
        PumpGuard {
            stop,
            handle: Some(handle),
        }
    }
}

/// Stops the background pump when dropped.
pub struct PumpGuard {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl PumpGuard {
    pub(crate) fn new(stop: Arc<AtomicBool>, handle: std::thread::JoinHandle<()>) -> Self {
        PumpGuard {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for PumpGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A ready-made operator: collects the vids of created views whose
/// content contains a phrase (a standing keyword filter — the
/// information-filter use case the paper cites).
pub struct KeywordFilter {
    phrase: String,
    matches: Mutex<Vec<Vid>>,
}

impl KeywordFilter {
    /// A filter for `phrase` (case-insensitive substring).
    pub fn new(phrase: impl Into<String>) -> Self {
        KeywordFilter {
            phrase: phrase.into().to_lowercase(),
            matches: Mutex::new(Vec::new()),
        }
    }

    /// Vids matched so far.
    pub fn matches(&self) -> Vec<Vid> {
        self.matches.lock().clone()
    }
}

impl PushOperator for KeywordFilter {
    fn interests(&self) -> Option<Vec<ChangeKind>> {
        Some(vec![ChangeKind::Created, ChangeKind::Content])
    }

    fn on_event(&self, store: &ViewStore, event: &ChangeEvent) {
        let Ok(content) = store.content(event.vid) else {
            return;
        };
        if content.is_empty() || !content.is_finite() {
            return;
        }
        if let Ok(text) = content.text_lossy() {
            if text.to_lowercase().contains(&self.phrase) {
                self.matches.lock().push(event.vid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct Counter {
        kinds: Option<Vec<ChangeKind>>,
        seen: AtomicUsize,
    }

    impl PushOperator for Counter {
        fn interests(&self) -> Option<Vec<ChangeKind>> {
            self.kinds.clone()
        }
        fn on_event(&self, _store: &ViewStore, _event: &ChangeEvent) {
            self.seen.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn events_reach_interested_operators_only() {
        let store = Arc::new(ViewStore::new());
        let engine = PushEngine::attach(Arc::clone(&store));
        let all = Arc::new(Counter {
            kinds: None,
            seen: AtomicUsize::new(0),
        });
        let only_names = Arc::new(Counter {
            kinds: Some(vec![ChangeKind::Name]),
            seen: AtomicUsize::new(0),
        });
        engine.register(Arc::clone(&all) as Arc<dyn PushOperator>);
        engine.register(Arc::clone(&only_names) as Arc<dyn PushOperator>);

        let vid = store.build("a").insert();
        store.set_name(vid, Some("b".into())).unwrap();
        store.set_content(vid, Content::text("x")).unwrap();

        assert_eq!(engine.pump(), 3);
        assert_eq!(all.seen.load(Ordering::SeqCst), 3);
        assert_eq!(only_names.seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn keyword_filter_matches_immediately() {
        let store = Arc::new(ViewStore::new());
        let engine = PushEngine::attach(Arc::clone(&store));
        let filter = Arc::new(KeywordFilter::new("Mike Franklin"));
        engine.register(Arc::clone(&filter) as Arc<dyn PushOperator>);

        let hit = store
            .build("intro")
            .text("... with Mike Franklin ...")
            .insert();
        let _miss = store.build("other").text("nothing relevant").insert();
        engine.pump();
        assert_eq!(filter.matches(), vec![hit]);

        // A content update can turn a miss into a hit.
        store
            .set_content(_miss, Content::text("now mike franklin appears"))
            .unwrap();
        engine.pump();
        assert_eq!(filter.matches().len(), 2);
    }

    #[test]
    fn background_pump_processes_live_events() {
        let store = Arc::new(ViewStore::new());
        let engine = Arc::new(PushEngine::attach(Arc::clone(&store)));
        let filter = Arc::new(KeywordFilter::new("stream"));
        engine.register(Arc::clone(&filter) as Arc<dyn PushOperator>);
        let guard = Arc::clone(&engine).spawn_pump();

        store
            .build("m")
            .text("a new tuple on a data stream")
            .insert();
        // Wait (bounded) for the background thread to process it.
        for _ in 0..200 {
            if !filter.matches().is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        drop(guard);
        assert_eq!(filter.matches().len(), 1);
    }
}
