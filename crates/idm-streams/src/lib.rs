//! # idm-streams — data streams for the iMeMex dataspace
//!
//! Sections 3.4 and 4.4 of the paper: data streams are resource views
//! with *infinite* group sequences, and "in order to efficiently support
//! stream processing, any system implementing iDM graphs has to provide
//! push-based protocols". This crate supplies:
//!
//! - [`engine`] — the push-operator machinery: operators register for
//!   change events on resource view components and process them
//!   immediately, in the spirit of data-driven DSMS processing,
//! - [`window`] — stream windows over infinite group components
//!   (Section 5.2: "infinite group components are managed using a
//!   stream window"),
//! - [`sources`] — infinite sequence sources: generator-backed tuple
//!   streams (`tupstream`), RSS/ATOM polling pseudo-streams (`rssatom`;
//!   RSS servers offer no notifications, so state is converted into a
//!   pseudo data stream by polling — Section 4.4.1), and a generic
//!   polling facility.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod engine;
pub mod records;
pub mod sources;
pub mod window;

pub use engine::{PumpGuard, PushEngine, PushOperator};
pub use records::{RecordEngine, RecordOperator};
pub use sources::{GeneratorTupleStream, PollingStream, RssStreamSource};
pub use window::StreamWindow;
