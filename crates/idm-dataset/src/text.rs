//! Deterministic filler-text generation.
//!
//! The vocabulary deliberately avoids every word the Table 4 queries
//! search for (`database`, `tuning`, `documents`, `systems`,
//! `Franklin`, `Vision`, …), so those phrases appear **only** where the
//! generator plants them — which is what makes the expected result
//! counts computable.

use rand::rngs::StdRng;
use rand::Rng;

/// Neutral filler vocabulary (≈ Zipf-ish by repetition of early words).
const VOCAB: &[&str] = &[
    "the",
    "of",
    "a",
    "to",
    "in",
    "we",
    "is",
    "for",
    "and",
    "this",
    "that",
    "on",
    "with",
    "as",
    "model",
    "graph",
    "view",
    "query",
    "index",
    "store",
    "layer",
    "folder",
    "stream",
    "schema",
    "component",
    "resource",
    "approach",
    "section",
    "result",
    "workload",
    "structure",
    "format",
    "heterogeneous",
    "personal",
    "information",
    "management",
    "representation",
    "evaluation",
    "abstraction",
    "prototype",
    "experiment",
    "architecture",
    "semantics",
    "notation",
    "iterator",
    "operator",
    "replica",
    "catalog",
    "lazily",
    "extensional",
    "intensional",
];

/// A deterministic filler-text source.
pub struct TextGen<'a> {
    rng: &'a mut StdRng,
}

impl<'a> TextGen<'a> {
    /// Wraps an rng.
    pub fn new(rng: &'a mut StdRng) -> Self {
        TextGen { rng }
    }

    /// One filler word (earlier vocabulary entries are more frequent).
    pub fn word(&mut self) -> &'static str {
        // Square the unit sample to bias towards small indices.
        let u: f64 = self.rng.gen::<f64>();
        let idx = ((u * u) * VOCAB.len() as f64) as usize;
        VOCAB[idx.min(VOCAB.len() - 1)]
    }

    /// A sentence of `words` filler words, capitalized, period-closed.
    pub fn sentence(&mut self, words: usize) -> String {
        let mut out = String::with_capacity(words * 8);
        for i in 0..words {
            let word = self.word();
            if i == 0 {
                let mut chars = word.chars();
                if let Some(first) = chars.next() {
                    out.extend(first.to_uppercase());
                    out.push_str(chars.as_str());
                }
            } else {
                out.push(' ');
                out.push_str(word);
            }
        }
        out.push('.');
        out
    }

    /// A paragraph of roughly `target_chars` characters. If `plant` is
    /// set, the phrase is embedded mid-paragraph.
    pub fn paragraph(&mut self, target_chars: usize, plant: Option<&str>) -> String {
        let mut out = String::with_capacity(target_chars + 32);
        while out.len() < target_chars / 2 {
            if !out.is_empty() {
                out.push(' ');
            }
            let n = self.rng.gen_range(6..14);
            out.push_str(&self.sentence(n));
        }
        if let Some(phrase) = plant {
            out.push(' ');
            out.push_str(phrase);
            out.push('.');
        }
        while out.len() < target_chars {
            out.push(' ');
            let n = self.rng.gen_range(6..14);
            out.push_str(&self.sentence(n));
        }
        out
    }

    /// An identifier-ish token (for names, labels).
    pub fn token(&mut self, len: usize) -> String {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
        (0..len)
            .map(|_| ALPHABET[self.rng.gen_range(0..ALPHABET.len())] as char)
            .collect()
    }
}

/// Deterministic pseudo-binary bytes (non-texty: contain NULs).
pub fn binary_blob(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        if i % 7 == 0 {
            out.push(0);
        } else {
            out.push(rng.gen::<u8>());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vocabulary_avoids_query_terms() {
        for banned in [
            "database",
            "tuning",
            "documents",
            "systems",
            "franklin",
            "vision",
            "conclusion",
            "conclusions",
            "indexing",
            "time",
            "knuth",
            "donald",
            "mike",
        ] {
            assert!(
                !VOCAB.contains(&banned),
                "'{banned}' must not be filler vocabulary"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let pa = TextGen::new(&mut a).paragraph(300, Some("database tuning"));
        let pb = TextGen::new(&mut b).paragraph(300, Some("database tuning"));
        assert_eq!(pa, pb);
        assert!(pa.contains("database tuning"));
        assert!(pa.len() >= 300);
    }

    #[test]
    fn unplanted_paragraphs_never_contain_query_phrases() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut gen = TextGen::new(&mut rng);
        for _ in 0..50 {
            let p = gen.paragraph(400, None).to_lowercase();
            for phrase in ["database", "documents", "systems", "franklin"] {
                assert!(!p.contains(phrase), "'{phrase}' leaked into filler");
            }
        }
    }

    #[test]
    fn binary_blobs_are_not_texty() {
        let mut rng = StdRng::seed_from_u64(3);
        let blob = binary_blob(&mut rng, 100);
        assert!(blob.contains(&0));
        assert_eq!(blob.len(), 100);
    }
}
