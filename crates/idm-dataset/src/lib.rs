//! # idm-dataset — a synthetic personal dataspace
//!
//! The paper evaluates iMeMex on the real personal files and emails of
//! one of the authors (Table 2: 14,297 files&folders, 6,335 emails,
//! 47 + 13 XML documents, 282 + 7 LaTeX documents, ≈150k resource
//! views). That dataset is obviously unavailable, so this crate
//! generates a **deterministic, seeded** stand-in that reproduces the
//! *shape* the evaluation depends on:
//!
//! - the ratio of base items to views derived from XML/LaTeX content,
//! - the folder topology the Table 4 queries navigate (`papers`,
//!   `Projects/{PIM,OLAP,VLDB2005,VLDB2006}`, mail folders),
//! - planted phrases and structures calibrated so each Table 4 query
//!   returns a result count near the paper's at scale factor 1.0
//!   (and proportionally fewer at smaller scale factors),
//! - a mix of indexable text and binary content so the "net input
//!   size" vs. "total size" distinction of Table 3 is meaningful.
//!
//! Everything scales with [`DatasetConfig::scale`]; the default bench
//! configuration uses a small scale factor so `cargo bench` stays
//! laptop-friendly, while `--sf 1.0` reproduces paper-sized counts.

#![warn(missing_docs)]

pub mod generator;
pub mod text;

pub use generator::{generate, DatasetConfig, ExpectedResults, GeneratedDataset};
