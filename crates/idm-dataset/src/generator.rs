//! The dataset generator.
//!
//! Determinism: everything derives from `DatasetConfig::seed` through a
//! single `StdRng`; two runs with equal configs produce byte-identical
//! dataspaces, so benchmark results and expected query counts are
//! reproducible.

use std::sync::Arc;

use idm_core::prelude::Timestamp;
use idm_email::message::{Attachment, EmailMessage};
use idm_email::{ImapServer, LatencyModel, MailboxId};
use idm_vfs::{NodeId, VirtualFs};
use idm_xml::rss::{Feed, FeedItem, FeedServer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::text::{binary_blob, TextGen};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Scale factor: 1.0 ≈ the paper's dataset counts (Table 2).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// IMAP latency model for the generated mail server.
    pub imap_latency: LatencyModel,
    /// Whether the IMAP server really sleeps its latency (true for
    /// end-to-end timing runs) or only accounts it (fast tests).
    pub imap_sleep: bool,
    /// Byte size of the large binary files that anchor Q3
    /// (`size > 420000`). Must exceed 420,000.
    pub big_binary_bytes: usize,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            scale: 0.05,
            seed: 0x1DCD_2006,
            imap_latency: LatencyModel::none(),
            imap_sleep: false,
            big_binary_bytes: 450_100,
        }
    }
}

impl DatasetConfig {
    /// A config at the given scale with defaults otherwise.
    pub fn at_scale(scale: f64) -> Self {
        DatasetConfig {
            scale,
            ..DatasetConfig::default()
        }
    }
}

/// Expected Table 4 result counts for a generated dataspace, derived
/// from what was actually planted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpectedResults {
    /// Q1 `"database"`.
    pub q1: usize,
    /// Q2 `"database tuning"`.
    pub q2: usize,
    /// Q3 `[size > 420000 and lastmodified < @12.06.2005]`.
    pub q3: usize,
    /// Q4 `//papers//*Vision/*["Franklin"]`.
    pub q4: usize,
    /// Q5 `//VLDB200?//?onclusion*/*["systems"]`.
    pub q5: usize,
    /// Q6 `union( //VLDB2005//*["documents"], //VLDB2006//*["documents"])`.
    pub q6: usize,
    /// Q7 (figure-label join under VLDB2006).
    pub q7: usize,
    /// Q8 (email ↔ papers `.tex` name join).
    pub q8: usize,
}

/// Dataset composition counters (the Table 2 row material).
#[derive(Debug, Clone, Copy, Default)]
pub struct DatasetCounts {
    /// Filesystem nodes (files, folders, links) excluding the root.
    pub fs_items: usize,
    /// Messages on the IMAP server.
    pub emails: usize,
    /// Mail folders (including INBOX).
    pub mail_folders: usize,
    /// Email attachments.
    pub attachments: usize,
    /// XML documents on the filesystem.
    pub fs_xml_docs: usize,
    /// LaTeX documents on the filesystem.
    pub fs_latex_docs: usize,
    /// XML documents attached to emails.
    pub email_xml_docs: usize,
    /// LaTeX documents attached to emails.
    pub email_latex_docs: usize,
}

/// The generated dataspace: all three data sources plus ground truth.
pub struct GeneratedDataset {
    /// The filesystem source.
    pub fs: Arc<VirtualFs>,
    /// The IMAP source.
    pub imap: Arc<ImapServer>,
    /// The RSS feed server.
    pub feeds: Arc<FeedServer>,
    /// Published feed URLs.
    pub feed_urls: Vec<String>,
    /// Expected Table 4 result counts.
    pub expected: ExpectedResults,
    /// Composition counters.
    pub counts: DatasetCounts,
    /// The config used.
    pub config: DatasetConfig,
}

/// `max(1, round(x·scale))` — anchors that must survive downscaling.
fn n1(x: f64, scale: f64) -> usize {
    ((x * scale).round() as usize).max(1)
}

/// `round(x·scale)` — filler that may scale to zero.
fn n0(x: f64, scale: f64) -> usize {
    (x * scale).round() as usize
}

const OLD_MTIME: (i32, u32, u32) = (2005, 5, 15); // before @12.06.2005
const NEW_MTIME: (i32, u32, u32) = (2005, 7, 20); // after it

struct Gen {
    rng: StdRng,
    fs: Arc<VirtualFs>,
    counts: DatasetCounts,
    t_new: Timestamp,
    t_old: Timestamp,
}

impl Gen {
    fn text(&mut self) -> TextGen<'_> {
        TextGen::new(&mut self.rng)
    }

    /// A LaTeX document with `sections` top-level sections, planting
    /// `plant` into the first paragraph of the first section if given,
    /// plus `figures` (label, has_ref) pairs appended as environments
    /// with references from the last section.
    #[allow(clippy::too_many_arguments)]
    fn latex_doc(
        &mut self,
        sections: usize,
        paragraphs_per_section: usize,
        plant: Option<&str>,
        special_first_section: Option<&str>,
        figure_labels: &[String],
        figure_caption: &str,
    ) -> String {
        let title = {
            let mut t = self.text();
            t.sentence(4)
        };
        let mut out = String::with_capacity(4096);
        out.push_str("\\documentclass{article}\n");
        out.push_str(&format!("\\title{{{title}}}\n"));
        out.push_str("\\begin{document}\n\\begin{abstract}\n");
        let abstract_text = self.text().paragraph(200, None);
        out.push_str(&abstract_text);
        out.push_str("\n\\end{abstract}\n");

        for s in 0..sections {
            let heading = match (s, special_first_section) {
                (0, Some(special)) => special.to_owned(),
                _ => {
                    let mut t = self.text();
                    let a = t.token(7);
                    let b = t.token(9);
                    format!(
                        "{}{} {}{}",
                        a[..1].to_uppercase(),
                        &a[1..],
                        b[..1].to_uppercase(),
                        &b[1..]
                    )
                }
            };
            out.push_str(&format!("\\section{{{heading}}}\n"));
            for p in 0..paragraphs_per_section {
                let planted = if s == 0 && p == 0 { plant } else { None };
                let para = self.text().paragraph(520, planted);
                out.push_str(&para);
                out.push_str("\n\n");
            }
        }

        // Planted figure environments + matching references.
        for label in figure_labels {
            out.push_str(&format!(
                "\\begin{{figure}}\n\\caption{{{figure_caption} {label}}}\n\\label{{{label}}}\n\\end{{figure}}\n\n"
            ));
            out.push_str(&format!("As shown in Figure~\\ref{{{label}}}.\n\n"));
        }

        out.push_str("\\end{document}\n");
        out
    }

    fn xml_doc(&mut self, approx_items: usize) -> String {
        // Each record contributes ~7 infoset items (record + 3 elems +
        // 3 text nodes).
        let records = (approx_items / 7).max(1);
        let mut out = String::with_capacity(records * 120);
        out.push_str("<?xml version=\"1.0\"?><dataset>");
        for r in 0..records {
            let (a, b, c) = {
                let mut t = self.text();
                (t.sentence(4), t.sentence(5), t.token(8))
            };
            out.push_str(&format!(
                "<record id=\"{r}\"><title>{a}</title><note>{b}</note><tag>{c}</tag></record>"
            ));
        }
        out.push_str("</dataset>");
        out
    }

    fn create_latex(&mut self, dir: NodeId, name: &str, content: String) -> NodeId {
        let at = self.t_new;
        let node = self
            .fs
            .create_file(dir, name, content, at)
            .expect("dataset: unique latex file name");
        self.counts.fs_items += 1;
        self.counts.fs_latex_docs += 1;
        node
    }
}

/// Generates the dataspace.
pub fn generate(config: DatasetConfig) -> GeneratedDataset {
    let scale = config.scale;
    assert!(scale > 0.0, "scale factor must be positive");
    assert!(config.big_binary_bytes > 420_000, "Q3 anchor needs >420KB");

    let t_new = Timestamp::from_ymd(NEW_MTIME.0, NEW_MTIME.1, NEW_MTIME.2).expect("date");
    let t_old = Timestamp::from_ymd(OLD_MTIME.0, OLD_MTIME.1, OLD_MTIME.2).expect("date");
    let fs = Arc::new(VirtualFs::new(t_new));
    let imap = Arc::new(ImapServer::new(config.imap_latency, config.imap_sleep));

    let mut g = Gen {
        rng: StdRng::seed_from_u64(config.seed),
        fs: Arc::clone(&fs),
        counts: DatasetCounts::default(),
        t_new,
        t_old,
    };

    // ---- fixed folder topology (the Table 4 queries navigate it) ----
    let mk = |path: &str| -> NodeId { g.fs.mkdir_p(path, g.t_new).expect("mkdir") };
    let projects = mk("/Projects");
    let pim = mk("/Projects/PIM");
    let olap = mk("/Projects/OLAP");
    let vldb2005 = mk("/Projects/VLDB2005");
    let vldb2006 = mk("/Projects/VLDB2006");
    let papers = mk("/papers");
    let papers_v1 = mk("/papers/v1");
    let papers_final = mk("/papers/final");
    let papers_archive = mk("/papers/archive");
    let misc = mk("/misc");
    g.counts.fs_items += 10;
    // The Figure 1 cycle: PIM/All Projects → Projects.
    g.fs.create_link(pim, "All Projects", projects, g.t_new)
        .expect("link");
    g.counts.fs_items += 1;

    // ---- misc folder tree ----
    let mut misc_folders = vec![misc];
    for i in 0..n0(1000.0, scale) {
        let parent = misc_folders[g.rng.gen_range(0..misc_folders.len())];
        if let Ok(id) = g.fs.mkdir(parent, &format!("dir{i:04}"), g.t_new) {
            misc_folders.push(id);
            g.counts.fs_items += 1;
        }
    }
    let pick_misc =
        |g: &mut Gen, folders: &[NodeId]| -> NodeId { folders[g.rng.gen_range(0..folders.len())] };

    // ---- planting schedules --------------------------------------
    // Q1/Q2: "database" / "database tuning" plantings (each LaTeX
    // planting matches 3 views: file bytes, section content, text view;
    // txt-file and email plantings match 1 view each).
    let db_para = n0(190.0, scale);
    let db_txt = n0(166.0, scale);
    let db_email = n0(166.0, scale);
    let dbt_para = n0(6.0, scale);
    let dbt_txt = n0(10.0, scale);
    let dbt_email = n0(11.0, scale);

    let mut expected = ExpectedResults {
        q1: 3 * (db_para + dbt_para) + db_txt + db_email + dbt_txt + dbt_email,
        q2: 3 * dbt_para + dbt_txt + dbt_email,
        ..ExpectedResults::default()
    };

    // ---- LaTeX documents on the filesystem ----
    // Anchor docs first, filler afterwards.
    let mut doc_counter = 0usize;
    let mut next_doc_name = |g: &mut Gen| {
        doc_counter += 1;
        let token = g.text().token(6);
        format!("doc{doc_counter:04}-{token}.tex")
    };

    // Q4: sections named `…Vision` under /papers with "Mike Franklin".
    let q4 = n1(2.0, scale);
    for _ in 0..q4 {
        let name = next_doc_name(&mut g);
        let content = g.latex_doc(
            5,
            3,
            Some("A quote by Mike Franklin on dataspaces"),
            Some("A Dataspace Vision"),
            &[],
            "",
        );
        g.create_latex(papers, &name, content);
    }
    expected.q4 = q4;

    // Section 5.1 example: //PIM//Introduction with "Mike Franklin".
    {
        let name = next_doc_name(&mut g);
        let content = g.latex_doc(
            4,
            3,
            Some("following the dataspace agenda of Mike Franklin"),
            Some("Introduction"),
            &[],
            "",
        );
        g.create_latex(pim, &name, content);
    }

    // Q5: `Conclusions` sections with "systems" under VLDB200?.
    let q5 = n1(2.0, scale);
    for i in 0..q5 {
        let dir = if i % 2 == 0 { vldb2006 } else { vldb2005 };
        let name = next_doc_name(&mut g);
        let content = g.latex_doc(
            4,
            2,
            Some("future systems will converge"),
            Some("Conclusions"),
            &[],
            "",
        );
        g.create_latex(dir, &name, content);
    }
    expected.q5 = q5;

    // Q6: "documents" plantings in VLDB2005/VLDB2006 docs (3 views each,
    // the paper reports 31).
    let q6_paras = n0(10.0, scale).max(1);
    for i in 0..q6_paras {
        let dir = if i % 2 == 0 { vldb2005 } else { vldb2006 };
        let name = next_doc_name(&mut g);
        let content = g.latex_doc(4, 2, Some("shared documents of the project"), None, &[], "");
        g.create_latex(dir, &name, content);
    }
    expected.q6 = 3 * q6_paras;

    // Q7: figure/label/ref pairs inside VLDB2006 docs.
    let q7 = n1(21.0, scale);
    {
        let docs = q7.div_ceil(5).max(1); // ~5 figures per doc
        let mut remaining = q7;
        for d in 0..docs {
            let here = remaining.div_ceil(docs - d);
            let labels: Vec<String> = (0..here)
                .map(|_| {
                    let token = g.text().token(8);
                    format!("fig:{token}")
                })
                .collect();
            remaining -= here;
            let name = next_doc_name(&mut g);
            let content = g.latex_doc(3, 2, None, None, &labels, "Evaluation results for");
            g.create_latex(vldb2006, &name, content);
        }
    }
    expected.q7 = q7;

    // OLAP docs with "Indexing Time" figure captions (the Section 5.1
    // example query `//OLAP//[class="figure" and "Indexing time"]`).
    for _ in 0..n1(2.0, scale) {
        let label = {
            let token = g.text().token(8);
            format!("fig:{token}")
        };
        let name = next_doc_name(&mut g);
        let content = g.latex_doc(3, 2, None, None, &[label], "Indexing Time for");
        g.create_latex(olap, &name, content);
    }

    // Q8: `.tex` names shared between email attachments and /papers.
    // copies per attachment sum to the target pair count.
    let q8_attachments = n1(7.0, scale);
    let q8_pairs_target = n1(16.0, scale).max(q8_attachments);
    let mut q8_names: Vec<String> = Vec::with_capacity(q8_attachments);
    let mut q8_copies: Vec<usize> = vec![0; q8_attachments];
    {
        let mut pairs = 0usize;
        // At least one copy each, then round-robin until the target.
        let mut i = 0usize;
        while pairs < q8_pairs_target {
            q8_copies[i % q8_attachments] += 1;
            pairs += 1;
            i += 1;
        }
    }
    let copy_dirs = [papers_v1, papers_final, papers_archive];
    let mut attachment_payloads: Vec<(String, String)> = Vec::new();
    for (i, copies) in q8_copies.iter().enumerate() {
        let name = format!("shared{i:02}.tex");
        let content = g.latex_doc(3, 2, None, None, &[], "");
        for (c, dir) in copy_dirs.iter().cycle().take(*copies).enumerate() {
            // Same name in different folders (versions of the paper).
            let target_dir = if c == 0 { *dir } else { copy_dirs[c % 3] };
            // Names must be unique per folder; copies beyond 3 get
            // their own subfolder.
            let dir = if c < 3 {
                target_dir
            } else {
                g.fs.mkdir_p(&format!("/papers/extra{c}"), g.t_new)
                    .expect("mkdir")
            };
            if g.fs.child_named(dir, &name).expect("lookup").is_none() {
                g.create_latex(dir, &name, content.clone());
            }
        }
        q8_names.push(name.clone());
        attachment_payloads.push((name, content));
    }
    expected.q8 = q8_pairs_target;

    // Filler LaTeX docs: misc + papers + remaining project folders,
    // carrying the Q1/Q2 paragraph plantings (one per doc).
    let mut para_plants: Vec<&str> = Vec::new();
    para_plants.extend(std::iter::repeat_n("database", db_para));
    para_plants.extend(std::iter::repeat_n("database tuning", dbt_para));
    let filler_latex = n0(167.0, scale).max(para_plants.len()) + n0(60.0, scale);
    let mut plant_iter = para_plants.into_iter();
    for i in 0..filler_latex {
        let dir = match i % 5 {
            0 => papers,
            1 => pim,
            2 => olap,
            _ => pick_misc(&mut g, &misc_folders),
        };
        let plant = plant_iter.next();
        let name = next_doc_name(&mut g);
        let content = g.latex_doc(5, 3, plant, None, &[], "");
        g.create_latex(dir, &name, content);
    }

    // ---- XML documents on the filesystem ----
    let fs_xml = n1(47.0, scale);
    // Paper shape: ≈2,495 derived views per filesystem XML document.
    for i in 0..fs_xml {
        let dir = pick_misc(&mut g, &misc_folders);
        let content = g.xml_doc(2_490);
        let name = format!("data{i:03}.xml");
        if g.fs.create_file(dir, &name, content, g.t_new).is_ok() {
            g.counts.fs_items += 1;
            g.counts.fs_xml_docs += 1;
        }
    }

    // ---- Office "zipped XML" documents (paper footnote 1) ----
    // Figure 1 shows 'Grant.doc' inside the PIM folder; model it (and a
    // population of office reports) as Office-12-style containers.
    {
        let grant_xml = g.xml_doc(80);
        let container = idm_xml::zip::office_document(&grant_xml);
        if g.fs
            .create_file(pim, "Grant.docx", container, g.t_new)
            .is_ok()
        {
            g.counts.fs_items += 1;
            g.counts.fs_xml_docs += 1;
        }
    }
    for i in 0..n0(30.0, scale) {
        let dir = pick_misc(&mut g, &misc_folders);
        let xml = g.xml_doc(120);
        let container = idm_xml::zip::office_document(&xml);
        if g.fs
            .create_file(dir, &format!("report{i:03}.docx"), container, g.t_new)
            .is_ok()
        {
            g.counts.fs_items += 1;
            g.counts.fs_xml_docs += 1;
        }
    }

    // ---- plain text files (with Q1/Q2 plantings) ----
    let mut txt_plants: Vec<&str> = Vec::new();
    txt_plants.extend(std::iter::repeat_n("database", db_txt));
    txt_plants.extend(std::iter::repeat_n("database tuning", dbt_txt));
    let txt_total = n0(11_000.0, scale).max(txt_plants.len());
    let mut txt_plant_iter = txt_plants.into_iter();
    for i in 0..txt_total {
        let dir = pick_misc(&mut g, &misc_folders);
        let plant = txt_plant_iter.next();
        let body = g.text().paragraph(3200, plant);
        if g.fs
            .create_file(dir, &format!("note{i:05}.txt"), body, g.t_new)
            .is_ok()
        {
            g.counts.fs_items += 1;
        }
    }

    // ---- binary files ----
    // Q3 anchors: big and old. The only views with size > 420,000 and
    // mtime before 12.06.2005.
    let q3 = n0(88.0, scale).max(1);
    for i in 0..q3 {
        let dir = pick_misc(&mut g, &misc_folders);
        let blob = binary_blob(&mut g.rng, config.big_binary_bytes);
        let t_old = g.t_old;
        if g.fs
            .create_file(dir, &format!("backup{i:03}.bin"), blob, t_old)
            .is_ok()
        {
            g.counts.fs_items += 1;
        }
    }
    expected.q3 = q3;
    for i in 0..n0(600.0, scale) {
        let dir = pick_misc(&mut g, &misc_folders);
        let len = g.rng.gen_range(2_000..9_000);
        let blob = binary_blob(&mut g.rng, len);
        if g.fs
            .create_file(dir, &format!("img{i:04}.jpg"), blob, g.t_new)
            .is_ok()
        {
            g.counts.fs_items += 1;
        }
    }

    // ---- email ----
    let inbox = imap.inbox();
    let mut mailboxes = vec![inbox];
    for name in ["Projects", "Lectures", "Admin"] {
        mailboxes.push(imap.create_mailbox(inbox, name).expect("mailbox"));
    }
    let email_projects = mailboxes[1];
    for name in ["OLAP", "PIM"] {
        mailboxes.push(imap.create_mailbox(email_projects, name).expect("mailbox"));
    }
    g.counts.mail_folders = mailboxes.len();

    let email_total = n0(6335.0, scale).max(q8_attachments + 2);
    let email_xml = n1(13.0, scale);
    let mut email_plants: Vec<&str> = Vec::new();
    email_plants.extend(std::iter::repeat_n("database", db_email));
    email_plants.extend(std::iter::repeat_n("database tuning", dbt_email));
    let mut email_plant_iter = email_plants.into_iter();

    for i in 0..email_total {
        let mailbox: MailboxId = mailboxes[i % mailboxes.len()];
        let plant = email_plant_iter.next();
        let body = g.text().paragraph(1600, plant);
        let subject = g.text().sentence(5);
        let mut attachments = Vec::new();
        if i < q8_attachments {
            // The Q8 .tex attachments (same bytes as the paper copies).
            let (name, content) = attachment_payloads[i].clone();
            attachments.push(Attachment {
                filename: name,
                content: content.into(),
            });
            g.counts.email_latex_docs += 1;
        } else if i < q8_attachments + email_xml {
            // Paper shape: ≈52 derived views per email XML document.
            let content = g.xml_doc(52);
            attachments.push(Attachment {
                filename: format!("report{i:03}.xml"),
                content: content.into(),
            });
            g.counts.email_xml_docs += 1;
        }
        g.counts.attachments += attachments.len();
        let hour = (i % 24) as u32;
        let message = EmailMessage {
            subject,
            from: "jens.dittrich@inf.ethz.ch".into(),
            to: "marcos@inf.ethz.ch".into(),
            date: Timestamp::from_ymd_hms(2005, 7, 1 + (i % 20) as u32, hour, 0, 0).expect("date"),
            body,
            attachments,
        };
        imap.append(mailbox, &message).expect("append");
        g.counts.emails += 1;
    }
    // Dataset generation itself should not count as access latency.
    imap.reset_simulated_latency();

    // ---- RSS feeds ----
    let feeds = Arc::new(FeedServer::new());
    let feed_urls: Vec<String> = (0..2)
        .map(|i| format!("http://feeds.example.org/feed{i}"))
        .collect();
    for url in &feed_urls {
        feeds.publish(url, Feed::new(url.clone()));
        for k in 0..n1(5.0, scale) {
            let (title, body) = {
                let mut t = g.text();
                (t.sentence(4), t.sentence(12))
            };
            feeds.append_item(
                url,
                FeedItem {
                    title,
                    author: "dbis".into(),
                    published: Timestamp::from_ymd(2005, 8, 1 + k as u32 % 27).expect("date"),
                    body,
                },
            );
        }
    }

    GeneratedDataset {
        fs,
        imap,
        feeds,
        feed_urls,
        expected,
        counts: g.counts,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(DatasetConfig::at_scale(0.01));
        let b = generate(DatasetConfig::at_scale(0.01));
        assert_eq!(a.counts.fs_items, b.counts.fs_items);
        assert_eq!(a.counts.emails, b.counts.emails);
        assert_eq!(a.expected, b.expected);
        assert_eq!(a.fs.total_file_bytes(), b.fs.total_file_bytes());
        assert_eq!(a.imap.total_wire_bytes(), b.imap.total_wire_bytes());
    }

    #[test]
    fn counts_scale_roughly_linearly() {
        let small = generate(DatasetConfig::at_scale(0.01));
        let bigger = generate(DatasetConfig::at_scale(0.03));
        assert!(bigger.counts.fs_items > 2 * small.counts.fs_items);
        assert!(bigger.counts.emails > 2 * small.counts.emails);
    }

    #[test]
    fn topology_contains_query_folders() {
        let d = generate(DatasetConfig::at_scale(0.01));
        for path in [
            "/Projects/PIM",
            "/Projects/OLAP",
            "/Projects/VLDB2005",
            "/Projects/VLDB2006",
            "/papers",
        ] {
            assert!(d.fs.resolve(path).is_ok(), "{path} missing");
        }
        // The Figure 1 cycle exists.
        assert!(d.fs.resolve("/Projects/PIM/All Projects/PIM").is_ok());
    }

    #[test]
    fn anchors_present_at_small_scale() {
        let d = generate(DatasetConfig::at_scale(0.01));
        assert!(d.expected.q3 >= 1);
        assert!(d.expected.q4 >= 1);
        assert!(d.expected.q5 >= 1);
        assert!(d.expected.q7 >= 1);
        assert!(d.expected.q8 >= 1);
        assert!(d.counts.fs_xml_docs >= 1);
        assert!(d.counts.email_latex_docs >= 1);
    }

    #[test]
    fn paper_scale_counts_match_table_2_shape() {
        // Expected counts at scale 1.0 (computed, not generated — the
        // full generation runs in the benches).
        let scale = 1.0;
        assert_eq!(n0(6335.0, scale), 6335);
        assert_eq!(n1(47.0, scale), 47);
        assert_eq!(n0(88.0, scale), 88);
        let expected_q1 = 3 * (190 + 6) + 166 + 166 + 10 + 11;
        assert_eq!(expected_q1, 941, "Q1 calibration");
        let expected_q2 = 3 * 6 + 10 + 11;
        assert_eq!(expected_q2, 39, "Q2 calibration");
    }

    #[test]
    fn feeds_published() {
        let d = generate(DatasetConfig::at_scale(0.01));
        for url in &d.feed_urls {
            assert!(d.feeds.item_count(url) >= 1);
        }
    }
}
