//! End-to-end resource-governance tests through the `Pdsms` facade:
//! deadline queries fail fast and leave the system pristine, partial
//! mode degrades instead of erroring, and the admission gate sheds at
//! 4x oversubscription without hangs or panics.

use std::sync::Arc;
use std::time::{Duration, Instant};

use idm_core::prelude::*;
use idm_query::{ExecOptions, QueryBudget};
use idm_system::{GovernorConfig, Pdsms, QueryRequest};

/// A dataspace big enough that queries do real work: `n` documents with
/// names, sizes and content words, chained into a group hierarchy.
fn populated_system(n: usize) -> Pdsms {
    let system = Pdsms::new();
    let store = Arc::clone(system.store());
    let indexes = Arc::clone(system.indexes());
    let vids: Vec<Vid> = (0..n)
        .map(|i| {
            store
                .build(format!("doc{i}"))
                .tuple(TupleComponent::of(vec![("size", Value::Integer(i as i64))]))
                .text(if i % 2 == 0 { "alpha" } else { "beta" })
                .insert()
        })
        .collect();
    // A chain of groups so `//` steps have depth to walk.
    for pair in vids.windows(2) {
        store.add_group_member(pair[0], pair[1], false).unwrap();
    }
    for vid in store.vids() {
        indexes.index_view(&store, vid, "governance").unwrap();
    }
    system
}

/// Acceptance: a deadline query aborts with a structured error within
/// 50ms at parallelism 1 and 4, every lock is released on the way out,
/// and the same processor then run unbudgeted produces exactly what a
/// fresh processor produces.
#[test]
fn expired_deadline_aborts_within_50ms_and_leaves_no_residue() {
    let system = populated_system(200);
    let query = r#"//doc0//*"#;
    let fresh = system.run(&QueryRequest::new(query)).unwrap().result;
    assert!(!fresh.rows.is_empty());

    for parallelism in [1, 4] {
        let mut processor = system.query_processor().with_options(ExecOptions {
            parallelism,
            ..ExecOptions::default()
        });
        // An already-expired deadline trips the very first checkpoint:
        // the elapsed time below is pure cancellation latency.
        processor.set_budget(QueryBudget::with_deadline(Duration::ZERO));
        let started = Instant::now();
        let err = processor.execute(query).unwrap_err();
        assert_eq!(err.budget_kind(), Some(BudgetKind::WallClock));
        assert!(
            started.elapsed() < Duration::from_millis(50),
            "cancel latency {:?} at parallelism {parallelism}",
            started.elapsed()
        );

        // Locks released, caches consistent: the same processor serves
        // the unbudgeted query byte-identically to a fresh one.
        processor.set_budget(QueryBudget::none());
        let rerun = processor.execute(query).unwrap();
        assert_eq!(rerun.rows, fresh.rows);
        assert!(!rerun.stats.partial);
    }

    let report = system.store().verify_invariants();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

/// Partial mode through the facade: a row-capped query returns a sound
/// subset with `partial` set instead of an error, and the consumption
/// counters report what was spent.
#[test]
fn partial_budget_through_facade_degrades_instead_of_erroring() {
    let system = populated_system(64);
    let full = system.run(&QueryRequest::new(r#""alpha""#)).unwrap().result;

    let budget = QueryBudget {
        max_rows: Some(4),
        ..QueryBudget::default()
    }
    .degrade_to_partial();
    let partial = system
        .run(&QueryRequest::new(r#""alpha""#).budget(budget))
        .unwrap()
        .result;

    assert!(partial.stats.partial);
    assert_eq!(partial.stats.exhausted, Some(BudgetKind::Rows));
    assert!(partial.stats.consumed.rows > 0);
    assert!(partial.rows.len() <= full.rows.len());
    for vid in partial.rows.views() {
        assert!(full.rows.views().contains(&vid), "subset rows only");
    }
}

/// Acceptance: 4x oversubscription against a saturated gate sheds every
/// query with a structured error — queue-full rejections and queue-wait
/// expiries counted separately — and nothing hangs or panics.
#[test]
fn governor_sheds_at_4x_concurrency_without_hangs() {
    let mut system = populated_system(32);
    system.enable_governor(GovernorConfig {
        max_concurrent: 2,
        max_queued: 2,
        queue_deadline: Duration::from_millis(20),
    });

    // Saturate both slots for the duration of the burst, so all eight
    // arrivals either queue (and expire) or are shed outright.
    let gate = system.governor().unwrap();
    let slot_a = gate.admit(None).unwrap();
    let slot_b = gate.admit(None).unwrap();

    let results: Vec<Result<_>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let system = &system;
                scope.spawn(move || {
                    system.run(&QueryRequest::new(r#""alpha""#).budget(QueryBudget::none()))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for result in &results {
        let err = result.as_ref().expect_err("gate saturated: all rejected");
        assert!(matches!(
            err.budget_kind(),
            Some(BudgetKind::Concurrency) | Some(BudgetKind::QueueWait)
        ));
    }
    let snap = system.governor_stats().unwrap();
    assert_eq!(snap.shed + snap.deadline_exceeded, 8);
    assert_eq!(snap.admitted, 2, "only the held slots were admitted");
    assert_eq!(snap.queued, 0, "no waiter left behind");

    // Releasing the slots restores service.
    drop(slot_a);
    drop(slot_b);
    let ok = system
        .run(&QueryRequest::new(r#""alpha""#).budget(QueryBudget::none()))
        .unwrap()
        .result;
    assert!(!ok.rows.is_empty());
    let snap = system.governor_stats().unwrap();
    assert_eq!(snap.admitted, 3);
    assert_eq!(snap.running, 0);
}

/// The two rejection modes are distinguishable end to end: a full queue
/// sheds (`Concurrency`), a slow queue expires the waiter (`QueueWait`),
/// and the counters never mix.
#[test]
fn shed_and_queue_expiry_are_distinct_through_the_facade() {
    // Queue capacity zero: rejection is immediate and counted as shed.
    let mut system = populated_system(8);
    system.enable_governor(GovernorConfig {
        max_concurrent: 1,
        max_queued: 0,
        queue_deadline: Duration::from_millis(50),
    });
    let permit = system.governor().unwrap().admit(None).unwrap();
    let err = system
        .run(&QueryRequest::new(r#""alpha""#).budget(QueryBudget::none()))
        .unwrap_err();
    assert_eq!(err.budget_kind(), Some(BudgetKind::Concurrency));
    let snap = system.governor_stats().unwrap();
    assert_eq!((snap.shed, snap.deadline_exceeded), (1, 0));
    drop(permit);

    // Queue available but slow: the waiter expires and is counted as
    // deadline_exceeded, not shed. The query's own 10ms deadline caps
    // the wait below the configured 5s queue deadline.
    let mut system = populated_system(8);
    system.enable_governor(GovernorConfig {
        max_concurrent: 1,
        max_queued: 4,
        queue_deadline: Duration::from_secs(5),
    });
    let permit = system.governor().unwrap().admit(None).unwrap();
    let started = Instant::now();
    let err = system
        .run(
            &QueryRequest::new(r#""alpha""#)
                .budget(QueryBudget::with_deadline(Duration::from_millis(10))),
        )
        .unwrap_err();
    assert_eq!(err.budget_kind(), Some(BudgetKind::QueueWait));
    assert!(started.elapsed() < Duration::from_secs(1));
    let snap = system.governor_stats().unwrap();
    assert_eq!((snap.shed, snap.deadline_exceeded), (0, 1));
    drop(permit);
}
