//! End-to-end durability: a PDSMS made durable on disk survives an
//! abrupt process death (simulated by dropping the system without any
//! shutdown path) and answers queries identically after recovery,
//! including the index epoch handshake.

use std::path::PathBuf;
use std::sync::Arc;

use idm_core::prelude::*;
use idm_email::message::{Attachment, EmailMessage};
use idm_email::ImapServer;
use idm_system::{FsPlugin, ImapPlugin, IndexFate, Pdsms, QueryRequest};
use idm_vfs::{NodeId, VirtualFs};

fn t() -> Timestamp {
    Timestamp::from_ymd(2005, 6, 1).unwrap()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("idm-sysdur-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small two-source dataspace (files + email) exercising converters,
/// classes and cross-source queries.
fn populated_system() -> Pdsms {
    let fs = Arc::new(VirtualFs::new(t()));
    let pim = fs.mkdir_p("/Projects/PIM", t()).unwrap();
    fs.create_file(
        pim,
        "vldb2006.tex",
        "\\section{Introduction}\nDataspaces by Mike Franklin.\n\\section{Related Work}\nOther systems.",
        t(),
    )
    .unwrap();
    let docs = fs.mkdir_p("/docs", t()).unwrap();
    fs.create_file(docs, "notes.txt", "database tuning notes", t())
        .unwrap();

    let server = Arc::new(ImapServer::in_process());
    server
        .append(
            server.inbox(),
            &EmailMessage {
                subject: "figures".into(),
                from: "a@b".into(),
                to: "c@d".into(),
                date: t(),
                body: "see attachment about database tuning".into(),
                attachments: vec![Attachment {
                    filename: "more.tex".into(),
                    content: "\\section{Evaluation}\nIndexing Time per source".into(),
                }],
            },
        )
        .unwrap();

    let mut system = Pdsms::new();
    system.register_source(Arc::new(FsPlugin::new(fs, NodeId::ROOT)));
    system.register_source(Arc::new(ImapPlugin::new(server)));
    system.index_all().unwrap();
    system
}

const QUERIES: &[&str] = &[
    r#"//PIM//Introduction[class="latex_section" and "Mike Franklin"]"#,
    r#""database tuning""#,
    r#"//docs//*["database"]"#,
    r#"//Introduction[class="latex_section"]"#,
];

fn query_rows(system: &Pdsms) -> Vec<Vec<u64>> {
    QUERIES
        .iter()
        .map(|iql| {
            let mut rows: Vec<u64> = system
                .run(&QueryRequest::new(*iql))
                .unwrap()
                .result
                .rows
                .views()
                .iter()
                .map(|v| v.as_u64())
                .collect();
            rows.sort_unstable();
            rows
        })
        .collect()
}

#[test]
fn checkpoint_kill_reopen_replays_nothing_and_queries_identically() {
    let dir = tmp("checkpointed");
    let mut system = populated_system();
    let baseline = query_rows(&system);

    system.make_durable(&dir).unwrap();
    let stats = system.checkpoint().unwrap();
    assert!(stats.views > 0);
    drop(system); // kill -9: no shutdown hook runs

    let (reopened, report) = Pdsms::open(&dir).unwrap();
    assert_eq!(report.recovery.records_replayed, 0, "{report}");
    assert_eq!(report.index, IndexFate::Loaded, "epoch matched: no reindex");
    assert_eq!(query_rows(&reopened), baseline);
    assert!(reopened.is_durable());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn post_checkpoint_mutations_replay_from_the_wal() {
    let dir = tmp("waltail");
    let mut system = populated_system();
    system.make_durable(&dir).unwrap();

    // Mutations after the attach snapshot live only in the WAL.
    let extra = system
        .store()
        .build("extra.txt")
        .text("post snapshot database tuning entry")
        .insert();
    system
        .store()
        .set_name(extra, Some("renamed.txt".into()))
        .unwrap();
    drop(system);

    let (reopened, report) = Pdsms::open(&dir).unwrap();
    assert_eq!(report.recovery.records_replayed, 2, "{report}");
    // The index was stamped at attach time (epoch 0), but the store
    // replayed 2 records past it — stale, so it must be rebuilt.
    assert_eq!(report.index, IndexFate::RebuiltStaleEpoch);
    assert_eq!(
        reopened.store().name(extra).unwrap().as_deref(),
        Some("renamed.txt")
    );
    // The rebuilt index covers the replayed view.
    let rows = reopened
        .run(&QueryRequest::new(r#""post snapshot""#))
        .unwrap()
        .result
        .rows;
    assert_eq!(rows.views(), &[extra]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_index_epoch_rebuild_matches_fresh_ingest_queries() {
    let dir = tmp("staleepoch");
    let mut system = populated_system();
    let baseline = query_rows(&system);
    system.make_durable(&dir).unwrap();
    system.checkpoint().unwrap();
    drop(system);

    // Re-stamp the (valid) index file with a wrong epoch.
    let index_path = dir.join("indexes.idm");
    let (bundle, epoch) = idm_index::persist::load_with_epoch(&index_path).unwrap();
    idm_index::persist::save_with_epoch(&bundle, &index_path, epoch.unwrap() + 17).unwrap();

    let (reopened, report) = Pdsms::open(&dir).unwrap();
    assert_eq!(report.index, IndexFate::RebuiltStaleEpoch, "{report}");
    assert_eq!(query_rows(&reopened), baseline, "rebuild == fresh ingest");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_index_file_rebuilds_and_queries_identically() {
    let dir = tmp("corruptindex");
    let mut system = populated_system();
    let baseline = query_rows(&system);
    system.make_durable(&dir).unwrap();
    system.checkpoint().unwrap();
    drop(system);

    let index_path = dir.join("indexes.idm");
    let mut bytes = std::fs::read(&index_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x55;
    std::fs::write(&index_path, &bytes).unwrap();

    let (reopened, report) = Pdsms::open(&dir).unwrap();
    assert_eq!(report.index, IndexFate::RebuiltUnreadable, "{report}");
    assert_eq!(query_rows(&reopened), baseline);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_index_file_rebuilds_from_the_recovered_store() {
    let dir = tmp("noindex");
    let mut system = populated_system();
    let baseline = query_rows(&system);
    system.make_durable(&dir).unwrap();
    system.checkpoint().unwrap();
    drop(system);

    std::fs::remove_file(dir.join("indexes.idm")).unwrap();

    let (reopened, report) = Pdsms::open(&dir).unwrap();
    assert_eq!(report.index, IndexFate::RebuiltMissing, "{report}");
    assert_eq!(query_rows(&reopened), baseline);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_wal_tail_recovers_a_consistent_prefix_end_to_end() {
    let dir = tmp("tornsys");
    let mut system = populated_system();
    system.make_durable(&dir).unwrap();
    for i in 0..10 {
        system
            .store()
            .build(format!("wal-{i}.txt"))
            .text(format!("tail entry {i}"))
            .insert();
    }
    drop(system);

    // Tear the last record in half.
    let wal_path = dir.join("wal-1.idmlog");
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 7]).unwrap();

    let (reopened, report) = Pdsms::open(&dir).unwrap();
    assert_eq!(report.recovery.records_replayed, 9, "{report}");
    assert!(report.recovery.bytes_truncated > 0);
    let invariants = reopened.store().verify_invariants();
    assert!(invariants.is_ok(), "{invariants:?}");
    // 9 of the 10 tail entries survived; the torn one is gone entirely.
    let rows = reopened
        .run(&QueryRequest::new(r#""tail entry""#))
        .unwrap()
        .result
        .rows;
    assert_eq!(rows.len(), 9);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lineage_survives_checkpoints() {
    let dir = tmp("lineage");
    let mut system = Pdsms::new();
    let a = system.store().build("a").text("original").insert();
    let b = system.store().build("b").text("copy").insert();
    system.lineage().record(b, a, "copy");
    system.make_durable(&dir).unwrap();
    system.checkpoint().unwrap();
    drop(system);

    let (reopened, _) = Pdsms::open(&dir).unwrap();
    let provenance = reopened.lineage().provenance(b);
    assert_eq!(provenance.len(), 1);
    assert_eq!(provenance[0].source, a);
    assert_eq!(provenance[0].transform, "copy");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn open_refuses_an_empty_directory_and_make_durable_refuses_a_full_one() {
    let dir = tmp("guards");
    std::fs::create_dir_all(&dir).unwrap();
    assert!(Pdsms::open(&dir).is_err());

    let mut system = Pdsms::new();
    system.store().build("x").insert();
    system.make_durable(&dir).unwrap();
    let mut other = Pdsms::new();
    assert!(
        other.make_durable(&dir).is_err(),
        "directory already in use"
    );
    assert!(system.make_durable(&dir).is_err(), "already durable");
    std::fs::remove_dir_all(&dir).ok();
}
