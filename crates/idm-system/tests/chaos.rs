//! Chaos tests: seeded, deterministic fault injection against the full
//! system — sync rounds, circuit breakers and stale reads under
//! substrate failure. Compiled only with `--features fault-injection`.

#![cfg(feature = "fault-injection")]

use std::sync::Arc;
use std::time::Duration;

use idm_core::prelude::*;
use idm_email::message::EmailMessage;
use idm_email::ImapServer;
use idm_query::ExpansionCache;
use idm_system::sync::SyncReport;
use idm_system::QueryRequest;
use idm_system::{
    FsPlugin, ImapPlugin, ImapSynchronizationManager, Pdsms, SyncCoordinator, SyncDriver,
    SynchronizationManager,
};
use idm_vfs::{NodeId, VirtualFs};
use idm_xml::rss::FeedServer;

fn t() -> Timestamp {
    Timestamp::from_ymd(2006, 9, 12).unwrap()
}

fn mail(subject: &str) -> EmailMessage {
    EmailMessage {
        subject: subject.into(),
        from: "chaos@test".into(),
        to: "user@test".into(),
        date: t(),
        body: format!("body of {subject}"),
        attachments: Vec::new(),
    }
}

/// A minimal RSS sync driver: one poll of the feed URL per round. Real
/// deployments would diff items; for chaos purposes the substrate call
/// is what matters.
struct RssPollDriver {
    server: Arc<FeedServer>,
    url: String,
}

impl SyncDriver for RssPollDriver {
    fn source_name(&self) -> &str {
        "rss"
    }

    fn drive_round(&self) -> Result<SyncReport> {
        self.server.fetch(&self.url)?;
        Ok(SyncReport::default())
    }
}

/// ISSUE test (c).1: a sync round over an IMAP server that fails every
/// 3rd substrate call completes without quarantining the source — the
/// retry policy absorbs the transient faults.
#[test]
fn sync_round_survives_imap_failing_every_third_call() {
    let server = Arc::new(ImapServer::in_process());
    let plugin = Arc::new(ImapPlugin::new(Arc::clone(&server)));
    let mut system = Pdsms::new();
    system.register_source(plugin.clone());
    system.index_all().unwrap();

    let manager = Arc::new(ImapSynchronizationManager::attach(
        plugin,
        Arc::clone(system.store()),
        Arc::clone(system.indexes()),
    ));

    // Deliver mail while the server is healthy, then make it flaky.
    let inbox = server.inbox();
    for i in 0..4 {
        server.append(inbox, &mail(&format!("m{i}"))).unwrap();
    }
    server.install_faults(FaultPlan::fail_every(3));

    let mut coordinator = SyncCoordinator::new();
    coordinator.attach(manager);
    let report = coordinator.sync_round();

    assert!(
        report.quarantined.is_empty(),
        "transient every-3rd-call faults are retried away: {report:?}"
    );
    assert!(
        report.retries >= 1,
        "at least one retry happened: {report:?}"
    );
    assert!(report.created >= 1, "messages still synced: {report:?}");
}

/// ISSUE test (c).2: a tripped breaker leaves the query layer serving
/// last-known-good cache entries (marked stale), and the breaker
/// recovers through its half-open probe once the substrate heals.
#[test]
fn tripped_breaker_serves_stale_and_recovers_after_cooldown() {
    let fs = Arc::new(VirtualFs::new(t()));
    let dir = fs.mkdir_p("/notes", t()).unwrap();
    let node = fs.create_file(dir, "a.txt", "good", t()).unwrap();

    let store = ViewStore::new();
    let fs2 = Arc::clone(&fs);
    let vid = store
        .build("a.txt")
        .content(Content::lazy(Arc::new(move || fs2.read_file(node))))
        .insert();

    // Prime the cache with the healthy value.
    let cache = ExpansionCache::new(&store, 16);
    let (bytes, stale) = cache.content_with_fallback(&store, vid).unwrap();
    assert_eq!(bytes.as_ref(), b"good");
    assert!(!stale);

    // The substrate reports a change (new provider, bumped version), so
    // the memoized bytes are discarded and the next read re-hits the
    // filesystem — which is now down, hard.
    let fs3 = Arc::clone(&fs);
    store
        .set_content(vid, Content::lazy(Arc::new(move || fs3.read_file(node))))
        .unwrap();
    fs.install_faults(FaultPlan::fail_every(1).permanent());

    // The guarded substrate access trips the breaker (threshold 1, zero
    // cooldown so the next admit is immediately the half-open probe).
    let stats = Arc::new(FaultStats::new());
    let guard = SourceGuard::new(
        "filesystem",
        RetryPolicy::none(),
        CircuitBreaker::new(1, Duration::ZERO),
        Arc::clone(&stats),
    );
    let err = guard.call(|| store.content(vid)?.bytes()).unwrap_err();
    assert!(!err.is_retryable(), "permanent faults are not retried");
    assert_eq!(guard.breaker().state(), BreakerState::Open);
    assert_eq!(guard.breaker().trips(), 1);

    // Query layer degrades gracefully: last-known-good, marked stale.
    let (bytes, stale) = cache.content_with_fallback(&store, vid).unwrap();
    assert_eq!(bytes.as_ref(), b"good");
    assert!(stale, "served from the stale cache entry");
    assert_eq!(cache.counters().stale_served, 1);

    // Substrate heals; the half-open probe closes the breaker and fresh
    // reads flow again.
    fs.clear_faults();
    let bytes = guard.call(|| store.content(vid)?.bytes()).unwrap();
    assert_eq!(bytes.as_ref(), b"good");
    assert_eq!(guard.breaker().state(), BreakerState::Closed);
    let (_, stale) = cache.content_with_fallback(&store, vid).unwrap();
    assert!(!stale, "fresh value re-cached after recovery");
}

/// ISSUE test (c).3: `FaultPlan::fail_n(2)` makes the first two calls
/// fail; a guarded call succeeds on the third attempt with exactly two
/// retries counted.
#[test]
fn fail_n_two_succeeds_on_third_attempt_with_two_retries() {
    let fs = Arc::new(VirtualFs::new(t()));
    let dir = fs.mkdir_p("/d", t()).unwrap();
    let node = fs.create_file(dir, "f.txt", "payload", t()).unwrap();
    let injector = fs.install_faults(FaultPlan::fail_n(2));

    let stats = Arc::new(FaultStats::new());
    let guard = SourceGuard::new(
        "filesystem",
        RetryPolicy::immediate(3),
        CircuitBreaker::new(10, Duration::from_millis(100)),
        Arc::clone(&stats),
    );
    let bytes = guard.call(|| fs.read_file(node)).unwrap();

    assert_eq!(bytes.as_ref(), b"payload");
    assert_eq!(injector.calls(), 3, "two failures + the success");
    assert_eq!(injector.injected(), 2);
    assert_eq!(stats.snapshot().retries, 2, "exactly two retries counted");
    assert_eq!(guard.breaker().state(), BreakerState::Closed);
}

/// ISSUE acceptance chaos test: three attached sources, one failing
/// persistently. The round completes, the two healthy sources sync, the
/// failing one is quarantined in the report, and nothing panics.
#[test]
fn persistent_failure_quarantines_one_source_while_others_sync() {
    // Source 1: a healthy filesystem.
    let fs = Arc::new(VirtualFs::new(t()));
    fs.mkdir_p("/docs", t()).unwrap();
    let fs_plugin = Arc::new(FsPlugin::new(Arc::clone(&fs), NodeId::ROOT));

    // Source 2: an IMAP server about to fail persistently.
    let server = Arc::new(ImapServer::in_process());
    let imap_plugin = Arc::new(ImapPlugin::new(Arc::clone(&server)));

    let mut system = Pdsms::new();
    system.register_source(fs_plugin.clone());
    system.register_source(imap_plugin.clone());
    system.index_all().unwrap();

    let fs_sync = Arc::new(
        SynchronizationManager::attach(
            fs_plugin,
            Arc::clone(system.store()),
            Arc::clone(system.indexes()),
        )
        .unwrap(),
    );
    let imap_sync = Arc::new(ImapSynchronizationManager::attach(
        imap_plugin,
        Arc::clone(system.store()),
        Arc::clone(system.indexes()),
    ));

    // Source 3: a healthy RSS feed.
    let feeds = Arc::new(FeedServer::new());
    feeds.publish("http://example.org/feed", idm_xml::rss::Feed::new("news"));
    let rss_sync = Arc::new(RssPollDriver {
        server: Arc::clone(&feeds),
        url: "http://example.org/feed".into(),
    });

    let mut coordinator = SyncCoordinator::new();
    let stats = Arc::clone(coordinator.fault_stats());
    coordinator.attach(fs_sync);
    // A tight guard keeps the failing source's round fast: one retry,
    // breaker trips after two consecutive failures.
    coordinator.attach_guarded(
        imap_sync,
        SourceGuard::new(
            "imap",
            RetryPolicy::immediate(1),
            CircuitBreaker::new(2, Duration::ZERO),
            stats,
        ),
    );
    coordinator.attach(rss_sync);
    assert_eq!(
        coordinator.source_names(),
        vec!["filesystem", "imap", "rss"]
    );

    // Pending work on every source, then the mail server goes down hard.
    let dir = fs.resolve("/docs").unwrap();
    fs.create_file(dir, "new.txt", "fresh file", t()).unwrap();
    server.append(server.inbox(), &mail("doomed")).unwrap();
    server.install_faults(FaultPlan::fail_every(1).permanent());

    let report = coordinator.sync_round();
    assert_eq!(report.quarantined, vec!["imap".to_owned()]);
    assert!(report.created >= 1, "filesystem still synced: {report:?}");
    assert_eq!(
        report.retries, 0,
        "permanent faults are classified as non-retryable"
    );

    // The healthy sources' data is queryable; the dataspace degraded,
    // it did not fail.
    let hits = system
        .run(&QueryRequest::new(r#""fresh file""#))
        .unwrap()
        .result;
    assert_eq!(hits.rows.len(), 1);

    // The mail server heals; the next rounds recover the source (the
    // zero-cooldown breaker probes immediately).
    server.clear_faults();
    server.append(server.inbox(), &mail("recovered")).unwrap();
    let report = coordinator.sync_round();
    assert!(
        report.quarantined.is_empty(),
        "source recovered: {report:?}"
    );
    assert!(report.created >= 1, "new mail synced after recovery");
    assert_eq!(
        coordinator.guard_of("imap").unwrap().breaker().state(),
        BreakerState::Closed
    );
}

/// Torn reads truncate at a char boundary and surface as parse-level
/// failures, not panics.
#[test]
fn torn_reads_fail_cleanly_not_catastrophically() {
    let fs = Arc::new(VirtualFs::new(t()));
    let dir = fs.mkdir_p("/d", t()).unwrap();
    let node = fs.create_file(dir, "f.txt", "0123456789", t()).unwrap();
    fs.install_faults(FaultPlan::torn_read(4));

    let bytes = fs.read_file(node).unwrap();
    assert_eq!(bytes.as_ref(), b"0123", "read truncated, not errored");
    fs.clear_faults();
    assert_eq!(fs.read_file(node).unwrap().as_ref(), b"0123456789");
}

/// Seeded fail-rate plans are deterministic: the same seed injects the
/// same faults on the same calls, run after run.
#[test]
fn seeded_fail_rate_is_deterministic() {
    let outcomes = |seed: u64| -> Vec<bool> {
        let fs = Arc::new(VirtualFs::new(t()));
        let dir = fs.mkdir_p("/d", t()).unwrap();
        let node = fs.create_file(dir, "f.txt", "x", t()).unwrap();
        fs.install_faults(FaultPlan::fail_rate(0.5, seed));
        (0..32).map(|_| fs.read_file(node).is_ok()).collect()
    };
    assert_eq!(outcomes(7), outcomes(7), "same seed, same fault schedule");
    assert_ne!(outcomes(7), outcomes(8), "different seed, different one");
}

/// Resource-governance chaos: injected substrate latency makes the lazy
/// group force slow, and a 10ms wall-clock deadline fires *during* the
/// expansion — the query unwinds with a structured error within one
/// slow force, not after walking the whole graph. Afterwards, with the
/// substrate failing hard, the stale-cache path still serves the
/// last-known-good expansion (`stale_served` increments) and the store
/// itself is untouched by any of it.
#[test]
fn deadline_fires_during_slow_lazy_expansion_then_stale_cache_serves() {
    use idm_index::IndexBundle;
    use idm_query::{ExecOptions, QueryBudget, QueryProcessor};

    let fs = Arc::new(VirtualFs::new(t()));
    let dir = fs.mkdir_p("/slow", t()).unwrap();
    let marker = fs.create_file(dir, "marker", "x", t()).unwrap();

    let store = Arc::new(ViewStore::new());
    let indexes = Arc::new(IndexBundle::new());
    let leaves: Vec<Vid> = (0..3)
        .map(|i| store.build(format!("leaf{i}")).insert())
        .collect();
    // The root's group component is lazy; every force goes through the
    // (faultable) substrate.
    let make_provider = |fs: Arc<VirtualFs>, members: Vec<Vid>| {
        Arc::new(move |_: &ViewStore, _owner: Vid| {
            fs.read_file(marker)?;
            Ok(GroupData::of_seq(members.clone()))
        })
    };
    let root = store
        .build("root")
        .group(Group::lazy(make_provider(Arc::clone(&fs), leaves.clone())))
        .insert();
    for vid in store.vids() {
        indexes.index_view(&store, vid, "chaos").unwrap();
    }

    let mut processor =
        QueryProcessor::new(Arc::clone(&store), Arc::clone(&indexes)).with_options(ExecOptions {
            live_expansion: true,
            ..ExecOptions::default()
        });

    // Healthy baseline primes the expansion cache.
    let baseline = processor.execute("//root//leaf1").unwrap();
    assert_eq!(baseline.rows.len(), 1);
    let vids_before = store.vids().len();

    // The substrate turns slow and the replica is invalidated, so the
    // next query must re-force through the 50ms-per-call filesystem.
    fs.install_faults(FaultPlan::latency(Duration::from_millis(50)));
    store
        .set_group(
            root,
            Group::lazy(make_provider(Arc::clone(&fs), leaves.clone())),
        )
        .unwrap();

    processor.set_budget(QueryBudget::with_deadline(Duration::from_millis(10)));
    let started = std::time::Instant::now();
    let err = processor.execute("//root//leaf1").unwrap_err();
    assert_eq!(err.budget_kind(), Some(BudgetKind::WallClock));
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "deadline aborted within one slow force, not after the whole walk"
    );

    // The substrate goes down hard and the expansion is invalidated
    // again: forcing now fails, and the cache degrades to the
    // last-known-good members instead of erroring the query.
    fs.clear_faults();
    fs.install_faults(FaultPlan::fail_every(1).permanent());
    store
        .set_group(
            root,
            Group::lazy(make_provider(Arc::clone(&fs), leaves.clone())),
        )
        .unwrap();
    processor.set_budget(QueryBudget::none());
    let degraded = processor.execute("//root//leaf1").unwrap();
    assert_eq!(degraded.rows, baseline.rows, "stale members, same rows");
    assert!(processor.expansion_cache().counters().stale_served >= 1);

    // The read path never wrote: nothing appeared in or vanished from
    // the store, and every structural invariant still holds.
    fs.clear_faults();
    assert_eq!(store.vids().len(), vids_before);
    let report = store.verify_invariants();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}
