//! Deterministic chaos simulation, driven from outside the crate the
//! way CI drives it: many seeds, full invariant suite, and an exact
//! reproducibility check (same seed -> same event log and fingerprint).

use idm_system::{run_sim, SimConfig};

fn tagged(seed: u64, ops: usize, tag: &str) -> SimConfig {
    let mut config = SimConfig::new(seed, ops);
    config.dir =
        std::env::temp_dir().join(format!("idm-simtest-{}-{tag}-{seed}", std::process::id()));
    config
}

#[test]
fn a_seed_replays_to_an_identical_fingerprint() {
    let first = run_sim(&tagged(42, 120, "replay-a")).unwrap();
    let second = run_sim(&tagged(42, 120, "replay-b")).unwrap();
    assert!(first.violations.is_empty(), "{:#?}", first.violations);
    assert_eq!(first.events, second.events, "event sequences diverged");
    assert_eq!(first.fingerprint, second.fingerprint);
    assert_eq!(first.counters, second.counters);
}

#[test]
fn twenty_seeds_hold_every_invariant() {
    for seed in 100..120 {
        let outcome = run_sim(&tagged(seed, 80, "sweep")).unwrap();
        assert!(
            outcome.violations.is_empty(),
            "seed {seed} violated invariants: {:#?}\nevents:\n{}",
            outcome.violations,
            outcome.events.join("\n")
        );
    }
}

#[test]
fn long_schedule_exercises_every_operation_class() {
    let outcome = run_sim(&tagged(7777, 400, "long")).unwrap();
    assert!(outcome.violations.is_empty(), "{:#?}", outcome.violations);
    let c = outcome.counters;
    assert!(c.inserts > 0, "{c:?}");
    assert!(c.mutations > 0, "{c:?}");
    assert!(c.removes > 0, "{c:?}");
    assert!(c.queries > 0, "{c:?}");
    assert!(c.pumps > 0, "{c:?}");
    assert!(c.checkpoints > 0, "{c:?}");
    assert!(c.health_rounds > 0, "{c:?}");
    assert!(c.corruptions > 0, "{c:?}");
    assert!(c.repairs > 0, "{c:?}");
    assert!(c.crashes > 0, "{c:?}");
}
