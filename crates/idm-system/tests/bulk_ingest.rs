//! End-to-end bulk ingest: the batched write path must produce the
//! same dataspace as record-at-a-time ingestion — including after a
//! crash and recovery — while issuing far fewer WAL fsyncs.

use std::path::PathBuf;
use std::sync::Arc;

use idm_core::durability::{DurabilityOptions, SyncPolicy};
use idm_core::prelude::*;
use idm_system::{BulkIngestOptions, FsPlugin, Pdsms, QueryRequest};
use idm_vfs::{NodeId, VirtualFs};

fn t() -> Timestamp {
    Timestamp::from_ymd(2005, 6, 1).unwrap()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("idm-bulk-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A filesystem wide enough that batching actually matters: `files`
/// text files spread over a few directories, some with structure.
fn wide_fs(files: usize) -> Arc<VirtualFs> {
    let fs = Arc::new(VirtualFs::new(t()));
    for i in 0..files {
        let dir = fs.mkdir_p(&format!("/corpus/d{}", i % 7), t()).unwrap();
        let body = if i % 11 == 0 {
            format!("\\section{{Part {i}}}\nbulk ingest corpus entry {i}")
        } else {
            format!("bulk ingest corpus entry number {i} with shared words")
        };
        fs.create_file(dir, &format!("f{i}.txt"), body, t())
            .unwrap();
    }
    fs
}

const QUERIES: &[&str] = &[
    r#""bulk ingest corpus""#,
    r#"//corpus//*["shared words"]"#,
    r#"//d3//*"#,
];

fn query_rows(system: &Pdsms) -> Vec<Vec<u64>> {
    QUERIES
        .iter()
        .map(|iql| {
            let mut rows: Vec<u64> = system
                .run(&QueryRequest::new(*iql))
                .unwrap()
                .result
                .rows
                .views()
                .iter()
                .map(|v| v.as_u64())
                .collect();
            rows.sort_unstable();
            rows
        })
        .collect()
}

fn durable_system(dir: &PathBuf, fs: Arc<VirtualFs>) -> Pdsms {
    let mut system = Pdsms::new();
    system.register_source(Arc::new(FsPlugin::new(fs, NodeId::ROOT)));
    system
        .make_durable_with(dir, DurabilityOptions::new(SyncPolicy::Fsync))
        .unwrap();
    system
}

#[test]
fn bulk_ingest_saves_fsyncs_ten_fold_and_recovers_identically() {
    let seq_dir = tmp("seq");
    let bulk_dir = tmp("bulk");
    let files = 150;

    // Sequential: every WAL append carries its own fsync.
    let seq = durable_system(&seq_dir, wide_fs(files));
    seq.index_all().unwrap();
    let seq_rows = query_rows(&seq);
    drop(seq); // abrupt death: recovery must replay the WAL tail

    // Bulk: syncs deferred to batch boundaries inside the window.
    let bulk = durable_system(&bulk_dir, wide_fs(files));
    let report = bulk.index_all_bulk(&BulkIngestOptions::default()).unwrap();
    let t = &report.throughput;
    assert!(t.wal_records > files as u64, "every view was logged");
    assert!(t.fsyncs > 0, "covering syncs were issued");
    assert!(
        t.fsyncs * 10 <= t.wal_records,
        "bulk path must save >=10x fsyncs: {} syncs for {} records",
        t.fsyncs,
        t.wal_records
    );
    assert!(t.fsyncs_saved >= t.wal_records - t.fsyncs - 1);
    assert!(t.wal_batches <= t.wal_records);
    assert_eq!(query_rows(&bulk), seq_rows, "same dataspace before crash");
    drop(bulk);

    // Both recover to the same state (bulk records were all
    // acknowledged by the window's covering syncs, so none may
    // vanish). Lazy file content unforced at insert time recovers as
    // empty on both paths — the documented WAL-tail gap — so the two
    // recoveries are compared to each other, not to the live baseline.
    let (seq_re, seq_report) = Pdsms::open(&seq_dir).unwrap();
    let (bulk_re, bulk_report) = Pdsms::open(&bulk_dir).unwrap();
    assert_eq!(
        seq_report.recovery.records_replayed, bulk_report.recovery.records_replayed,
        "same WAL tail length"
    );
    assert_eq!(query_rows(&seq_re), query_rows(&bulk_re));
    // Name indexes carry no lazy state: the structural query still
    // answers exactly as before the crash.
    assert_eq!(query_rows(&bulk_re)[2], seq_rows[2]);

    // Identical logical store state, vid for vid.
    let mut seq_vids = seq_re.store().vids();
    let mut bulk_vids = bulk_re.store().vids();
    seq_vids.sort();
    bulk_vids.sort();
    assert_eq!(seq_vids, bulk_vids);
    for &vid in &seq_vids {
        assert_eq!(
            seq_re.store().name(vid).unwrap(),
            bulk_re.store().name(vid).unwrap()
        );
    }

    std::fs::remove_dir_all(&seq_dir).ok();
    std::fs::remove_dir_all(&bulk_dir).ok();
}

#[test]
fn bulk_ingest_without_durability_still_reports_throughput() {
    let mut system = Pdsms::new();
    system.register_source(Arc::new(FsPlugin::new(wide_fs(20), NodeId::ROOT)));
    let report = system
        .index_all_bulk(&BulkIngestOptions::default())
        .unwrap();
    assert_eq!(report.throughput.views, report.total_views());
    assert!(report.throughput.views > 20);
    assert_eq!(report.throughput.wal_records, 0, "not durable: no WAL");
}
