//! The Content2iDM Converter registry (Section 5.2, part 2): enriches
//! the initial iDM graph by converting content components into resource
//! view subgraphs. The paper's prototype provided converters for XML
//! and LaTeX — so does this registry.

use idm_core::prelude::*;

/// What a converter produced for one view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Conversion {
    /// Views derived from XML content.
    pub derived_xml: usize,
    /// Views derived from LaTeX content.
    pub derived_latex: usize,
}

impl Conversion {
    /// Total derived views.
    pub fn total(&self) -> usize {
        self.derived_xml + self.derived_latex
    }

    fn add(&mut self, other: Conversion) {
        self.derived_xml += other.derived_xml;
        self.derived_latex += other.derived_latex;
    }
}

/// A Content2iDM converter.
pub trait Content2IdmConverter: Send + Sync {
    /// Converter name (`"xml2idm"`, `"latex2idm"`).
    fn name(&self) -> &str;

    /// Whether this converter handles the view (typically by the name
    /// component's extension).
    fn applies(&self, store: &ViewStore, vid: Vid) -> Result<bool>;

    /// Converts the view's content component into a subgraph hanging
    /// off its group component; returns counts.
    fn convert(&self, store: &ViewStore, vid: Vid) -> Result<Conversion>;
}

fn has_extension(store: &ViewStore, vid: Vid, extension: &str) -> Result<bool> {
    Ok(store
        .name(vid)?
        .is_some_and(|name| name.to_ascii_lowercase().ends_with(extension)))
}

/// `XML2iDM`: upgrades `.xml` file views to `xmlfile` with the parsed
/// document subgraph.
pub struct XmlConverter;

impl Content2IdmConverter for XmlConverter {
    fn name(&self) -> &str {
        "xml2idm"
    }

    fn applies(&self, store: &ViewStore, vid: Vid) -> Result<bool> {
        has_extension(store, vid, ".xml")
    }

    fn convert(&self, store: &ViewStore, vid: Vid) -> Result<Conversion> {
        let (_doc, derived) = idm_xml::convert::enrich_xml_file(store, vid)?;
        Ok(Conversion {
            derived_xml: derived,
            derived_latex: 0,
        })
    }
}

/// `LaTeX2iDM`: attaches the structural subgraph of `.tex` files.
pub struct LatexConverter;

impl Content2IdmConverter for LatexConverter {
    fn name(&self) -> &str {
        "latex2idm"
    }

    fn applies(&self, store: &ViewStore, vid: Vid) -> Result<bool> {
        has_extension(store, vid, ".tex")
    }

    fn convert(&self, store: &ViewStore, vid: Vid) -> Result<Conversion> {
        let before = store.len();
        idm_latex::convert::latex_to_views(store, vid)?;
        Ok(Conversion {
            derived_xml: 0,
            derived_latex: store.len() - before,
        })
    }
}

/// `Office2iDM`: opens Office-12 / OpenOffice "zipped XML" containers
/// (paper footnote 1) and converts the main document part into an XML
/// subgraph hanging off the file view.
pub struct OfficeConverter;

impl Content2IdmConverter for OfficeConverter {
    fn name(&self) -> &str {
        "office2idm"
    }

    fn applies(&self, store: &ViewStore, vid: Vid) -> Result<bool> {
        for extension in [".docx", ".odt", ".pptx"] {
            if has_extension(store, vid, extension)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn convert(&self, store: &ViewStore, vid: Vid) -> Result<Conversion> {
        let bytes = store.content(vid)?.bytes()?;
        if !idm_xml::zip::is_zip(&bytes) {
            return Err(IdmError::Parse {
                detail: "office: not a zip container".into(),
            });
        }
        let document_xml = idm_xml::zip::office_document_xml(&bytes)?;
        let (doc_vid, derived) = idm_xml::convert::text_to_views(store, &document_xml)?;
        store.set_group(vid, Group::of_seq(vec![doc_vid]))?;
        // The container is a file carrying an XML document: xmlfile.
        if let Some(class) = store.classes().lookup("xmlfile") {
            store.set_class(vid, Some(class))?;
        }
        Ok(Conversion {
            derived_xml: derived,
            derived_latex: 0,
        })
    }
}

/// The converter registry.
pub struct ConverterRegistry {
    converters: Vec<Box<dyn Content2IdmConverter>>,
}

impl ConverterRegistry {
    /// A registry with the paper's converter set (XML and LaTeX) plus
    /// the Office-container converter.
    pub fn with_defaults() -> Self {
        ConverterRegistry {
            converters: vec![
                Box::new(XmlConverter),
                Box::new(LatexConverter),
                Box::new(OfficeConverter),
            ],
        }
    }

    /// An empty registry.
    pub fn empty() -> Self {
        ConverterRegistry {
            converters: Vec::new(),
        }
    }

    /// Adds a converter.
    pub fn register(&mut self, converter: Box<dyn Content2IdmConverter>) {
        self.converters.push(converter);
    }

    /// Runs the first applicable converter on one view.
    ///
    /// Malformed documents are tolerated: a converter parse failure
    /// leaves the view unconverted (a PDSMS must survive odd files),
    /// reported as a zero conversion.
    pub fn convert_view(&self, store: &ViewStore, vid: Vid) -> Result<Conversion> {
        for converter in &self.converters {
            if converter.applies(store, vid)? {
                return match converter.convert(store, vid) {
                    Ok(conversion) => Ok(conversion),
                    Err(IdmError::Parse { .. }) => Ok(Conversion::default()),
                    Err(other) => Err(other),
                };
            }
        }
        Ok(Conversion::default())
    }

    /// Runs converters over a set of views, totalling the counts.
    pub fn convert_all(&self, store: &ViewStore, vids: &[Vid]) -> Result<Conversion> {
        let mut total = Conversion::default();
        for &vid in vids {
            total.add(self.convert_view(store, vid)?);
        }
        Ok(total)
    }
}

impl Default for ConverterRegistry {
    fn default() -> Self {
        ConverterRegistry::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(store: &ViewStore, name: &str, content: &str) -> Vid {
        store
            .build(name)
            .tuple(TupleComponent::of(vec![
                ("size", Value::Integer(content.len() as i64)),
                ("creation time", Value::Date(Timestamp(0))),
                ("last modified time", Value::Date(Timestamp(0))),
            ]))
            .text(content)
            .class_named("file")
            .insert()
    }

    #[test]
    fn xml_files_get_xml_converter() {
        let store = ViewStore::new();
        let vid = file(&store, "data.XML", "<a><b>x</b></a>");
        let registry = ConverterRegistry::with_defaults();
        let conversion = registry.convert_view(&store, vid).unwrap();
        assert!(conversion.derived_xml >= 4);
        assert_eq!(conversion.derived_latex, 0);
        assert!(store.conforms_to(vid, "xmlfile").unwrap());
    }

    #[test]
    fn tex_files_get_latex_converter() {
        let store = ViewStore::new();
        let vid = file(&store, "paper.tex", "\\section{Intro}\nwords");
        let registry = ConverterRegistry::with_defaults();
        let conversion = registry.convert_view(&store, vid).unwrap();
        assert!(conversion.derived_latex >= 3);
        assert_eq!(conversion.derived_xml, 0);
    }

    #[test]
    fn other_files_untouched() {
        let store = ViewStore::new();
        let vid = file(&store, "notes.txt", "plain text");
        let registry = ConverterRegistry::with_defaults();
        let conversion = registry.convert_view(&store, vid).unwrap();
        assert_eq!(conversion, Conversion::default());
        assert!(store.group(vid).unwrap().finite().unwrap().is_empty());
    }

    #[test]
    fn malformed_documents_tolerated() {
        let store = ViewStore::new();
        let vid = file(&store, "broken.xml", "<a><b></a>");
        let registry = ConverterRegistry::with_defaults();
        let conversion = registry.convert_view(&store, vid).unwrap();
        assert_eq!(conversion.total(), 0);
        // Still a plain file.
        assert!(store.conforms_to(vid, "file").unwrap());
    }

    #[test]
    fn office_containers_get_unzipped_and_converted() {
        let store = ViewStore::new();
        let container = idm_xml::zip::office_document(
            "<doc><section><title>Grant Proposal</title><p>Budget plan for PIM.</p></section></doc>",
        );
        let vid = store
            .build("Grant.docx")
            .tuple(TupleComponent::of(vec![
                ("size", Value::Integer(container.len() as i64)),
                ("creation time", Value::Date(Timestamp(0))),
                ("last modified time", Value::Date(Timestamp(0))),
            ]))
            .content(Content::inline(container))
            .class_named("file")
            .insert();
        let registry = ConverterRegistry::with_defaults();
        let conversion = registry.convert_view(&store, vid).unwrap();
        assert!(conversion.derived_xml >= 6, "{conversion:?}");
        assert!(store.conforms_to(vid, "xmlfile").unwrap());
        // The inside of the container is queryable graph structure.
        let inside = idm_core::graph::descendants(&store, vid, usize::MAX).unwrap();
        assert!(inside
            .iter()
            .any(|v| store.name(*v).unwrap().as_deref() == Some("title")));
    }

    #[test]
    fn corrupt_office_containers_are_tolerated() {
        let store = ViewStore::new();
        let vid = file(&store, "broken.docx", "not a zip at all");
        let registry = ConverterRegistry::with_defaults();
        let conversion = registry.convert_view(&store, vid).unwrap();
        assert_eq!(conversion.total(), 0);
        assert!(store.conforms_to(vid, "file").unwrap());
    }

    #[test]
    fn convert_all_totals() {
        let store = ViewStore::new();
        let a = file(&store, "a.xml", "<r><c/></r>");
        let b = file(&store, "b.tex", "\\section{S}\ntext");
        let c = file(&store, "c.bin", "xx");
        let registry = ConverterRegistry::with_defaults();
        let conversion = registry.convert_all(&store, &[a, b, c]).unwrap();
        assert!(conversion.derived_xml > 0);
        assert!(conversion.derived_latex > 0);
    }
}
