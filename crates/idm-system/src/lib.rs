//! # idm-system — the iMeMex Personal Dataspace Management System
//!
//! The architecture of Figure 4, Section 5: a logical **Resource View
//! Layer** abstracting over the underlying subsystems, composed of the
//! iQL Query Processor (in `idm-query`) and the **Resource View
//! Manager** built here from four parts:
//!
//! 1. **Data Source Proxy** ([`source`]) — plugins representing each
//!    subsystem (filesystem, IMAP email server, RSS feeds) as an
//!    initial iDM graph,
//! 2. **Content2iDM Converters** ([`converter`]) — enrich that graph by
//!    converting content components (XML, LaTeX) into resource view
//!    subgraphs,
//! 3. **Replica&Indexes Module** (`idm-index`) — driven by the RVM
//!    ([`rvm`]) with the Figure 5 phase accounting (catalog insert /
//!    component indexing / data source access),
//! 4. **Synchronization Manager** ([`sync`]) — observes data sources
//!    (notifications where available, polling otherwise) and keeps
//!    catalog, replicas and indexes current.
//!
//! [`Pdsms`] is the user-facing facade tying everything together.

#![warn(missing_docs)]
// Substrate-facing code must degrade, not panic; tests unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod converter;
pub mod federation;
pub mod govern;
pub mod health;
pub mod live;
pub mod rvm;
pub mod sim;
pub mod source;
pub mod sync;

pub use converter::{Content2IdmConverter, ConverterRegistry};
pub use federation::{FederatedResult, FederatedRow, Federation};
pub use govern::{AdmissionGate, AdmissionPermit, AdmissionSnapshot, GovernorConfig};
pub use health::{HealthConfig, HealthMonitor, HealthReport, HealthStats, IndexArtifactOutcome};
pub use idm_query::{QueryRequest, QueryResponse};
pub use live::{LiveQuery, LiveStats, SubscriptionRegistry};
pub use rvm::{
    BulkIngestOptions, IngestReport, IngestThroughput, ResourceViewManager, SourceIngestStats,
};
pub use sim::{run_sim, SimConfig, SimCounters, SimOutcome};
pub use source::{DataSourcePlugin, FsPlugin, ImapPlugin, Ingestion, RssPlugin};
pub use sync::{ImapSynchronizationManager, SyncCoordinator, SyncDriver, SynchronizationManager};

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::Arc;

use idm_core::lineage::LineageGraph;
use idm_core::prelude::*;
use idm_index::IndexBundle;
use idm_query::{ExpansionStrategy, QueryBudget, QueryProcessor, QueryResult};
use parking_lot::Mutex;

/// File name of the persisted index bundle inside a dataspace directory.
const INDEX_FILE: &str = "indexes.idm";

/// How [`Pdsms::open`] obtained its index bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexFate {
    /// The stored bundle's epoch matched the recovered store — loaded
    /// as-is, no reindexing.
    Loaded,
    /// A bundle existed but was built against a different store state
    /// (its epoch differed from the recovered log sequence number) —
    /// rebuilt from the recovered views.
    RebuiltStaleEpoch,
    /// A bundle file existed but could not be read (corrupt, torn,
    /// legacy with no epoch) — rebuilt.
    RebuiltUnreadable,
    /// No bundle file was present — rebuilt.
    RebuiltMissing,
}

/// Everything [`Pdsms::open`] did: store recovery plus the index
/// epoch handshake.
#[derive(Debug, Clone)]
pub struct OpenReport {
    /// What store recovery found and replayed.
    pub recovery: idm_core::durability::RecoveryReport,
    /// How the index bundle was obtained.
    pub index: IndexFate,
}

impl fmt::Display for OpenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}; indexes ", self.recovery)?;
        match self.index {
            IndexFate::Loaded => write!(f, "loaded (epoch matched)"),
            IndexFate::RebuiltStaleEpoch => write!(f, "rebuilt (stale epoch)"),
            IndexFate::RebuiltUnreadable => write!(f, "rebuilt (file unreadable)"),
            IndexFate::RebuiltMissing => write!(f, "rebuilt (no index file)"),
        }
    }
}

fn durability_err(e: io::Error) -> IdmError {
    IdmError::Substrate {
        source: "durability".into(),
        kind: SubstrateFaultKind::Permanent,
        attempt: 1,
        detail: e.to_string(),
    }
}

/// The iMeMex Personal Dataspace Management System facade.
///
/// Owns one resource view store, its index bundle, the resource view
/// manager and a query processor.
pub struct Pdsms {
    store: Arc<ViewStore>,
    indexes: Arc<IndexBundle>,
    lineage: Arc<LineageGraph>,
    rvm: ResourceViewManager,
    durability: Option<Mutex<idm_core::durability::DurabilityManager>>,
    /// The expansion strategy every query processor of this system uses
    /// — and therefore the one its plans record and `explain` renders.
    expansion: ExpansionStrategy,
    /// Admission control over the query path, when enabled: max
    /// concurrent queries plus a bounded, deadline-shedding wait queue.
    governor: Option<govern::AdmissionGate>,
    /// Live-query machinery (record engine + subscription registry),
    /// created lazily on first [`Pdsms::subscribe`] so systems without
    /// standing queries never arm the store's record fan-out.
    live: std::sync::OnceLock<live::LiveState>,
}

impl Pdsms {
    /// A fresh, empty dataspace system with the default converter set
    /// (XML and LaTeX).
    pub fn new() -> Self {
        let store = Arc::new(ViewStore::new());
        let indexes = Arc::new(IndexBundle::new());
        Pdsms::assemble(store, indexes, Arc::new(LineageGraph::new()), None)
    }

    fn assemble(
        store: Arc<ViewStore>,
        indexes: Arc<IndexBundle>,
        lineage: Arc<LineageGraph>,
        durability: Option<idm_core::durability::DurabilityManager>,
    ) -> Self {
        let rvm = ResourceViewManager::new(Arc::clone(&store), Arc::clone(&indexes));
        Pdsms {
            store,
            indexes,
            lineage,
            rvm,
            durability: durability.map(Mutex::new),
            expansion: ExpansionStrategy::default(),
            governor: None,
            live: std::sync::OnceLock::new(),
        }
    }

    /// Opens (recovers) a durable dataspace from `dir`: newest valid
    /// snapshot, WAL tail replay, torn-tail truncation, then the index
    /// epoch handshake — the stored bundle is used only if it was built
    /// against exactly the recovered store state, and rebuilt otherwise.
    pub fn open(dir: impl AsRef<Path>) -> Result<(Pdsms, OpenReport)> {
        Pdsms::open_with(
            dir,
            idm_core::durability::DurabilityOptions::new(
                idm_core::durability::SyncPolicy::WriteBack,
            ),
        )
    }

    /// [`Pdsms::open`] with explicit durability options (sync policy
    /// and group-commit tuning).
    pub fn open_with(
        dir: impl AsRef<Path>,
        options: idm_core::durability::DurabilityOptions,
    ) -> Result<(Pdsms, OpenReport)> {
        let dir = dir.as_ref();
        let (store, lineage, manager, recovery) =
            idm_core::durability::DurabilityManager::open_with(dir, options)
                .map_err(durability_err)?;

        let index_path = dir.join(INDEX_FILE);
        let (indexes, fate) = match idm_index::persist::load_with_epoch(&index_path) {
            Ok((bundle, Some(epoch))) if epoch == recovery.lsn => {
                (Arc::new(bundle), IndexFate::Loaded)
            }
            Ok((stale, _)) => (
                Arc::new(Pdsms::rebuild_indexes(&store, Some(&stale))?),
                IndexFate::RebuiltStaleEpoch,
            ),
            Err(e) if e.kind() == io::ErrorKind::NotFound => (
                Arc::new(Pdsms::rebuild_indexes(&store, None)?),
                IndexFate::RebuiltMissing,
            ),
            Err(_) => (
                Arc::new(Pdsms::rebuild_indexes(&store, None)?),
                IndexFate::RebuiltUnreadable,
            ),
        };

        let system = Pdsms::assemble(store, indexes, lineage, Some(manager));
        Ok((
            system,
            OpenReport {
                recovery,
                index: fate,
            },
        ))
    }

    /// Rebuilds an index bundle from the live views of a recovered
    /// store. A stale bundle, when available, supplies the per-view data
    /// source labels; everything else defaults to `"dataspace"`.
    fn rebuild_indexes(store: &Arc<ViewStore>, stale: Option<&IndexBundle>) -> Result<IndexBundle> {
        let sources: HashMap<u64, String> = stale
            .map(|bundle| {
                bundle
                    .catalog
                    .export_rows()
                    .into_iter()
                    .map(|row| (row.vid, row.source))
                    .collect()
            })
            .unwrap_or_default();
        let bundle = IndexBundle::new();
        for vid in store.vids() {
            let source = sources
                .get(&vid.as_u64())
                .map(String::as_str)
                .unwrap_or("dataspace");
            bundle.index_view(store, vid, source)?;
        }
        Ok(bundle)
    }

    /// Makes this (so far in-memory) dataspace durable in `dir`: writes
    /// the initial snapshot, arms write-ahead logging, and persists the
    /// index bundle stamped with the current epoch.
    pub fn make_durable(
        &mut self,
        dir: impl AsRef<Path>,
    ) -> Result<idm_core::durability::CheckpointStats> {
        self.make_durable_with(
            dir,
            idm_core::durability::DurabilityOptions::new(
                idm_core::durability::SyncPolicy::WriteBack,
            ),
        )
    }

    /// [`Pdsms::make_durable`] with explicit durability options (sync
    /// policy and group-commit tuning).
    pub fn make_durable_with(
        &mut self,
        dir: impl AsRef<Path>,
        options: idm_core::durability::DurabilityOptions,
    ) -> Result<idm_core::durability::CheckpointStats> {
        if self.durability.is_some() {
            return Err(IdmError::Parse {
                detail: "dataspace is already durable".into(),
            });
        }
        let dir = dir.as_ref();
        let (manager, stats) = idm_core::durability::DurabilityManager::attach_with(
            dir,
            &self.store,
            &self.lineage,
            options,
        )
        .map_err(durability_err)?;
        idm_index::persist::save_with_epoch(&self.indexes, &dir.join(INDEX_FILE), stats.lsn)
            .map_err(durability_err)?;
        self.durability = Some(Mutex::new(manager));
        Ok(stats)
    }

    /// Writes a checkpoint snapshot and persists the index bundle
    /// stamped with the checkpoint's log sequence number, so the next
    /// [`Pdsms::open`] loads both without replay or reindexing.
    pub fn checkpoint(&self) -> Result<idm_core::durability::CheckpointStats> {
        let manager = self.durability.as_ref().ok_or_else(|| IdmError::Parse {
            detail: "dataspace is not durable (use make_durable or open)".into(),
        })?;
        let stats = manager
            .lock()
            .checkpoint(&self.store, &self.lineage)
            .map_err(durability_err)?;
        idm_index::persist::save_with_epoch(
            &self.indexes,
            &self.dataspace_dir_of(manager).join(INDEX_FILE),
            stats.lsn,
        )
        .map_err(durability_err)?;
        Ok(stats)
    }

    fn dataspace_dir_of(
        &self,
        manager: &Mutex<idm_core::durability::DurabilityManager>,
    ) -> std::path::PathBuf {
        manager.lock().dir().to_path_buf()
    }

    /// Whether this dataspace is backed by a durable directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The dataspace directory, when durable.
    pub fn dataspace_dir(&self) -> Option<std::path::PathBuf> {
        self.durability
            .as_ref()
            .map(|m| m.lock().dir().to_path_buf())
    }

    /// The lineage graph (durable as of the last checkpoint).
    pub fn lineage(&self) -> &Arc<LineageGraph> {
        &self.lineage
    }

    /// Sets the expansion strategy used by this system's queries (and
    /// rendered in its plans).
    pub fn set_expansion(&mut self, strategy: ExpansionStrategy) {
        self.expansion = strategy;
    }

    /// The configured expansion strategy.
    pub fn expansion(&self) -> ExpansionStrategy {
        self.expansion
    }

    /// The resource view store.
    pub fn store(&self) -> &Arc<ViewStore> {
        &self.store
    }

    /// The index bundle.
    pub fn indexes(&self) -> &Arc<IndexBundle> {
        &self.indexes
    }

    /// The resource view manager.
    pub fn rvm(&self) -> &ResourceViewManager {
        &self.rvm
    }

    /// Mutable access to the resource view manager (plugin registration).
    pub fn rvm_mut(&mut self) -> &mut ResourceViewManager {
        &mut self.rvm
    }

    /// Registers a data source plugin.
    pub fn register_source(&mut self, plugin: Arc<dyn DataSourcePlugin>) {
        self.rvm.register_source(plugin);
    }

    /// Ingests and indexes every registered data source; returns the
    /// per-source statistics (the Figure 5 / Table 2 numbers). Live
    /// queries are pumped afterwards, so the ingested changes reach
    /// every subscription as one delta batch.
    pub fn index_all(&self) -> Result<Vec<SourceIngestStats>> {
        let stats = self.rvm.ingest_all()?;
        self.pump_subscriptions();
        Ok(stats)
    }

    /// Like [`Pdsms::index_all`] but resilient: failing sources are
    /// reported in [`IngestReport::failed`] while the healthy sources
    /// still ingest and index.
    pub fn index_all_resilient(&self) -> IngestReport {
        let report = self.rvm.ingest_all_resilient();
        self.pump_subscriptions();
        report
    }

    /// Like [`Pdsms::index_all`] but through the bulk pipeline: batched
    /// store application, deferred parallel index-segment builds, and
    /// grouped WAL syncs. Returns the full report including
    /// [`IngestThroughput`] counters.
    pub fn index_all_bulk(&self, options: &BulkIngestOptions) -> Result<IngestReport> {
        let report = self.rvm.ingest_all_bulk(options)?;
        self.pump_subscriptions();
        Ok(report)
    }

    /// The fault counters shared by every source guard of this system
    /// (retries, breaker trips, stale reads).
    pub fn fault_stats(&self) -> &Arc<idm_core::fault::FaultStats> {
        self.rvm.fault_stats()
    }

    /// A query processor over this dataspace (cheap to construct). It
    /// shares the system's fault counters, so query-time retries and
    /// breaker trips show up in [`idm_query::ExecStats`].
    pub fn query_processor(&self) -> QueryProcessor {
        let mut processor = QueryProcessor::new(Arc::clone(&self.store), Arc::clone(&self.indexes));
        processor.set_fault_stats(Arc::clone(self.rvm.fault_stats()));
        processor.set_expansion(self.expansion);
        processor
    }

    /// Enables admission control: at most `config.max_concurrent`
    /// queries run at once, at most `config.max_queued` wait, and
    /// waiters are shed at the queue deadline. Applies to
    /// [`Pdsms::query`] and [`Pdsms::query_budgeted`].
    pub fn enable_governor(&mut self, config: govern::GovernorConfig) {
        self.governor = Some(govern::AdmissionGate::new(config));
    }

    /// The admission gate, when enabled.
    pub fn governor(&self) -> Option<&govern::AdmissionGate> {
        self.governor.as_ref()
    }

    /// Admission counters, when the governor is enabled (`shed` vs
    /// `deadline_exceeded` distinguish queue-full rejection from
    /// expiring while queued).
    pub fn governor_stats(&self) -> Option<govern::AdmissionSnapshot> {
        self.governor.as_ref().map(govern::AdmissionGate::snapshot)
    }

    /// Executes a [`QueryRequest`] under the system's configured
    /// expansion strategy and through the admission gate, when enabled:
    /// the request's wall-clock deadline (if any) also caps its
    /// admission-queue wait. This is the single query entry point — the
    /// legacy `query*` methods are deprecated spellings of it.
    pub fn run(&self, request: &QueryRequest) -> Result<QueryResponse> {
        // Hold the permit for the whole execution; dropping it on any
        // return path (including budget-exhaustion errors) frees the
        // slot and wakes one queued waiter.
        let deadline = request.requested_budget().and_then(|b| b.deadline);
        let _permit = match &self.governor {
            Some(gate) => Some(gate.admit(deadline)?),
            None => None,
        };
        self.query_processor().run(request)
    }

    /// Parses, plans and executes an iQL query under the system's
    /// configured expansion strategy (and through the admission gate,
    /// when enabled).
    #[deprecated(
        since = "0.2.0",
        note = "use `Pdsms::run` with `QueryRequest::new(iql)`"
    )]
    pub fn query(&self, iql: &str) -> Result<QueryResult> {
        self.run(&QueryRequest::new(iql)).map(|r| r.result)
    }

    /// Like [`Pdsms::run`] with a budgeted request: the query's
    /// wall-clock deadline also caps its admission-queue wait, and the
    /// budget (deadline, memory/row/node caps, partial-result opt-in)
    /// bounds execution itself.
    #[deprecated(
        since = "0.2.0",
        note = "use `Pdsms::run` with `QueryRequest::new(iql).budget(budget)`"
    )]
    pub fn query_budgeted(&self, iql: &str, budget: QueryBudget) -> Result<QueryResult> {
        self.run(&QueryRequest::new(iql).budget(budget))
            .map(|r| r.result)
    }

    /// Renders the execution plan of a query — under the system's
    /// configured expansion strategy, so EXPLAIN always matches what
    /// [`Pdsms::run`] would run.
    pub fn explain(&self, iql: &str) -> Result<String> {
        self.query_processor().explain(iql)
    }

    /// Executes a query and returns its result *together with* the
    /// rendered plan. The plan is built exactly once; the executor runs
    /// it and the renderer prints it — the two cannot diverge.
    #[deprecated(
        since = "0.2.0",
        note = "use `Pdsms::run` with `QueryRequest::new(iql).explain()`"
    )]
    pub fn query_explained(&self, iql: &str) -> Result<(QueryResult, String)> {
        let response = self.run(&QueryRequest::new(iql).explain())?;
        let plan = response.explain.unwrap_or_default();
        Ok((response.result, plan))
    }
}

impl Default for Pdsms {
    fn default() -> Self {
        Pdsms::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_email::message::{Attachment, EmailMessage};
    use idm_email::ImapServer;
    use idm_vfs::{NodeId, VirtualFs};

    fn t() -> Timestamp {
        Timestamp::from_ymd(2005, 6, 1).unwrap()
    }

    /// End-to-end: Example 1 from the paper — a query bridging the
    /// inside-outside file boundary.
    #[test]
    fn example_1_inside_outside_files() {
        let fs = Arc::new(VirtualFs::new(t()));
        let pim = fs.mkdir_p("/Projects/PIM", t()).unwrap();
        fs.create_file(
            pim,
            "vldb2006.tex",
            "\\documentclass{vldb}\n\\section{Introduction}\nDataspaces by Mike Franklin.\n\\section{Related Work}\nOther systems.",
            t(),
        )
        .unwrap();
        let olap = fs.mkdir_p("/Projects/OLAP", t()).unwrap();
        fs.create_file(
            olap,
            "olap.tex",
            "\\section{Introduction}\nNo Franklin here.",
            t(),
        )
        .unwrap();

        let mut system = Pdsms::new();
        system.register_source(Arc::new(FsPlugin::new(Arc::clone(&fs), NodeId::ROOT)));
        let stats = system.index_all().unwrap();
        assert_eq!(stats.len(), 1);
        assert!(stats[0].derived_latex > 0, "LaTeX converter ran");

        // Query 1: LaTeX Introduction sections in project PIM containing
        // 'Mike Franklin'.
        let result = system
            .run(&QueryRequest::new(
                r#"//PIM//Introduction[class="latex_section" and "Mike Franklin"]"#,
            ))
            .unwrap()
            .result;
        assert_eq!(result.rows.len(), 1);

        // Without the PIM constraint both Introductions match the name.
        let result = system
            .run(&QueryRequest::new(
                r#"//Introduction[class="latex_section"]"#,
            ))
            .unwrap()
            .result;
        assert_eq!(result.rows.len(), 2);
    }

    /// End-to-end: Example 2 — files versus email attachments.
    #[test]
    fn example_2_files_vs_attachments() {
        let fs = Arc::new(VirtualFs::new(t()));
        let olap_dir = fs.mkdir_p("/Projects/OLAP", t()).unwrap();
        fs.create_file(
            olap_dir,
            "eval.tex",
            "\\section{Evaluation}\n\\begin{figure}\\caption{Indexing Time per source}\\label{fig:a}\\end{figure}",
            t(),
        )
        .unwrap();

        let server = Arc::new(ImapServer::in_process());
        let olap_mbox = server.create_mailbox(server.inbox(), "OLAP").unwrap();
        server
            .append(
                olap_mbox,
                &EmailMessage {
                    subject: "figures".into(),
                    from: "a@b".into(),
                    to: "c@d".into(),
                    date: t(),
                    body: "see attachment".into(),
                    attachments: vec![Attachment {
                        filename: "more.tex".into(),
                        content: "\\begin{figure}\\caption{Indexing Time again}\\label{fig:b}\\end{figure}".into(),
                    }],
                },
            )
            .unwrap();

        let mut system = Pdsms::new();
        system.register_source(Arc::new(FsPlugin::new(Arc::clone(&fs), NodeId::ROOT)));
        system.register_source(Arc::new(ImapPlugin::new(Arc::clone(&server))));
        system.index_all().unwrap();

        // Query 2: documents pertaining to project OLAP with a figure
        // whose label (caption) contains 'Indexing Time' — matches one
        // figure on disk AND one inside an email attachment.
        let result = system
            .run(&QueryRequest::new(
                r#"//OLAP//*[class="figure" and "Indexing Time"]"#,
            ))
            .unwrap()
            .result;
        assert_eq!(result.rows.len(), 2, "boundary between subsystems gone");
    }

    #[test]
    fn explain_renders_plans() {
        let system = Pdsms::new();
        let plan = system
            .explain(r#"//PIM//Introduction["Mike Franklin"]"#)
            .unwrap();
        assert!(plan.contains("Forward expansion"));
    }

    #[test]
    fn explain_uses_the_configured_strategy() {
        // Regression: explain used to hardcode forward expansion, so a
        // backward-configured system rendered plans it would never run.
        let mut system = Pdsms::new();
        system.set_expansion(idm_query::ExpansionStrategy::Backward);
        let plan = system
            .explain(r#"//PIM//Introduction["Mike Franklin"]"#)
            .unwrap();
        assert!(plan.contains("Backward expansion"), "{plan}");
        assert!(!plan.contains("Forward expansion"), "{plan}");
    }

    #[test]
    fn query_explained_runs_the_rendered_plan() {
        let fs = Arc::new(VirtualFs::new(t()));
        let dir = fs.mkdir_p("/docs", t()).unwrap();
        fs.create_file(dir, "a.txt", "some database notes", t())
            .unwrap();
        let mut system = Pdsms::new();
        system.register_source(Arc::new(FsPlugin::new(fs, NodeId::ROOT)));
        system.index_all().unwrap();
        let response = system
            .run(&QueryRequest::new(r#"//docs//*["database"]"#).explain())
            .unwrap();
        let (result, plan) = (response.result, response.explain.unwrap());
        assert_eq!(result.rows.len(), 1);
        // The rendered operators are the executed operators.
        assert!(plan.contains("Relate"), "{plan}");
        assert_eq!(result.stats.ops.relates, 1);
        assert_eq!(result.stats.ops.index_accesses, 2);
        assert_eq!(
            plan.matches("IndexAccess").count(),
            result.stats.ops.index_accesses
        );
    }
}
