//! Admission control for the query path: a concurrency gate with a
//! bounded wait queue and queue-deadline shedding.
//!
//! Per-query budgets ([`idm_query::QueryBudget`]) bound what one query
//! may consume; this module bounds how many consume at once. The
//! [`AdmissionGate`] generalizes the per-source `SourceGuard`s of the
//! fault layer to the whole read path: at most `max_concurrent` queries
//! run, at most `max_queued` wait, and a waiter that outlives the queue
//! deadline (or its own query deadline, whichever is sooner) is shed
//! with a structured error instead of stalling its session.
//!
//! The two overload outcomes are deliberately distinguishable — an
//! operator tuning a deployment needs to tell "the queue was full"
//! (shed; raise capacity or lower load) from "the queue moved too
//! slowly" (deadline exceeded while queued; running queries are too
//! slow):
//!
//! - queue full → [`BudgetKind::Concurrency`], `shed` counter;
//! - queue wait expired → [`BudgetKind::QueueWait`],
//!   `deadline_exceeded` counter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use idm_core::prelude::*;
use parking_lot::{Condvar, Mutex};

/// Admission-gate limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Queries allowed to run concurrently.
    pub max_concurrent: usize,
    /// Queries allowed to wait for a slot before new arrivals are shed.
    pub max_queued: usize,
    /// How long a queued query may wait for a slot. A query carrying
    /// its own wall-clock deadline waits for `min(queue_deadline,
    /// query deadline)` — there is no point holding a queue slot past
    /// the moment the query could no longer finish anyway.
    pub queue_deadline: Duration,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            max_concurrent: 4,
            max_queued: 16,
            queue_deadline: Duration::from_millis(100),
        }
    }
}

/// Point-in-time admission counters (monotonic except `running` and
/// `queued`, which are gauges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionSnapshot {
    /// Queries granted a slot (immediately or after queueing).
    pub admitted: u64,
    /// Queries rejected because the wait queue was full.
    pub shed: u64,
    /// Queries that expired while queued (queue or query deadline).
    pub deadline_exceeded: u64,
    /// Admitted queries whose permit has been released.
    pub completed: u64,
    /// Queries currently holding a slot.
    pub running: usize,
    /// Queries currently waiting for a slot.
    pub queued: usize,
}

#[derive(Debug, Default)]
struct GateState {
    running: usize,
    queued: usize,
}

/// A concurrency semaphore with a bounded, deadline-shedding wait queue.
#[derive(Debug)]
pub struct AdmissionGate {
    config: GovernorConfig,
    state: Mutex<GateState>,
    slot_freed: Condvar,
    admitted: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    completed: AtomicU64,
}

impl AdmissionGate {
    /// A gate enforcing `config`.
    pub fn new(config: GovernorConfig) -> Self {
        AdmissionGate {
            config,
            state: Mutex::new(GateState::default()),
            slot_freed: Condvar::new(),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        }
    }

    /// The configured limits.
    pub fn config(&self) -> GovernorConfig {
        self.config
    }

    /// Current counters.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        let state = self.state.lock();
        AdmissionSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            running: state.running,
            queued: state.queued,
        }
    }

    /// Requests a slot, blocking in the bounded queue when all are
    /// taken. `query_deadline` is the query's own wall-clock budget, if
    /// any — waiting is capped at the sooner of it and the configured
    /// queue deadline. Returns a RAII permit; dropping it frees the
    /// slot and wakes one waiter.
    pub fn admit(&self, query_deadline: Option<Duration>) -> Result<AdmissionPermit<'_>> {
        let mut state = self.state.lock();
        if state.running < self.config.max_concurrent {
            state.running += 1;
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(AdmissionPermit { gate: self });
        }
        if state.queued >= self.config.max_queued {
            let waiting = state.queued + state.running;
            drop(state);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(IdmError::resource_exhausted(
                BudgetKind::Concurrency,
                waiting as u64,
                self.config.max_concurrent as u64,
                "admission",
            ));
        }
        state.queued += 1;
        let started = Instant::now();
        let max_wait = match query_deadline {
            Some(d) => d.min(self.config.queue_deadline),
            None => self.config.queue_deadline,
        };
        let wait_until = started + max_wait;
        while state.running >= self.config.max_concurrent {
            if self
                .slot_freed
                .wait_until(&mut state, wait_until)
                .timed_out()
            {
                state.queued -= 1;
                drop(state);
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                return Err(IdmError::resource_exhausted(
                    BudgetKind::QueueWait,
                    started.elapsed().as_millis() as u64,
                    max_wait.as_millis() as u64,
                    "admission-queue",
                ));
            }
        }
        state.queued -= 1;
        state.running += 1;
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(AdmissionPermit { gate: self })
    }

    fn release(&self) {
        let mut state = self.state.lock();
        state.running = state.running.saturating_sub(1);
        drop(state);
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.slot_freed.notify_one();
    }
}

/// Proof of admission. Holds one concurrency slot; dropping it (on any
/// path out of the query, including unwinds) frees the slot and wakes a
/// waiter.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn gate(max_concurrent: usize, max_queued: usize, queue_ms: u64) -> Arc<AdmissionGate> {
        Arc::new(AdmissionGate::new(GovernorConfig {
            max_concurrent,
            max_queued,
            queue_deadline: Duration::from_millis(queue_ms),
        }))
    }

    #[test]
    fn admits_up_to_the_concurrency_limit() {
        let gate = gate(2, 0, 10);
        let a = gate.admit(None).unwrap();
        let _b = gate.admit(None).unwrap();
        // Queue capacity 0: the third arrival is shed immediately.
        let err = gate.admit(None).unwrap_err();
        assert_eq!(err.budget_kind(), Some(BudgetKind::Concurrency));
        assert_eq!(gate.snapshot().shed, 1);
        // Releasing a slot lets a new arrival in.
        drop(a);
        let _c = gate.admit(None).unwrap();
        let snap = gate.snapshot();
        assert_eq!(snap.admitted, 3);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.running, 2);
    }

    #[test]
    fn queued_waiter_gets_the_freed_slot() {
        let gate = gate(1, 4, 5_000);
        let permit = gate.admit(None).unwrap();
        let gate2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || gate2.admit(None).map(drop));
        // Give the waiter time to enter the queue, then free the slot.
        while gate.snapshot().queued == 0 {
            std::thread::yield_now();
        }
        drop(permit);
        waiter.join().unwrap().unwrap();
        let snap = gate.snapshot();
        assert_eq!(snap.admitted, 2);
        assert_eq!(snap.deadline_exceeded, 0);
    }

    #[test]
    fn queue_deadline_sheds_with_distinct_counter() {
        let gate = gate(1, 4, 10);
        let _permit = gate.admit(None).unwrap();
        let err = gate.admit(None).unwrap_err();
        assert_eq!(err.budget_kind(), Some(BudgetKind::QueueWait));
        let snap = gate.snapshot();
        assert_eq!(snap.deadline_exceeded, 1);
        assert_eq!(snap.shed, 0, "queue-wait expiry is not a shed");
        assert_eq!(snap.queued, 0, "expired waiter left the queue");
    }

    #[test]
    fn query_deadline_caps_the_queue_wait() {
        let gate = gate(1, 4, 60_000);
        let _permit = gate.admit(None).unwrap();
        // The query's own 10ms deadline beats the 60s queue deadline.
        let started = Instant::now();
        let err = gate.admit(Some(Duration::from_millis(10))).unwrap_err();
        assert_eq!(err.budget_kind(), Some(BudgetKind::QueueWait));
        assert!(started.elapsed() < Duration::from_millis(1_000));
    }

    #[test]
    fn oversubscription_sheds_but_never_hangs() {
        // 4x the concurrency limit: every admitted query completes,
        // every other query gets a structured error, nothing panics or
        // deadlocks.
        let gate = gate(2, 2, 20);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || match gate.admit(None) {
                    Ok(_permit) => {
                        std::thread::sleep(Duration::from_millis(30));
                        Ok(())
                    }
                    Err(e) => Err(e),
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let snap = gate.snapshot();
        let ok = results.iter().filter(|r| r.is_ok()).count() as u64;
        let rejected: Vec<_> = results.iter().filter_map(|r| r.as_ref().err()).collect();
        assert_eq!(ok, snap.admitted);
        assert_eq!(ok, snap.completed, "every admitted query completed");
        assert_eq!(
            rejected.len() as u64,
            snap.shed + snap.deadline_exceeded,
            "every rejection is counted exactly once"
        );
        for err in rejected {
            assert!(matches!(
                err.budget_kind(),
                Some(BudgetKind::Concurrency) | Some(BudgetKind::QueueWait)
            ));
        }
        assert_eq!(snap.running, 0);
        assert_eq!(snap.queued, 0);
    }
}
