//! The Synchronization Manager (Section 5.2, part 4).
//!
//! Observes registered data sources for updates. Where the source
//! supports notification events (our [`VirtualFs`] does, standing in
//! for the paper's Mac OS X file events), the manager subscribes and
//! applies updates immediately at the next sync round; for updates done
//! bypassing the RVM layer it also supports a full polling pass that
//! diffs the source against the catalog.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::Receiver;
use idm_core::fault::{FaultStats, SourceGuard};
use idm_core::prelude::*;
use idm_index::IndexBundle;
use idm_vfs::{FsEvent, NodeId, NodeKind, VirtualFs};
use parking_lot::Mutex;

use crate::converter::ConverterRegistry;
use crate::source::{FsPlugin, ImapPlugin};

/// What one sync round did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Views created (base + derived).
    pub created: usize,
    /// Base views re-indexed after modification.
    pub modified: usize,
    /// Views removed (base + derived).
    pub removed: usize,
    /// Substrate calls retried during the round (guarded rounds only).
    pub retries: u64,
    /// Circuit breakers tripped during the round.
    pub breaker_trips: u64,
    /// Degraded reads answered from stale last-known-good data.
    pub stale_served: u64,
    /// Sources whose sync failed after retries (or whose breaker was
    /// open) this round; their pending events stay queued and the round
    /// continued over the healthy sources.
    pub quarantined: Vec<String>,
}

impl SyncReport {
    /// Folds another source's round results into this one.
    pub fn absorb(&mut self, other: SyncReport) {
        self.created += other.created;
        self.modified += other.modified;
        self.removed += other.removed;
        self.retries += other.retries;
        self.breaker_trips += other.breaker_trips;
        self.stale_served += other.stale_served;
        self.quarantined.extend(other.quarantined);
    }
}

/// A synchronization manager for one filesystem source.
pub struct SynchronizationManager {
    store: Arc<ViewStore>,
    indexes: Arc<IndexBundle>,
    fs: Arc<VirtualFs>,
    plugin: Arc<FsPlugin>,
    events: Receiver<FsEvent>,
    converters: ConverterRegistry,
    /// Path → base view, maintained across events (needed because a
    /// removal notification arrives after the node is gone).
    paths: Mutex<HashMap<String, Vid>>,
}

impl SynchronizationManager {
    /// Attaches to a filesystem plugin **after** its initial ingestion,
    /// seeding the path map from the plugin's node mapping.
    pub fn attach(
        plugin: Arc<FsPlugin>,
        store: Arc<ViewStore>,
        indexes: Arc<IndexBundle>,
    ) -> Result<Self> {
        let fs = Arc::clone(plugin.fs());
        let events = fs.subscribe();
        let mut paths = HashMap::new();
        for (node, _depth) in fs.walk(NodeId::ROOT)? {
            if let Some(vid) = plugin.view_of(node) {
                paths.insert(fs.path_of(node)?, vid);
            }
        }
        Ok(SynchronizationManager {
            store,
            indexes,
            fs,
            plugin,
            events,
            converters: ConverterRegistry::with_defaults(),
            paths: Mutex::new(paths),
        })
    }

    /// Processes all pending notifications; returns what changed.
    pub fn sync_round(&self) -> Result<SyncReport> {
        let mut report = SyncReport::default();
        while let Ok(event) = self.events.try_recv() {
            match event {
                FsEvent::Created(path) => report.created += self.on_created(&path)?,
                FsEvent::Modified(path) => report.modified += self.on_modified(&path)?,
                FsEvent::Removed(path) => report.removed += self.on_removed(&path)?,
            }
        }
        Ok(report)
    }

    /// Full polling pass: finds filesystem nodes that bypassed
    /// notifications (e.g. created before attachment) and ingests them.
    pub fn poll_filesystem(&self) -> Result<SyncReport> {
        let mut report = SyncReport::default();
        for (node, _depth) in self.fs.walk(NodeId::ROOT)? {
            let path = self.fs.path_of(node)?;
            if !self.paths.lock().contains_key(&path) {
                report.created += self.create_node(node, &path)?;
            }
        }
        Ok(report)
    }

    fn parent_view(&self, path: &str) -> Option<Vid> {
        let dir = match path.rsplit_once('/') {
            Some(("", _)) => "/".to_owned(),
            Some((dir, _)) => dir.to_owned(),
            None => return None,
        };
        self.paths.lock().get(&dir).copied()
    }

    fn on_created(&self, path: &str) -> Result<usize> {
        if self.paths.lock().contains_key(path) {
            return Ok(0);
        }
        let node = self.fs.resolve(path)?;
        self.create_node(node, path)
    }

    fn create_node(&self, node: NodeId, path: &str) -> Result<usize> {
        let name = self.fs.name(node)?;
        let meta = self.fs.metadata(node)?;
        let kind = self.fs.kind(node)?;

        let vid = match kind {
            NodeKind::File => {
                let fs = Arc::clone(&self.fs);
                let provider = Arc::new(move || fs.read_file(node));
                self.store
                    .build(name)
                    .tuple(meta.to_tuple())
                    .content(Content::lazy(provider))
                    .class_named("file")
                    .insert()
            }
            NodeKind::Folder => self
                .store
                .build(name)
                .tuple(meta.to_tuple())
                .class_named("folder")
                .insert(),
            NodeKind::FolderLink => {
                let target_vid = self
                    .fs
                    .link_target(node)?
                    .and_then(|t| self.plugin.view_of(t));
                let mut builder = self
                    .store
                    .build(name)
                    .tuple(meta.to_tuple())
                    .class_named("folderlink");
                if let Some(target) = target_vid {
                    builder = builder.children(vec![target]);
                }
                builder.insert()
            }
        };

        // Wire into the parent folder's group.
        if let Some(parent) = self.parent_view(path) {
            self.store.add_group_member(parent, vid, false)?;
            self.indexes
                .group
                .index(parent, &self.store.group(parent)?.finite_members());
        }
        self.paths.lock().insert(path.to_owned(), vid);
        self.plugin.record_mapping(node, vid);

        // Convert + index the new subtree.
        let mut created = 1;
        self.converters.convert_view(&self.store, vid)?;
        let mut subtree = vec![vid];
        subtree.extend(idm_core::graph::descendants(&self.store, vid, usize::MAX)?);
        subtree.sort();
        subtree.dedup();
        for &member in &subtree {
            if !self.indexes.catalog.contains(member) {
                self.indexes.index_view(&self.store, member, "filesystem")?;
                if member != vid {
                    created += 1;
                }
            }
        }
        Ok(created)
    }

    fn on_modified(&self, path: &str) -> Result<usize> {
        let Some(vid) = self.paths.lock().get(path).copied() else {
            return Ok(0);
        };
        let node = self.fs.resolve(path)?;
        let meta = self.fs.metadata(node)?;

        // Drop the stale derived subgraph.
        self.remove_derived_subtree(vid)?;

        // Fresh tuple and content (the old lazy handle caches old bytes).
        self.store.set_tuple(vid, Some(meta.to_tuple()))?;
        if self.fs.kind(node)? == NodeKind::File {
            let fs = Arc::clone(&self.fs);
            let provider = Arc::new(move || fs.read_file(node));
            self.store.set_content(vid, Content::lazy(provider))?;
        }
        self.store.set_group(vid, Group::Empty)?;
        if let Some(class) = self.store.classes().lookup("file") {
            self.store.set_class(vid, Some(class))?;
        }

        // Reconvert and reindex.
        self.converters.convert_view(&self.store, vid)?;
        self.indexes.remove_view(vid);
        self.indexes.index_view(&self.store, vid, "filesystem")?;
        for member in idm_core::graph::descendants(&self.store, vid, usize::MAX)? {
            if !self.indexes.catalog.contains(member) {
                self.indexes.index_view(&self.store, member, "filesystem")?;
            }
        }
        Ok(1)
    }

    fn on_removed(&self, path: &str) -> Result<usize> {
        let vid = {
            let mut paths = self.paths.lock();
            let Some(vid) = paths.remove(path) else {
                return Ok(0);
            };
            // Sub-paths disappear with their parent.
            let prefix = format!("{path}/");
            paths.retain(|p, _| !p.starts_with(&prefix));
            vid
        };
        let removed = self.remove_derived_subtree(vid)? + 1;
        // Detach from the parent's group.
        if let Some(parent) = self.parent_view(path) {
            if let Ok(snapshot) = self.store.group(parent) {
                let members: Vec<Vid> = snapshot
                    .finite_members()
                    .into_iter()
                    .filter(|m| *m != vid)
                    .collect();
                self.store
                    .set_group(parent, Group::of_set(members.clone()))?;
                self.indexes.group.index(parent, &members);
            }
        }
        self.indexes.remove_view(vid);
        if self.store.contains(vid) {
            self.store.remove(vid)?;
        }
        Ok(removed)
    }

    /// Removes every view derived from `vid`'s content (its descendant
    /// subgraph), from store and indexes. Returns how many were removed.
    fn remove_derived_subtree(&self, vid: Vid) -> Result<usize> {
        let mut removed = 0;
        let base: Vec<Vid> = self.paths.lock().values().copied().collect();
        for member in idm_core::graph::descendants(&self.store, vid, usize::MAX)? {
            // Never remove other *base* views reachable via folder links.
            if member == vid || base.contains(&member) {
                continue;
            }
            self.indexes.remove_view(member);
            if self.store.contains(member) {
                self.store.remove(member)?;
            }
            removed += 1;
        }
        Ok(removed)
    }
}

/// A synchronization manager for one IMAP source: subscribes to the
/// server's delivery/deletion notifications and keeps the mailbox
/// views, converted attachment subgraphs and indexes current.
pub struct ImapSynchronizationManager {
    store: Arc<ViewStore>,
    indexes: Arc<IndexBundle>,
    plugin: Arc<ImapPlugin>,
    events: Receiver<idm_email::imap::MailEvent>,
    converters: ConverterRegistry,
}

impl ImapSynchronizationManager {
    /// Attaches to an IMAP plugin **after** its initial ingestion.
    pub fn attach(
        plugin: Arc<ImapPlugin>,
        store: Arc<ViewStore>,
        indexes: Arc<IndexBundle>,
    ) -> Self {
        let events = plugin.server().subscribe();
        ImapSynchronizationManager {
            store,
            indexes,
            plugin,
            events,
            converters: ConverterRegistry::with_defaults(),
        }
    }

    /// Processes all pending mail notifications.
    pub fn sync_round(&self) -> Result<SyncReport> {
        use idm_email::imap::MailEvent;
        let mut report = SyncReport::default();
        while let Ok(event) = self.events.try_recv() {
            match event {
                MailEvent::Delivered(mailbox, uid) => {
                    report.created += self.on_delivered(mailbox, uid)?;
                }
                MailEvent::Deleted(_mailbox, uid) => {
                    report.removed += self.on_deleted(uid)?;
                }
            }
        }
        Ok(report)
    }

    fn on_delivered(&self, mailbox: idm_email::MailboxId, uid: idm_email::Uid) -> Result<usize> {
        if self.plugin.message_view(uid).is_some() {
            return Ok(0); // already known (e.g. ingested)
        }
        let message = self.plugin.server().fetch(uid)?;
        let vid = idm_email::convert::message_to_views(&self.store, &message)?;
        self.plugin.record_message(uid, vid);

        // Wire into the mailbox folder view, if the folder is known.
        if let Some(folder) = self.plugin.folder_view(mailbox) {
            self.store.add_group_member(folder, vid, false)?;
            self.indexes
                .group
                .index(folder, &self.store.group(folder)?.finite_members());
        }

        // Convert structured attachments, then index the whole subtree.
        let mut created = 0;
        let attachments = self.store.group(vid)?.finite_members();
        for attachment in attachments {
            self.converters.convert_view(&self.store, attachment)?;
        }
        let mut subtree = vec![vid];
        subtree.extend(idm_core::graph::descendants(&self.store, vid, usize::MAX)?);
        subtree.sort();
        subtree.dedup();
        for member in subtree {
            if !self.indexes.catalog.contains(member) {
                self.indexes.index_view(&self.store, member, "imap")?;
                created += 1;
            }
        }
        Ok(created)
    }

    fn on_deleted(&self, uid: idm_email::Uid) -> Result<usize> {
        let Some(vid) = self.plugin.forget_message(uid) else {
            return Ok(0);
        };
        let mut removed = 0;
        // Remove the message and its derived subtree (attachments and
        // their converted views belong exclusively to this message).
        let mut subtree = vec![vid];
        subtree.extend(idm_core::graph::descendants(&self.store, vid, usize::MAX)?);
        subtree.sort();
        subtree.dedup();
        for member in subtree {
            self.indexes.remove_view(member);
            if self.store.contains(member) {
                self.store.remove(member)?;
                removed += 1;
            }
        }
        // Detach the dangling reference from the parent folder.
        for folder_vid in self.indexes.catalog.by_class("mailfolder") {
            let members = self.store.group(folder_vid)?.finite_members();
            if members.contains(&vid) {
                let kept: Vec<Vid> = members.into_iter().filter(|m| *m != vid).collect();
                self.store
                    .set_group(folder_vid, Group::of_set(kept.clone()))?;
                self.indexes.group.index(folder_vid, &kept);
            }
        }
        Ok(removed)
    }
}

/// A per-source synchronization driver, as seen by the coordinator:
/// anything that can run one sync round for one named source.
pub trait SyncDriver: Send + Sync {
    /// The source name used in reports (`"filesystem"`, `"imap"`, …).
    fn source_name(&self) -> &str;

    /// Processes the source's pending updates.
    fn drive_round(&self) -> Result<SyncReport>;
}

impl SyncDriver for SynchronizationManager {
    fn source_name(&self) -> &str {
        "filesystem"
    }

    fn drive_round(&self) -> Result<SyncReport> {
        self.sync_round()
    }
}

impl SyncDriver for ImapSynchronizationManager {
    fn source_name(&self) -> &str {
        "imap"
    }

    fn drive_round(&self) -> Result<SyncReport> {
        self.sync_round()
    }
}

/// Coordinates sync rounds across every attached source with per-source
/// fault isolation: each driver runs under its own retry/breaker guard,
/// and a source that still fails is *quarantined* for the round — its
/// name is reported, its events stay queued for the next round — while
/// the remaining sources sync normally.
pub struct SyncCoordinator {
    stats: Arc<FaultStats>,
    sources: Vec<(Arc<dyn SyncDriver>, Arc<SourceGuard>)>,
}

impl SyncCoordinator {
    /// An empty coordinator with its own fault counters.
    pub fn new() -> Self {
        SyncCoordinator::with_stats(Arc::new(FaultStats::new()))
    }

    /// A coordinator sharing an existing counter handle (typically the
    /// RVM's, so ingestion and sync report into one place).
    pub fn with_stats(stats: Arc<FaultStats>) -> Self {
        SyncCoordinator {
            stats,
            sources: Vec::new(),
        }
    }

    /// Attaches a driver under a default guard (3 retries, 5-failure
    /// breaker).
    pub fn attach(&mut self, driver: Arc<dyn SyncDriver>) {
        let guard = Arc::new(SourceGuard::with_defaults(
            driver.source_name(),
            Arc::clone(&self.stats),
        ));
        self.sources.push((driver, guard));
    }

    /// Attaches a driver under an explicit guard (custom retry policy or
    /// breaker; the guard should share this coordinator's stats handle
    /// for the report counters to add up).
    pub fn attach_guarded(&mut self, driver: Arc<dyn SyncDriver>, guard: SourceGuard) {
        self.sources.push((driver, Arc::new(guard)));
    }

    /// The shared fault counters.
    pub fn fault_stats(&self) -> &Arc<FaultStats> {
        &self.stats
    }

    /// The attached source names, in attachment order.
    pub fn source_names(&self) -> Vec<&str> {
        self.sources.iter().map(|(d, _)| d.source_name()).collect()
    }

    /// The guard (and thus breaker state) of one attached source.
    pub fn guard_of(&self, source: &str) -> Option<&Arc<SourceGuard>> {
        self.sources
            .iter()
            .find(|(d, _)| d.source_name() == source)
            .map(|(_, g)| g)
    }

    /// Runs one round over every source. Never fails as a whole: a
    /// source whose round errors after retries (or is rejected by its
    /// open breaker) lands in [`SyncReport::quarantined`] and the round
    /// moves on — a flaky mail server degrades one source, not the
    /// dataspace.
    pub fn sync_round(&self) -> SyncReport {
        let mut report = SyncReport::default();
        for (driver, guard) in &self.sources {
            let before = self.stats.snapshot();
            let outcome = guard.call(|| driver.drive_round());
            let delta = self.stats.snapshot().since(before);
            report.retries += delta.retries;
            report.breaker_trips += delta.breaker_trips;
            report.stale_served += delta.stale_served;
            match outcome {
                Ok(source_report) => report.absorb(source_report),
                Err(_) => report.quarantined.push(driver.source_name().to_owned()),
            }
        }
        report
    }
}

impl Default for SyncCoordinator {
    fn default() -> Self {
        SyncCoordinator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rvm::ResourceViewManager;
    use idm_query::QueryProcessor;

    fn t() -> Timestamp {
        Timestamp::from_ymd(2005, 6, 1).unwrap()
    }

    struct World {
        fs: Arc<VirtualFs>,
        store: Arc<ViewStore>,
        indexes: Arc<IndexBundle>,
        sync: SynchronizationManager,
    }

    fn world() -> World {
        let fs = Arc::new(VirtualFs::new(t()));
        let dir = fs.mkdir_p("/papers", t()).unwrap();
        fs.create_file(dir, "a.tex", "\\section{Alpha}\nalpha text", t())
            .unwrap();

        let store = Arc::new(ViewStore::new());
        let indexes = Arc::new(IndexBundle::new());
        let rvm = ResourceViewManager::new(Arc::clone(&store), Arc::clone(&indexes));
        let plugin = Arc::new(FsPlugin::new(Arc::clone(&fs), NodeId::ROOT));
        rvm.register_source(Arc::clone(&plugin) as Arc<dyn crate::source::DataSourcePlugin>);
        rvm.ingest_all().unwrap();

        let sync = SynchronizationManager::attach(plugin, Arc::clone(&store), Arc::clone(&indexes))
            .unwrap();
        World {
            fs,
            store,
            indexes,
            sync,
        }
    }

    fn query(w: &World, iql: &str) -> usize {
        QueryProcessor::new(Arc::clone(&w.store), Arc::clone(&w.indexes))
            .execute(iql)
            .unwrap()
            .rows
            .len()
    }

    #[test]
    fn new_file_becomes_queryable_after_sync() {
        let w = world();
        assert_eq!(query(&w, r#""bravo""#), 0);
        let dir = w.fs.resolve("/papers").unwrap();
        w.fs.create_file(dir, "b.tex", "\\section{Bravo}\nbravo text", t())
            .unwrap();
        let report = w.sync.sync_round().unwrap();
        assert!(report.created >= 3, "file + derived views: {report:?}");
        // The raw file bytes, the section's region content and the text
        // view all contain the word.
        assert_eq!(query(&w, r#""bravo""#), 3, "file + section + text");
        assert_eq!(query(&w, r#"//papers//Bravo[class="latex_section"]"#), 1);
    }

    #[test]
    fn modified_file_reindexes_and_drops_stale_views() {
        let w = world();
        assert_eq!(query(&w, r#"//papers//Alpha"#), 1);
        let file = w.fs.resolve("/papers/a.tex").unwrap();
        w.fs.write_file(file, "\\section{Omega}\nomega text", t().plus_days(1))
            .unwrap();
        let report = w.sync.sync_round().unwrap();
        assert_eq!(report.modified, 1);
        assert_eq!(query(&w, r#"//papers//Alpha"#), 0, "stale section gone");
        assert_eq!(query(&w, r#"//papers//Omega"#), 1);
        assert_eq!(query(&w, r#""alpha""#), 0);
    }

    #[test]
    fn removed_file_disappears_everywhere() {
        let w = world();
        let file = w.fs.resolve("/papers/a.tex").unwrap();
        w.fs.remove(file).unwrap();
        let report = w.sync.sync_round().unwrap();
        assert!(report.removed >= 2, "{report:?}");
        assert_eq!(query(&w, r#"//papers//Alpha"#), 0);
        assert_eq!(query(&w, r#"//a.tex"#), 0);
        // The folder's group no longer references it.
        let papers = w.indexes.name.exact("papers")[0];
        assert!(w.indexes.group.children(papers).is_empty());
    }

    #[test]
    fn polling_catches_bypassed_updates() {
        let w = world();
        // Simulate a change that raced past the subscription by draining
        // events without processing.
        let dir = w.fs.resolve("/papers").unwrap();
        w.fs.create_file(dir, "quiet.tex", "\\section{Quiet}\nquiet text", t())
            .unwrap();
        while w.sync.events.try_recv().is_ok() {}
        assert_eq!(query(&w, r#""quiet""#), 0);

        let report = w.sync.poll_filesystem().unwrap();
        assert!(report.created >= 1);
        assert_eq!(query(&w, r#"//papers//Quiet"#), 1);
    }

    #[test]
    fn imap_sync_delivers_and_deletes() {
        use crate::source::{DataSourcePlugin, ImapPlugin};
        use idm_email::message::{Attachment, EmailMessage};
        use idm_email::ImapServer;

        let server = Arc::new(ImapServer::in_process());
        let olap = server.create_mailbox(server.inbox(), "OLAP").unwrap();
        server
            .append(
                olap,
                &EmailMessage {
                    subject: "seed".into(),
                    date: t(),
                    ..EmailMessage::default()
                },
            )
            .unwrap();

        let store = Arc::new(ViewStore::new());
        let indexes = Arc::new(IndexBundle::new());
        let rvm = ResourceViewManager::new(Arc::clone(&store), Arc::clone(&indexes));
        let plugin = Arc::new(ImapPlugin::new(Arc::clone(&server)));
        rvm.register_source(Arc::clone(&plugin) as Arc<dyn DataSourcePlugin>);
        rvm.ingest_all().unwrap();

        let sync = ImapSynchronizationManager::attach(
            Arc::clone(&plugin),
            Arc::clone(&store),
            Arc::clone(&indexes),
        );
        let q = |iql: &str| {
            QueryProcessor::new(Arc::clone(&store), Arc::clone(&indexes))
                .execute(iql)
                .unwrap()
                .rows
                .len()
        };

        // A new message with a structured attachment arrives.
        let uid = server
            .append(
                olap,
                &EmailMessage {
                    subject: "fresh figures".into(),
                    date: t(),
                    body: "see the attached evaluation".into(),
                    attachments: vec![Attachment {
                        filename: "eval.tex".into(),
                        content:
                            "\\begin{figure}\\caption{Indexing Time v2}\\label{f}\\end{figure}"
                                .into(),
                    }],
                    ..EmailMessage::default()
                },
            )
            .unwrap();
        let report = sync.sync_round().unwrap();
        assert!(report.created >= 3, "{report:?}");
        assert_eq!(q(r#"//OLAP//*[class="figure" and "Indexing Time"]"#), 1);
        assert_eq!(q(r#"//fresh*"#), 1);

        // Deleting it removes everything again.
        server.delete(olap, uid).unwrap();
        let report = sync.sync_round().unwrap();
        assert!(report.removed >= 2, "{report:?}");
        assert_eq!(q(r#"//OLAP//*[class="figure" and "Indexing Time"]"#), 0);
        assert_eq!(q(r#"//fresh*"#), 0);
        // The folder group no longer references the dead view.
        let folder = plugin.folder_view(olap).unwrap();
        assert_eq!(store.group(folder).unwrap().finite_members().len(), 1);
    }

    #[test]
    fn imap_sync_ignores_already_ingested_messages() {
        use crate::source::{DataSourcePlugin, ImapPlugin};
        use idm_email::message::EmailMessage;
        use idm_email::ImapServer;

        let server = Arc::new(ImapServer::in_process());
        // Subscribe BEFORE ingest so the seed delivery is also queued.
        let store = Arc::new(ViewStore::new());
        let indexes = Arc::new(IndexBundle::new());
        let plugin = Arc::new(ImapPlugin::new(Arc::clone(&server)));
        let sync = ImapSynchronizationManager::attach(
            Arc::clone(&plugin),
            Arc::clone(&store),
            Arc::clone(&indexes),
        );
        server
            .append(
                server.inbox(),
                &EmailMessage {
                    subject: "seed".into(),
                    date: t(),
                    ..EmailMessage::default()
                },
            )
            .unwrap();
        let rvm = ResourceViewManager::new(Arc::clone(&store), Arc::clone(&indexes));
        rvm.register_source(Arc::clone(&plugin) as Arc<dyn DataSourcePlugin>);
        rvm.ingest_all().unwrap();

        // The queued delivery event refers to an already-mapped message.
        let report = sync.sync_round().unwrap();
        assert_eq!(report.created, 0, "no duplicates: {report:?}");
    }

    #[test]
    fn duplicate_create_events_are_idempotent() {
        let w = world();
        let dir = w.fs.resolve("/papers").unwrap();
        w.fs.create_file(dir, "c.txt", "plain", t()).unwrap();
        w.sync.sync_round().unwrap();
        let count_before = w.indexes.catalog.len();
        // A second poll finds nothing new.
        let report = w.sync.poll_filesystem().unwrap();
        assert_eq!(report.created, 0);
        assert_eq!(w.indexes.catalog.len(), count_before);
    }
}
