//! Networks of iMeMex instances (Section 8: "we are planning to extend
//! our system to enable networks of P2P instances" — this module is
//! that extension, in-process).
//!
//! A [`Federation`] is a set of named peers, each a complete [`Pdsms`]
//! over its own dataspace. Queries fan out to every peer (iDM's single
//! model means the *same* iQL runs everywhere) and results come back
//! per-peer or merged; ranked federation merges by score, which is what
//! a multi-device personal dataspace UI would show.

use std::time::Instant;

use idm_core::prelude::*;
use idm_query::{Plan, QueryBudget, QueryRequest, RankedResult};

use crate::Pdsms;

/// A result row tagged with the peer that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedRow {
    /// The peer name.
    pub peer: String,
    /// The view id *within that peer's store*.
    pub vid: Vid,
    /// Relevance score (0 for unranked queries).
    pub score: f64,
}

/// A federated query outcome: the merged rows of every peer that
/// answered, plus the errors of the peers that did not — partial
/// results instead of an all-or-nothing federation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FederatedResult {
    /// Rows from the answering peers.
    pub rows: Vec<FederatedRow>,
    /// `(peer name, error)` for every peer whose execution failed.
    pub errors: Vec<(String, IdmError)>,
}

impl FederatedResult {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows came back.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Whether every peer answered.
    pub fn is_complete(&self) -> bool {
        self.errors.is_empty()
    }
}

/// A federation of iMeMex instances.
#[derive(Default)]
pub struct Federation {
    peers: Vec<(String, Pdsms)>,
}

impl Federation {
    /// An empty federation.
    pub fn new() -> Self {
        Federation::default()
    }

    /// Adds a peer. Names must be unique.
    pub fn add_peer(&mut self, name: impl Into<String>, system: Pdsms) -> Result<()> {
        let name = name.into();
        if self.peers.iter().any(|(n, _)| *n == name) {
            return Err(IdmError::Parse {
                detail: format!("federation: peer '{name}' already registered"),
            });
        }
        self.peers.push((name, system));
        Ok(())
    }

    /// The registered peer names.
    pub fn peer_names(&self) -> Vec<&str> {
        self.peers.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The system of one peer.
    pub fn peer(&self, name: &str) -> Option<&Pdsms> {
        self.peers.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Plans the query once, at the coordinator (the first peer): iDM's
    /// single model means the same plan runs on every peer, so the
    /// planning work — and the planner's validation — is not repeated
    /// per peer. Plan-time errors (syntax, ambiguous join bindings),
    /// which would fail identically everywhere, surface here.
    fn coordinate(&self, iql: &str) -> Result<Option<Plan>> {
        // Validate the syntax once, even with no peers to plan on.
        idm_query::parse(iql)?;
        match self.peers.first() {
            Some((_, coordinator)) => Ok(Some(coordinator.query_processor().plan_iql(iql)?)),
            None => Ok(None),
        }
    }

    /// Runs a [`QueryRequest`] on every peer; rows are tagged with
    /// their peer. This is the single federated entry point — the
    /// legacy `query*` methods are deprecated spellings of it.
    ///
    /// The plan is built once at the coordinator and executed per peer.
    /// Peers that fail to execute it (a class unknown to that peer's
    /// registry, a substrate down) contribute their error to
    /// [`FederatedResult::errors`] rather than failing the federation —
    /// availability over completeness, as in any P2P setting, but with
    /// the partiality visible to the caller.
    ///
    /// A request budget governs the *federation*: each peer runs with
    /// whatever remains of the wall-clock deadline when its turn comes,
    /// so one slow peer exhausts its own slice, lands in the error list
    /// as `ResourceExhausted`, and cannot stall the coordinator. A
    /// ranked request scores each peer's rows from the one shared plan
    /// and merges globally by score.
    pub fn run(&self, request: &QueryRequest) -> Result<FederatedResult> {
        let started = Instant::now();
        let mut result = FederatedResult::default();
        let Some(plan) = self.coordinate(request.iql())? else {
            return Ok(result);
        };
        let budget = request.requested_budget().unwrap_or(QueryBudget::none());
        for (name, system) in &self.peers {
            let mut peer_budget = budget;
            if let Some(total) = budget.deadline {
                // The remaining slice of the federation deadline; an
                // already-exhausted deadline still runs the peer (its
                // first checkpoint trips), keeping the error structured.
                peer_budget.deadline = Some(total.saturating_sub(started.elapsed()));
            }
            let mut processor = system.query_processor();
            processor.set_budget(peer_budget);
            match processor.execute_plan(&plan) {
                Ok(answer) => match request.wants_ranked() {
                    Some(weights) => {
                        for RankedResult { vid, score } in
                            processor.rank_rows(&plan, &answer.rows, weights)
                        {
                            result.rows.push(FederatedRow {
                                peer: name.clone(),
                                vid,
                                score,
                            });
                        }
                    }
                    None => {
                        for vid in answer.rows.views() {
                            result.rows.push(FederatedRow {
                                peer: name.clone(),
                                vid,
                                score: 0.0,
                            });
                        }
                    }
                },
                Err(err) => result.errors.push((name.clone(), err)),
            }
        }
        if request.wants_ranked().is_some() {
            result.rows.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.peer.cmp(&b.peer))
                    .then(a.vid.cmp(&b.vid))
            });
        }
        Ok(result)
    }

    /// Runs a query on every peer; rows are tagged with their peer.
    #[deprecated(
        since = "0.2.0",
        note = "use `Federation::run` with `QueryRequest::new(iql)`"
    )]
    pub fn query(&self, iql: &str) -> Result<FederatedResult> {
        self.run(&QueryRequest::new(iql))
    }

    /// [`Federation::run`] under a total resource budget.
    #[deprecated(
        since = "0.2.0",
        note = "use `Federation::run` with `QueryRequest::new(iql).budget(budget)`"
    )]
    pub fn query_budgeted(&self, iql: &str, budget: QueryBudget) -> Result<FederatedResult> {
        self.run(&QueryRequest::new(iql).budget(budget))
    }

    /// Runs a ranked query on every peer and merges by score (global
    /// ranking across the federation).
    #[deprecated(
        since = "0.2.0",
        note = "use `Federation::run` with `QueryRequest::new(iql).ranked()`"
    )]
    pub fn query_ranked(&self, iql: &str) -> Result<FederatedResult> {
        self.run(&QueryRequest::new(iql).ranked())
    }

    /// Per-peer result counts for a query (the P2P dashboard number).
    pub fn count_by_peer(&self, iql: &str) -> Result<Vec<(String, usize)>> {
        let Some(plan) = self.coordinate(iql)? else {
            return Ok(Vec::new());
        };
        let mut out = Vec::with_capacity(self.peers.len());
        for (name, system) in &self.peers {
            let count = system
                .query_processor()
                .execute_plan(&plan)
                .map(|r| r.rows.len())
                .unwrap_or(0);
            out.push((name.clone(), count));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FsPlugin;
    use idm_vfs::{NodeId, VirtualFs};
    use std::sync::Arc;

    fn t() -> Timestamp {
        Timestamp::from_ymd(2006, 9, 12).unwrap()
    }

    fn peer_with(doc_name: &str, body: &str) -> Pdsms {
        let fs = Arc::new(VirtualFs::new(t()));
        let dir = fs.mkdir_p("/notes", t()).unwrap();
        fs.create_file(dir, doc_name, body.to_owned(), t()).unwrap();
        let mut system = Pdsms::new();
        system.register_source(Arc::new(FsPlugin::new(fs, NodeId::ROOT)));
        system.index_all().unwrap();
        system
    }

    fn federation() -> Federation {
        let mut fed = Federation::new();
        fed.add_peer("laptop", peer_with("a.txt", "database tuning notes"))
            .unwrap();
        fed.add_peer("desktop", peer_with("b.txt", "database lectures"))
            .unwrap();
        fed.add_peer("server", peer_with("c.txt", "totally unrelated"))
            .unwrap();
        fed
    }

    #[test]
    fn queries_fan_out_and_tag_peers() {
        let fed = federation();
        let result = fed.run(&QueryRequest::new(r#""database""#)).unwrap();
        assert!(result.is_complete());
        let rows = result.rows;
        let mut peers: Vec<&str> = rows.iter().map(|r| r.peer.as_str()).collect();
        peers.sort();
        peers.dedup();
        assert_eq!(peers, vec!["desktop", "laptop"]);

        let counts = fed.count_by_peer(r#""database""#).unwrap();
        assert_eq!(
            counts,
            vec![
                ("laptop".to_owned(), 1),
                ("desktop".to_owned(), 1),
                ("server".to_owned(), 0)
            ]
        );
    }

    #[test]
    fn ranked_federation_merges_globally() {
        let mut fed = Federation::new();
        fed.add_peer("light", peer_with("x.txt", "database once"))
            .unwrap();
        fed.add_peer(
            "heavy",
            peer_with("y.txt", "database database database database"),
        )
        .unwrap();
        let result = fed
            .run(&QueryRequest::new(r#""database""#).ranked())
            .unwrap();
        assert!(result.is_complete());
        let rows = result.rows;
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].peer, "heavy", "higher TF ranks first globally");
        assert!(rows[0].score > rows[1].score);
    }

    #[test]
    fn failing_peer_yields_partial_results_with_error() {
        let fed = federation();
        // A union over join results parses but fails at evaluation, so
        // every peer errors individually — yet the federation still
        // answers (zero rows, one error per peer) instead of failing as
        // a whole.
        let result = fed
            .run(&QueryRequest::new(
                r#"union("database", join(//notes as a, //notes as b, a.name = b.name))"#,
            ))
            .unwrap();
        assert!(result.is_empty());
        assert!(!result.is_complete());
        assert_eq!(result.errors.len(), 3, "{:?}", result.errors);
        let mut peers: Vec<&str> = result.errors.iter().map(|(p, _)| p.as_str()).collect();
        peers.sort();
        assert_eq!(peers, vec!["desktop", "laptop", "server"]);
    }

    #[test]
    fn duplicate_peer_names_rejected() {
        let mut fed = Federation::new();
        fed.add_peer("a", Pdsms::new()).unwrap();
        assert!(fed.add_peer("a", Pdsms::new()).is_err());
        assert_eq!(fed.peer_names(), vec!["a"]);
        assert!(fed.peer("a").is_some());
        assert!(fed.peer("b").is_none());
    }

    #[test]
    fn parse_errors_fail_fast() {
        let fed = federation();
        assert!(fed.run(&QueryRequest::new("[size >")).is_err());
        assert!(fed.count_by_peer("[size >").is_err());
    }

    #[test]
    fn plan_time_errors_fail_fast_like_parse_errors() {
        // An ambiguous join binding is rejected by the coordinator's
        // planner before any peer runs — it would fail identically on
        // every peer.
        let fed = federation();
        let err = fed
            .run(&QueryRequest::new(
                r#"join(//notes as a, //notes as b, a.name = a.name)"#,
            ))
            .unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
    }

    #[test]
    fn exhausted_deadline_yields_partial_federation_not_a_stall() {
        use std::time::Duration;
        let fed = federation();
        // A zero deadline trips at every peer's first checkpoint: the
        // federation still answers — structured errors per peer, no
        // open-ended wait, no panic.
        let started = std::time::Instant::now();
        let result = fed
            .run(
                &QueryRequest::new(r#""database""#)
                    .budget(QueryBudget::with_deadline(Duration::ZERO)),
            )
            .unwrap();
        assert!(started.elapsed() < Duration::from_millis(200));
        assert!(result.is_empty());
        assert_eq!(result.errors.len(), 3);
        for (_, err) in &result.errors {
            assert_eq!(
                err.budget_kind(),
                Some(idm_core::error::BudgetKind::WallClock),
                "{err}"
            );
        }
        // A generous deadline changes nothing about the rows.
        let governed = fed
            .run(
                &QueryRequest::new(r#""database""#)
                    .budget(QueryBudget::with_deadline(Duration::from_secs(60))),
            )
            .unwrap();
        let free = fed.run(&QueryRequest::new(r#""database""#)).unwrap();
        assert_eq!(governed.rows, free.rows);
        assert!(governed.is_complete());
    }

    #[test]
    fn empty_federation_returns_empty() {
        let fed = Federation::new();
        let result = fed.run(&QueryRequest::new(r#""anything""#)).unwrap();
        assert!(result.is_empty());
        assert!(result.is_complete());
    }
}
