//! The Resource View Manager: drives ingestion through the Figure 5
//! pipeline — data source access, content conversion, catalog insert,
//! component indexing — timing each phase separately so the paper's
//! indexing-time breakdown can be regenerated.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use idm_core::fault::{FaultStats, SourceGuard};
use idm_core::prelude::*;
use idm_index::{ContentIndexing, IndexBundle, IndexSegment};
use parking_lot::Mutex;

use crate::converter::ConverterRegistry;
use crate::source::DataSourcePlugin;

/// Per-source ingestion statistics: the raw material for Table 2
/// (view counts), Table 3 (net input size) and Figure 5 (phase times).
#[derive(Debug, Clone, Default)]
pub struct SourceIngestStats {
    /// Data source name.
    pub source: String,
    /// Views for base items (files&folders; emails, mail folders and
    /// attachments; stream heads).
    pub base_views: usize,
    /// Views derived from XML content.
    pub derived_xml: usize,
    /// Views derived from LaTeX content.
    pub derived_latex: usize,
    /// Bytes of text handed to the content index (Table 3's net input
    /// data size).
    pub net_input_bytes: u64,
    /// Total bytes of finite content encountered (indexable or not).
    pub total_content_bytes: u64,
    /// Figure 5 phase: time obtaining data from the source (ingestion
    /// plus forcing content components from the source).
    pub data_source_access: Duration,
    /// Content2iDM conversion time (reported inside "component
    /// indexing" when reproducing Figure 5's three-way split).
    pub conversion: Duration,
    /// Figure 5 phase: registering all views in the catalog.
    pub catalog_insert: Duration,
    /// Figure 5 phase: inserting components into the index structures.
    pub component_indexing: Duration,
}

impl SourceIngestStats {
    /// Total views (base + derived).
    pub fn total_views(&self) -> usize {
        self.base_views + self.derived_xml + self.derived_latex
    }

    /// Total derived views.
    pub fn derived_views(&self) -> usize {
        self.derived_xml + self.derived_latex
    }

    /// Total indexing time across all phases.
    pub fn total_time(&self) -> Duration {
        self.data_source_access + self.conversion + self.catalog_insert + self.component_indexing
    }
}

/// Tuning knobs for the bulk ingest pipeline
/// ([`ResourceViewManager::ingest_all_bulk`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkIngestOptions {
    /// Worker threads building index segments in parallel. `1` keeps
    /// the run fully deterministic (same chunk order as sequential).
    pub parallelism: usize,
    /// Views per index segment (one segment = one unit of parallel
    /// build work, merged in chunk order).
    pub segment_size: usize,
}

impl Default for BulkIngestOptions {
    fn default() -> Self {
        BulkIngestOptions {
            parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            segment_size: 512,
        }
    }
}

/// Write-path throughput of one whole ingest run (all sources).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestThroughput {
    /// Total views ingested (base + derived, all sources).
    pub views: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// WAL records appended during the run (0 when not durable).
    pub wal_records: u64,
    /// WAL write groups issued (each one buffered `write_all`).
    pub wal_batches: u64,
    /// `sync_data`/`sync_all` calls issued by the WAL writer.
    pub fsyncs: u64,
    /// Fsyncs avoided versus one-fsync-per-record (under
    /// `SyncPolicy::Fsync`; 0 under write-back).
    pub fsyncs_saved: u64,
    /// Index segments built by the bulk pipeline (0 sequentially).
    pub segments: usize,
}

impl IngestThroughput {
    /// Ingested views per second.
    pub fn views_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.views as f64 / secs
        } else {
            0.0
        }
    }
}

/// The outcome of a resilient multi-source ingestion: per-source stats
/// for the sources that succeeded, and the errors of those that did not.
#[derive(Debug, Default)]
pub struct IngestReport {
    /// Stats of successfully ingested sources, in registration order.
    pub stats: Vec<SourceIngestStats>,
    /// `(source name, error)` for every source whose ingestion failed
    /// after retries — quarantined rather than failing the dataspace.
    pub failed: Vec<(String, IdmError)>,
    /// Run-wide write-path throughput (records/sec, fsync counts).
    pub throughput: IngestThroughput,
}

impl IngestReport {
    /// Total views across all successful sources.
    pub fn total_views(&self) -> usize {
        self.stats.iter().map(SourceIngestStats::total_views).sum()
    }
}

/// The Resource View Manager (Figure 4).
pub struct ResourceViewManager {
    store: Arc<ViewStore>,
    indexes: Arc<IndexBundle>,
    converters: ConverterRegistry,
    plugins: Mutex<Vec<Arc<dyn DataSourcePlugin>>>,
    /// Shared fault counters across every source guard of this system.
    fault_stats: Arc<FaultStats>,
    /// Per-source retry/breaker guards, created on demand.
    guards: Mutex<HashMap<String, Arc<SourceGuard>>>,
}

impl ResourceViewManager {
    /// An RVM with the default converter registry (XML + LaTeX).
    pub fn new(store: Arc<ViewStore>, indexes: Arc<IndexBundle>) -> Self {
        ResourceViewManager {
            store,
            indexes,
            converters: ConverterRegistry::with_defaults(),
            plugins: Mutex::new(Vec::new()),
            fault_stats: Arc::new(FaultStats::new()),
            guards: Mutex::new(HashMap::new()),
        }
    }

    /// The shared fault counters of this system's source guards.
    pub fn fault_stats(&self) -> &Arc<FaultStats> {
        &self.fault_stats
    }

    /// The retry/breaker guard for `source`, created with defaults on
    /// first use. One guard (and thus one breaker) per source name.
    pub fn guard_for(&self, source: &str) -> Arc<SourceGuard> {
        Arc::clone(
            self.guards
                .lock()
                .entry(source.to_owned())
                .or_insert_with(|| {
                    Arc::new(SourceGuard::with_defaults(
                        source,
                        Arc::clone(&self.fault_stats),
                    ))
                }),
        )
    }

    /// Replaces the guard for `source` (custom retry policy / breaker).
    pub fn set_source_guard(&self, source: &str, guard: SourceGuard) {
        self.guards
            .lock()
            .insert(source.to_owned(), Arc::new(guard));
    }

    /// The breaker state of every instantiated source guard, sorted by
    /// source name — the shell's `\stats` overload panel.
    pub fn guard_states(&self) -> Vec<(String, idm_core::fault::BreakerState)> {
        let mut out: Vec<(String, idm_core::fault::BreakerState)> = self
            .guards
            .lock()
            .iter()
            .map(|(name, guard)| (name.clone(), guard.breaker().state()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Replaces the converter registry.
    pub fn set_converters(&mut self, converters: ConverterRegistry) {
        self.converters = converters;
    }

    /// The converter registry.
    pub fn converters(&self) -> &ConverterRegistry {
        &self.converters
    }

    /// The store.
    pub fn store(&self) -> &Arc<ViewStore> {
        &self.store
    }

    /// The index bundle.
    pub fn indexes(&self) -> &Arc<IndexBundle> {
        &self.indexes
    }

    /// Registers a data source plugin.
    pub fn register_source(&self, plugin: Arc<dyn DataSourcePlugin>) {
        self.plugins.lock().push(plugin);
    }

    /// The registered plugins.
    pub fn sources(&self) -> Vec<Arc<dyn DataSourcePlugin>> {
        self.plugins.lock().clone()
    }

    /// Ingests and indexes every registered source in registration
    /// order; returns per-source statistics. Fails fast on the first
    /// failing source; [`ResourceViewManager::ingest_all_resilient`]
    /// quarantines failures instead.
    pub fn ingest_all(&self) -> Result<Vec<SourceIngestStats>> {
        self.ingest_each(None, false).map(|report| report.stats)
    }

    /// Ingests every registered source, quarantining sources that fail
    /// after retries instead of aborting: one unreachable substrate
    /// degrades one source, not the whole dataspace.
    pub fn ingest_all_resilient(&self) -> IngestReport {
        // Without a bulk WAL window the only error paths are per-source
        // and quarantined, so the result is always `Ok`.
        self.ingest_each(None, true).unwrap_or_default()
    }

    /// Ingests every registered source through the bulk pipeline: store
    /// application batched per source, WAL syncs deferred to batch
    /// boundaries (records acknowledged only after the window's final
    /// covering sync), and index segments built in parallel and merged
    /// in chunk order. Fails fast like [`ResourceViewManager::ingest_all`].
    pub fn ingest_all_bulk(&self, options: &BulkIngestOptions) -> Result<IngestReport> {
        self.ingest_each(Some(options), false)
    }

    /// The one per-plugin ingest loop behind every `ingest_all*`
    /// front end: sequential or bulk, fail-fast or quarantining.
    fn ingest_each(
        &self,
        bulk: Option<&BulkIngestOptions>,
        resilient: bool,
    ) -> Result<IngestReport> {
        let start = Instant::now();
        let wal_before = self.store.wal_telemetry();
        // Bulk runs defer WAL syncs to batch boundaries for the whole
        // multi-source window; the scope's final covering sync is what
        // acknowledges the run's records.
        let scope = if bulk.is_some() {
            self.store.wal_bulk_scope()
        } else {
            None
        };

        let mut report = IngestReport::default();
        let mut segments = 0usize;
        let mut fatal: Option<IdmError> = None;
        for plugin in self.sources() {
            let attempt = match bulk {
                Some(options) => self.ingest_source_bulk(&plugin, options, &mut segments),
                None => self.ingest_source(&plugin),
            };
            match attempt {
                Ok(stats) => report.stats.push(stats),
                Err(err) if resilient => report.failed.push((plugin.name().to_owned(), err)),
                Err(err) => {
                    fatal = Some(err);
                    break;
                }
            }
        }

        // Close the bulk window before sampling telemetry so the final
        // covering sync is counted — and surfaced: a failed sync means
        // the window's records were never acknowledged.
        if let Some(scope) = scope {
            if let Err(e) = scope.finish() {
                fatal.get_or_insert_with(|| crate::durability_err(e));
            }
        }
        if let Some(err) = fatal {
            return Err(err);
        }

        report.throughput = IngestThroughput {
            views: report.total_views(),
            elapsed: start.elapsed(),
            segments,
            ..IngestThroughput::default()
        };
        if let (Some(before), Some(after)) = (wal_before, self.store.wal_telemetry()) {
            report.throughput.wal_records = after.frames - before.frames;
            report.throughput.wal_batches = after.groups - before.groups;
            report.throughput.fsyncs = after.syncs - before.syncs;
            report.throughput.fsyncs_saved =
                after.syncs_saved().saturating_sub(before.syncs_saved());
        }
        Ok(report)
    }

    /// Ingests and indexes one source through the phased pipeline.
    pub fn ingest_source(&self, plugin: &Arc<dyn DataSourcePlugin>) -> Result<SourceIngestStats> {
        let mut stats = SourceIngestStats {
            source: plugin.name().to_owned(),
            ..SourceIngestStats::default()
        };
        let views = self.acquire_and_convert(plugin, false, &mut stats)?;

        // Phase 3 — component indexing (name/tuple/content/group).
        let mut outcomes = Vec::with_capacity(views.len());
        let indexing_start = Instant::now();
        for &vid in &views {
            let outcome = self.indexes.index_components(&self.store, vid)?;
            if let ContentIndexing::Indexed { bytes } = outcome {
                stats.net_input_bytes += bytes as u64;
            }
            outcomes.push(outcome);
        }
        stats.component_indexing = indexing_start.elapsed();

        // Phase 4 — catalog insert.
        let catalog_start = Instant::now();
        for (&vid, &outcome) in views.iter().zip(&outcomes) {
            self.indexes
                .register_in_catalog(&self.store, vid, plugin.name(), outcome)?;
        }
        stats.catalog_insert = catalog_start.elapsed();

        Ok(stats)
    }

    /// [`ResourceViewManager::ingest_source`] through the bulk pipeline:
    /// batched store application (phase 1) and deferred indexing —
    /// per-chunk [`IndexSegment`]s built on scoped worker threads, then
    /// merged into the live bundle in chunk order so insert order (and
    /// thus every structure) matches the sequential path exactly.
    fn ingest_source_bulk(
        &self,
        plugin: &Arc<dyn DataSourcePlugin>,
        options: &BulkIngestOptions,
        segments: &mut usize,
    ) -> Result<SourceIngestStats> {
        let mut stats = SourceIngestStats {
            source: plugin.name().to_owned(),
            ..SourceIngestStats::default()
        };
        let views = self.acquire_and_convert(plugin, true, &mut stats)?;

        // Phase 3 — segment build: chunks partition the vid-sorted view
        // list contiguously; workers claim chunks by index, so with
        // parallelism 1 the build order equals the merge order.
        let chunks: Vec<&[Vid]> = views.chunks(options.segment_size.max(1)).collect();
        let indexing_start = Instant::now();
        let workers = options.parallelism.max(1).min(chunks.len().max(1));
        let next = AtomicUsize::new(0);
        let built: Mutex<Vec<(usize, Result<IndexSegment>)>> =
            Mutex::new(Vec::with_capacity(chunks.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(chunk) = chunks.get(i) else { break };
                    let segment = IndexSegment::build(&self.store, chunk, plugin.name());
                    built.lock().push((i, segment));
                });
            }
        });
        let mut built = built.into_inner();
        built.sort_by_key(|(i, _)| *i);
        stats.component_indexing = indexing_start.elapsed();

        // Phase 4 — merge (the bulk counterpart of catalog insert plus
        // index insertion, timed as one phase).
        let merge_start = Instant::now();
        for (_, segment) in built {
            let segment = segment?;
            stats.net_input_bytes += segment.net_input_bytes();
            *segments += 1;
            self.indexes.merge_segment(segment);
        }
        stats.catalog_insert = merge_start.elapsed();

        Ok(stats)
    }

    /// Phases 1–2 of the Figure 5 pipeline (data source access and
    /// Content2iDM conversion), shared by the sequential and bulk
    /// paths; returns the source's full vid-sorted view set.
    fn acquire_and_convert(
        &self,
        plugin: &Arc<dyn DataSourcePlugin>,
        bulk: bool,
        stats: &mut SourceIngestStats,
    ) -> Result<Vec<Vid>> {
        // Phase 1 — data source access: represent the source as an
        // initial iDM graph and pull every content component's bytes
        // from the source (later phases hit the cache). The guard
        // retries transient substrate failures and trips the source's
        // breaker when they persist.
        let guard = self.guard_for(plugin.name());
        let access_start = Instant::now();
        let ingestion = guard.call(|| {
            if bulk {
                plugin.ingest_bulk(&self.store)
            } else {
                plugin.ingest(&self.store)
            }
        })?;
        stats.base_views = ingestion.base_views.len();
        for &vid in &ingestion.base_views {
            let content = guard.call(|| self.store.content(vid))?;
            if content.is_finite() && !content.is_empty() {
                let bytes = content.bytes()?;
                stats.total_content_bytes += bytes.len() as u64;
            }
        }
        stats.data_source_access = access_start.elapsed();

        // Phase 2 — Content2iDM conversion: enrich with the structural
        // subgraphs of XML and LaTeX content (Section 5.2, part 2).
        let conversion_start = Instant::now();
        let conversion = self
            .converters
            .convert_all(&self.store, &ingestion.base_views)?;
        stats.derived_xml = conversion.derived_xml;
        stats.derived_latex = conversion.derived_latex;
        stats.conversion = conversion_start.elapsed();

        // Collect the full view set of this source: base + derived.
        let mut views = ingestion.base_views.clone();
        {
            let base: std::collections::HashSet<Vid> =
                ingestion.base_views.iter().copied().collect();
            for &root in &ingestion.base_views {
                // Derived views hang under their base view's group.
                for vid in idm_core::graph::descendants(&self.store, root, usize::MAX)? {
                    if !base.contains(&vid) {
                        views.push(vid);
                    }
                }
            }
            views.sort();
            views.dedup();
        }
        Ok(views)
    }

    /// Re-indexes one view after a change (sync manager use).
    pub fn reindex_view(&self, vid: Vid, source: &str) -> Result<()> {
        self.indexes.remove_view(vid);
        self.indexes.index_view(&self.store, vid, source)?;
        Ok(())
    }

    /// Removes a view (and its index entries).
    pub fn remove_view(&self, vid: Vid) -> Result<()> {
        self.indexes.remove_view(vid);
        if self.store.contains(vid) {
            self.store.remove(vid)?;
        }
        Ok(())
    }

    /// Indexes a newly created view plus its (already materialized)
    /// derived subtree.
    pub fn index_subtree(&self, root: Vid, source: &str) -> Result<usize> {
        let mut views = vec![root];
        views.extend(idm_core::graph::descendants(&self.store, root, usize::MAX)?);
        views.sort();
        views.dedup();
        let mut indexed = 0;
        for &vid in &views {
            if !self.indexes.catalog.contains(vid) {
                self.indexes.index_view(&self.store, vid, source)?;
                indexed += 1;
            }
        }
        Ok(indexed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FsPlugin;
    use idm_vfs::{NodeId, VirtualFs};

    fn t() -> Timestamp {
        Timestamp::from_ymd(2005, 6, 1).unwrap()
    }

    fn rvm_with_fs() -> (ResourceViewManager, Arc<VirtualFs>) {
        let fs = Arc::new(VirtualFs::new(t()));
        let dir = fs.mkdir_p("/papers", t()).unwrap();
        fs.create_file(
            dir,
            "vision.tex",
            "\\section{A Vision}\ndataspace abstraction text",
            t(),
        )
        .unwrap();
        fs.create_file(dir, "data.xml", "<r><e>payload</e></r>", t())
            .unwrap();
        fs.create_file(dir, "photo.jpg", vec![0u8, 1, 2, 0, 0], t())
            .unwrap();

        let store = Arc::new(ViewStore::new());
        let indexes = Arc::new(IndexBundle::new());
        let rvm = ResourceViewManager::new(store, indexes);
        rvm.register_source(Arc::new(FsPlugin::new(Arc::clone(&fs), NodeId::ROOT)));
        (rvm, fs)
    }

    #[test]
    fn phased_ingestion_counts_and_sizes() {
        let (rvm, fs) = rvm_with_fs();
        let stats = rvm.ingest_all().unwrap();
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.source, "filesystem");
        assert_eq!(s.base_views, fs.node_count());
        assert!(s.derived_latex > 0, "LaTeX derived views");
        assert!(s.derived_xml > 0, "XML derived views");
        // The jpg is counted in total bytes but not net input.
        assert!(s.total_content_bytes > s.net_input_bytes || s.net_input_bytes > 0);

        // Everything (base + derived) is in the catalog.
        assert_eq!(rvm.indexes().catalog.len(), s.total_views());
    }

    #[test]
    fn derived_views_are_queryable_after_ingest() {
        let (rvm, _fs) = rvm_with_fs();
        rvm.ingest_all().unwrap();
        let processor =
            idm_query::QueryProcessor::new(Arc::clone(rvm.store()), Arc::clone(rvm.indexes()));
        let result = processor
            .execute(r#"//papers//*[class="latex_section"]"#)
            .unwrap();
        assert_eq!(result.rows.len(), 1);
        let result = processor.execute(r#""payload""#).unwrap();
        // The raw file bytes and the derived xmltext view both match.
        assert_eq!(result.rows.len(), 2, "XML text content indexed");
    }

    #[test]
    fn reindex_after_change() {
        let (rvm, _fs) = rvm_with_fs();
        rvm.ingest_all().unwrap();
        let store = Arc::clone(rvm.store());
        let vid = rvm.indexes().name.exact("vision.tex")[0];
        store
            .set_content(vid, Content::text("entirely new words"))
            .unwrap();
        rvm.reindex_view(vid, "filesystem").unwrap();
        assert_eq!(
            rvm.indexes().content.phrase_query("entirely new"),
            vec![vid]
        );
    }

    #[test]
    fn bulk_ingest_matches_sequential() {
        let (seq, _fs) = rvm_with_fs();
        let (bulk, _fs2) = rvm_with_fs();
        let seq_stats = seq.ingest_all().unwrap();
        let report = bulk
            .ingest_all_bulk(&BulkIngestOptions {
                parallelism: 2,
                segment_size: 2,
            })
            .unwrap();

        assert_eq!(report.stats.len(), 1);
        let (s, b) = (&seq_stats[0], &report.stats[0]);
        assert_eq!(b.base_views, s.base_views);
        assert_eq!(b.derived_xml, s.derived_xml);
        assert_eq!(b.derived_latex, s.derived_latex);
        assert_eq!(b.net_input_bytes, s.net_input_bytes);

        // Segment merge yields the exact index state of the
        // record-at-a-time path.
        assert_eq!(bulk.indexes().catalog.len(), seq.indexes().catalog.len());
        assert_eq!(
            bulk.indexes().content.document_count(),
            seq.indexes().content.document_count()
        );
        assert_eq!(
            bulk.indexes().content.token_count(),
            seq.indexes().content.token_count()
        );
        assert_eq!(
            bulk.indexes().name.exact("vision.tex"),
            seq.indexes().name.exact("vision.tex")
        );
        // Derived-view vids depend on conversion order (a hash-map
        // walk), so compare phrase hits by name, not by raw vid.
        let hit_names = |rvm: &ResourceViewManager| -> Vec<Option<String>> {
            let mut names: Vec<Option<String>> = rvm
                .indexes()
                .content
                .phrase_query("dataspace abstraction")
                .into_iter()
                .map(|vid| rvm.store().name(vid).unwrap())
                .collect();
            names.sort();
            names
        };
        assert_eq!(hit_names(&bulk), hit_names(&seq));
        assert_eq!(
            bulk.indexes().sizes().total(),
            seq.indexes().sizes().total()
        );
    }

    #[test]
    fn bulk_ingest_populates_throughput() {
        let (rvm, _fs) = rvm_with_fs();
        let report = rvm
            .ingest_all_bulk(&BulkIngestOptions {
                parallelism: 1,
                segment_size: 3,
            })
            .unwrap();
        let t = &report.throughput;
        assert_eq!(t.views, report.total_views());
        assert!(t.views > 0);
        assert!(t.segments >= 2, "chunking produced {} segments", t.segments);
        assert!(t.views_per_sec() > 0.0);
        // Not durable: no WAL attached, so write-path counters are zero.
        assert_eq!(t.wal_records, 0);
        assert_eq!(t.fsyncs, 0);
    }

    #[test]
    fn remove_view_cleans_store_and_indexes() {
        let (rvm, _fs) = rvm_with_fs();
        rvm.ingest_all().unwrap();
        let vid = rvm.indexes().name.exact("photo.jpg")[0];
        rvm.remove_view(vid).unwrap();
        assert!(!rvm.store().contains(vid));
        assert!(rvm.indexes().name.exact("photo.jpg").is_empty());
        assert!(!rvm.indexes().catalog.contains(vid));
    }
}
