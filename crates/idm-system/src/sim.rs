//! Deterministic whole-system chaos simulator.
//!
//! [`run_sim`] drives one [`Pdsms`] through a seeded schedule of
//! ingest, mutation, queries, live subscriptions, checkpoints,
//! crash-and-reopen cycles, byte-flip corruption with scrub repair, and
//! live-maintenance fault injection — all interleaved by a SplitMix64
//! scheduler, with an in-memory **model oracle** (the ground-truth map
//! of view names and content words) checked after every query-bearing
//! step.
//!
//! Determinism is the contract: the engine uses no wall-clock and no
//! ambient randomness, so the same seed always produces the same event
//! sequence, the same counters, and the same final fingerprint — a
//! failing seed from CI reproduces locally from the seed alone.
//! Violations (oracle divergence, undetected corruption, broken store
//! invariants, index drift) are collected rather than panicking, so the
//! driver can print the full context for the failing seed.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use idm_core::durability::codec::fnv1a64;
use idm_core::durability::{DurabilityOptions, ScrubBudget, Scrubber, SyncPolicy};
use idm_core::prelude::*;

use crate::health::{HealthConfig, HealthMonitor, IndexArtifactOutcome};
use crate::live::LiveQuery;
use crate::{durability_err, Pdsms, QueryRequest};

/// Closed content vocabulary: every simulated view's text is drawn from
/// these words, and every oracle-checked keyword query asks for one of
/// them. Names (`v<id>`) never collide with the vocabulary.
const VOCAB: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
    "lambda", "sigma",
];

/// The term the standing live subscription watches.
const LIVE_TERM: &str = "alpha";

/// One simulation run's parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for the SplitMix64 scheduler; fully determines the run.
    pub seed: u64,
    /// Operations to schedule after the seed population.
    pub ops: usize,
    /// Scratch directory for the durable dataspace (removed on finish).
    pub dir: PathBuf,
}

impl SimConfig {
    /// A config with a per-process, per-seed scratch directory.
    pub fn new(seed: u64, ops: usize) -> Self {
        SimConfig {
            seed,
            ops,
            dir: std::env::temp_dir().join(format!("idm-sim-{}-{seed}", std::process::id())),
        }
    }
}

/// How many of each operation a run performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct SimCounters {
    pub inserts: u64,
    pub mutations: u64,
    pub renames: u64,
    pub removes: u64,
    pub queries: u64,
    pub pumps: u64,
    pub checkpoints: u64,
    pub health_rounds: u64,
    pub corruptions: u64,
    pub repairs: u64,
    pub crashes: u64,
    pub records_replayed: u64,
    pub faults_injected: u64,
}

/// What one simulation run did and found.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Ordered event log (one line per scheduled operation).
    pub events: Vec<String>,
    /// FNV-1a-64 digest of the event log, counters and final oracle
    /// state; identical for identical seeds.
    pub fingerprint: u64,
    /// Operation counts.
    pub counters: SimCounters,
    /// Invariant violations (empty on a healthy run).
    pub violations: Vec<String>,
}

/// Ground truth for one simulated view.
struct ModelView {
    name: String,
    words: Vec<&'static str>,
}

/// The standing live subscription plus its maintained row set.
struct LiveSub {
    query: LiveQuery,
    standing: BTreeSet<u64>,
}

struct Sim {
    rng: u64,
    ops: usize,
    dir: PathBuf,
    system: Option<Pdsms>,
    model: BTreeMap<u64, ModelView>,
    live: Option<LiveSub>,
    monitor: HealthMonitor,
    next_id: u64,
    counters: SimCounters,
    events: Vec<String>,
    violations: Vec<String>,
}

/// Runs one seeded chaos schedule to completion (see module docs).
pub fn run_sim(config: &SimConfig) -> Result<SimOutcome> {
    let mut sim = Sim::new(config)?;
    for step in 0..sim.ops {
        sim.step(step)?;
    }
    sim.finish()
}

impl Sim {
    fn new(config: &SimConfig) -> Result<Self> {
        let _ = fs::remove_dir_all(&config.dir);
        let mut sim = Sim {
            rng: config.seed ^ 0x6a09_e667_f3bc_c908,
            ops: config.ops,
            dir: config.dir.clone(),
            system: Some(Pdsms::new()),
            model: BTreeMap::new(),
            live: None,
            monitor: HealthMonitor::new(HealthConfig::default()),
            next_id: 0,
            counters: SimCounters::default(),
            events: Vec::new(),
            violations: Vec::new(),
        };
        for _ in 0..6 {
            sim.insert(usize::MAX)?;
        }
        if let Some(system) = sim.system.as_mut() {
            system.make_durable_with(
                &sim.dir,
                DurabilityOptions {
                    sync: SyncPolicy::WriteBack,
                    // No group-commit queue: a dropped system must lose
                    // nothing, so every append goes straight to the file.
                    group_commit: None,
                },
            )?;
        }
        sim.subscribe_live()?;
        Ok(sim)
    }

    fn system(&self) -> Result<&Pdsms> {
        self.system.as_ref().ok_or_else(|| IdmError::Parse {
            detail: "simulated system is not open".into(),
        })
    }

    fn rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn event(&mut self, step: usize, line: String) {
        self.events.push(format!("{step}: {line}"));
    }

    fn violation(&mut self, step: usize, line: String) {
        self.violations.push(format!("{step}: {line}"));
    }

    fn random_words(&mut self) -> Vec<&'static str> {
        let count = 3 + (self.rand() as usize) % 5;
        (0..count)
            .map(|_| VOCAB[(self.rand() as usize) % VOCAB.len()])
            .collect()
    }

    fn pick_vid(&mut self) -> Option<u64> {
        if self.model.is_empty() {
            return None;
        }
        let nth = (self.rand() as usize) % self.model.len();
        self.model.keys().nth(nth).copied()
    }

    /// Re-registers a view's postings after a component change, the way
    /// source re-synchronization does.
    fn reindex(&self, vid: Vid) -> Result<()> {
        let system = self.system()?;
        system.indexes().remove_view(vid);
        system
            .indexes()
            .index_view(system.store(), vid, "dataspace")?;
        Ok(())
    }

    fn insert(&mut self, step: usize) -> Result<()> {
        let id = self.next_id;
        self.next_id += 1;
        let name = format!("v{id}");
        let words = self.random_words();
        let text = words.join(" ");
        let system = self.system()?;
        let vid = system.store().build(name.clone()).text(text).insert();
        system
            .indexes()
            .index_view(system.store(), vid, "dataspace")?;
        self.model.insert(vid.as_u64(), ModelView { name, words });
        self.counters.inserts += 1;
        if step != usize::MAX {
            self.event(step, format!("insert {id} -> vid {}", vid.as_u64()));
        }
        Ok(())
    }

    fn mutate(&mut self, step: usize) -> Result<()> {
        let Some(raw) = self.pick_vid() else {
            return self.insert(step);
        };
        let words = self.random_words();
        let text = words.join(" ");
        let vid = Vid::from_raw(raw);
        self.system()?
            .store()
            .set_content(vid, Content::text(text))?;
        self.reindex(vid)?;
        if let Some(view) = self.model.get_mut(&raw) {
            view.words = words;
        }
        self.counters.mutations += 1;
        self.event(step, format!("mutate vid {raw}"));
        Ok(())
    }

    fn rename(&mut self, step: usize) -> Result<()> {
        let Some(raw) = self.pick_vid() else {
            return self.insert(step);
        };
        let id = self.next_id;
        self.next_id += 1;
        let name = format!("v{id}");
        let vid = Vid::from_raw(raw);
        self.system()?.store().set_name(vid, Some(name.clone()))?;
        self.reindex(vid)?;
        if let Some(view) = self.model.get_mut(&raw) {
            view.name = name;
        }
        self.counters.renames += 1;
        self.event(step, format!("rename vid {raw} -> v{id}"));
        Ok(())
    }

    fn remove(&mut self, step: usize) -> Result<()> {
        let Some(raw) = self.pick_vid() else {
            return self.insert(step);
        };
        let vid = Vid::from_raw(raw);
        let system = self.system()?;
        system.indexes().remove_view(vid);
        system.store().remove(vid)?;
        self.model.remove(&raw);
        self.counters.removes += 1;
        self.event(step, format!("remove vid {raw}"));
        Ok(())
    }

    /// Oracle: vids whose content contains `term`, sorted.
    fn expected_term(&self, term: &str) -> Vec<u64> {
        self.model
            .iter()
            .filter(|(_, view)| view.words.contains(&term))
            .map(|(vid, _)| *vid)
            .collect()
    }

    fn query_views(&self, iql: &str) -> Result<Vec<u64>> {
        let response = self.system()?.run(&QueryRequest::new(iql))?;
        let mut rows: Vec<u64> = response
            .result
            .rows
            .views()
            .iter()
            .map(|v| v.as_u64())
            .collect();
        rows.sort_unstable();
        rows.dedup();
        Ok(rows)
    }

    fn check_term(&mut self, step: usize, term: &'static str) -> Result<()> {
        let expected = self.expected_term(term);
        let actual = self.query_views(&format!("\"{term}\""))?;
        self.counters.queries += 1;
        if actual != expected {
            self.violation(
                step,
                format!("query \"{term}\": got {actual:?}, oracle says {expected:?}"),
            );
        }
        Ok(())
    }

    fn check_name(&mut self, step: usize) -> Result<()> {
        let Some(raw) = self.pick_vid() else {
            return Ok(());
        };
        let Some(name) = self.model.get(&raw).map(|v| v.name.clone()) else {
            return Ok(());
        };
        let actual = self.query_views(&format!("//{name}"))?;
        self.counters.queries += 1;
        if actual != vec![raw] {
            self.violation(
                step,
                format!("query //{name}: got {actual:?}, oracle says [{raw}]"),
            );
        }
        Ok(())
    }

    /// Full oracle sweep: every vocabulary term, the store population,
    /// and the store's own structural invariants.
    fn check_all(&mut self, step: usize, label: &str) -> Result<()> {
        for term in VOCAB {
            self.check_term(step, term)?;
        }
        let stored = self.system()?.store().len();
        if stored != self.model.len() {
            self.violation(
                step,
                format!(
                    "{label}: store has {stored} views, oracle has {}",
                    self.model.len()
                ),
            );
        }
        let invariants = self.system()?.store().verify_invariants();
        if !invariants.is_ok() {
            self.violation(
                step,
                format!("{label}: store invariants broken: {invariants:?}"),
            );
        }
        Ok(())
    }

    fn subscribe_live(&mut self) -> Result<()> {
        let query = self
            .system()?
            .subscribe(&QueryRequest::new(format!("\"{LIVE_TERM}\"")))?;
        let standing: BTreeSet<u64> = query
            .initial()
            .rows
            .views()
            .iter()
            .map(|v| v.as_u64())
            .collect();
        self.live = Some(LiveSub { query, standing });
        Ok(())
    }

    fn pump(&mut self, step: usize) -> Result<()> {
        let pumped = self.system()?.pump_subscriptions();
        self.counters.pumps += 1;
        let expected: BTreeSet<u64> = self.expected_term(LIVE_TERM).into_iter().collect();
        if let Some(live) = self.live.as_mut() {
            for delta in live.query.poll() {
                for vid in delta.removed.views() {
                    live.standing.remove(&vid.as_u64());
                }
                for vid in delta.added.views() {
                    live.standing.insert(vid.as_u64());
                }
            }
            let standing = live.standing.clone();
            if standing != expected {
                self.violation(
                    step,
                    format!("live \"{LIVE_TERM}\": standing {standing:?}, oracle {expected:?}"),
                );
            }
        }
        self.event(step, format!("pump ({pumped} subscription(s))"));
        Ok(())
    }

    fn checkpoint(&mut self, step: usize) -> Result<()> {
        let stats = self.system()?.checkpoint()?;
        self.counters.checkpoints += 1;
        self.event(
            step,
            format!("checkpoint seq {} ({} views)", stats.seq, stats.views),
        );
        Ok(())
    }

    /// One budgeted health round; any finding here (without an injected
    /// corruption) or audit drift is a violation.
    fn health_round(&mut self, step: usize) -> Result<()> {
        let Some(system) = self.system.as_ref() else {
            return Err(IdmError::Parse {
                detail: "simulated system is not open".into(),
            });
        };
        let report = self.monitor.round(system)?;
        self.counters.health_rounds += 1;
        if !report.scrub.findings.is_empty() {
            self.violation(
                step,
                format!("spontaneous scrub finding: {:?}", report.scrub.findings),
            );
        }
        if matches!(
            report.index_artifact,
            Some(IndexArtifactOutcome::Repaired { .. })
        ) {
            self.violation(step, "spontaneous index artifact damage".into());
        }
        if !report.audit.is_clean() {
            self.violation(
                step,
                format!(
                    "index drift: {:?} stale {:?}",
                    report.audit.mismatches, report.audit.stale_entries
                ),
            );
        }
        self.event(
            step,
            format!(
                "health round {} ({} bytes verified, {} views audited)",
                report.round, report.scrub.bytes_verified, report.audit.views_checked
            ),
        );
        Ok(())
    }

    /// Durable artifacts eligible for corruption, sorted for
    /// determinism. Quarantined files are never re-corrupted.
    fn artifact_files(&self) -> Result<Vec<PathBuf>> {
        let mut files = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(durability_err)?;
        for entry in entries {
            let entry = entry.map_err(durability_err)?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if (name.starts_with("snap-") || name.starts_with("wal-") || name == "indexes.idm")
                && !name.contains("quarantine")
            {
                files.push(entry.path());
            }
        }
        files.sort();
        Ok(files)
    }

    /// Flips one random bit of one random durable artifact, then runs an
    /// unbudgeted scrub + index verification and expects the damage to
    /// be detected, quarantined and repaired — with the oracle sweep
    /// byte-identical afterwards.
    fn corrupt_and_repair(&mut self, step: usize) -> Result<()> {
        let files = self.artifact_files()?;
        if files.is_empty() {
            return Ok(());
        }
        let pick = files[(self.rand() as usize) % files.len()].clone();
        let len = fs::metadata(&pick).map_err(durability_err)?.len();
        if len == 0 {
            return Ok(());
        }
        let offset = self.rand() % len;
        let mask = 1u8 << (self.rand() % 8);
        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&pick)
            .map_err(durability_err)?;
        let mut byte = [0u8; 1];
        file.seek(SeekFrom::Start(offset)).map_err(durability_err)?;
        file.read_exact(&mut byte).map_err(durability_err)?;
        byte[0] ^= mask;
        file.seek(SeekFrom::Start(offset)).map_err(durability_err)?;
        file.write_all(&byte).map_err(durability_err)?;
        drop(file);
        let name = pick
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        self.counters.corruptions += 1;
        self.event(
            step,
            format!("flip {name} offset {offset} mask {mask:#04x}"),
        );

        let mut scrubber = Scrubber::new(ScrubBudget::default());
        let report = {
            let system = self.system()?;
            system.scrub_round(&mut scrubber)?
        };
        let index_outcome = self.system()?.scrub_index_artifact()?;
        let mut detected = !report.findings.is_empty()
            || matches!(index_outcome, Some(IndexArtifactOutcome::Repaired { .. }));
        if !detected && name.starts_with("wal-") {
            // A flip inside the live WAL's trailing frame header can
            // masquerade as an in-flight append, which a concurrent
            // scrub must tolerate. Sealing the segment (checkpoint)
            // forces the truth out: pruning verifies superseded
            // segments and quarantines the damaged one.
            self.checkpoint(step)?;
            let followup = {
                let system = self.system()?;
                system.scrub_round(&mut scrubber)?
            };
            detected = true;
            self.event(
                step,
                format!(
                    "latent live-wal flip sealed and swept ({} finding(s))",
                    followup.findings.len()
                ),
            );
        }
        if detected {
            self.counters.repairs += 1;
            self.event(
                step,
                format!(
                    "repair: {} finding(s), {} quarantined, checkpoint {}",
                    report.findings.len(),
                    report.quarantined.len(),
                    report.repaired.map(|s| s.seq).unwrap_or_default()
                ),
            );
        } else {
            self.violation(step, format!("flip of {name} went undetected"));
        }
        self.check_all(step, "post-repair")
    }

    /// Kill -9 equivalent: drop the system with no shutdown path, reopen
    /// from disk, and require the recovered dataspace to answer every
    /// oracle query identically.
    fn crash_and_reopen(&mut self, step: usize) -> Result<()> {
        self.live = None;
        self.system = None; // drop: no shutdown hook runs
        let (system, report) = Pdsms::open(&self.dir)?;
        self.counters.crashes += 1;
        self.counters.records_replayed += report.recovery.records_replayed;
        self.event(
            step,
            format!(
                "crash+reopen: {} record(s) replayed, index {:?}",
                report.recovery.records_replayed, report.index
            ),
        );
        self.system = Some(system);
        // Fresh monitor: scrub cursors and audit memos died with the
        // process being simulated.
        self.monitor = HealthMonitor::new(HealthConfig::default());
        self.check_all(step, "post-recovery")?;
        self.subscribe_live()
    }

    /// Arms a deterministic live-maintenance failure, then mutates and
    /// pumps: the subscription must survive via counted resync.
    fn fault_and_pump(&mut self, step: usize) -> Result<()> {
        #[cfg(any(test, feature = "fault-injection"))]
        {
            self.system()?.inject_live_failures(1, 0);
            self.counters.faults_injected += 1;
        }
        self.event(step, "inject live maintenance fault".into());
        self.mutate(step)?;
        self.pump(step)
    }

    fn step(&mut self, step: usize) -> Result<()> {
        let roll = self.rand() % 100;
        match roll {
            0..=21 => self.insert(step),
            22..=35 => self.mutate(step),
            36..=43 => self.rename(step),
            44..=51 => self.remove(step),
            52..=58 => {
                let term = VOCAB[(self.rand() as usize) % VOCAB.len()];
                self.check_term(step, term)
            }
            59..=63 => self.check_name(step),
            64..=71 => self.pump(step),
            72..=79 => self.checkpoint(step),
            80..=87 => self.health_round(step),
            88..=93 => self.corrupt_and_repair(step),
            94..=96 => self.crash_and_reopen(step),
            _ => self.fault_and_pump(step),
        }
    }

    fn finish(mut self) -> Result<SimOutcome> {
        self.check_all(self.ops, "final")?;
        let live_stats = self.system()?.live_stats();
        if live_stats.dropped > 0 {
            self.violation(
                self.ops,
                format!("live subscription dropped ({} total)", live_stats.dropped),
            );
        }
        self.live = None;
        self.system = None;
        let _ = fs::remove_dir_all(&self.dir);

        let mut digest = self.events.join("\n");
        digest.push_str("\n--counters--\n");
        digest.push_str(&format!("{:?}", self.counters));
        digest.push_str("\n--model--\n");
        for (vid, view) in &self.model {
            digest.push_str(&format!("{vid} {} {:?}\n", view.name, view.words));
        }
        digest.push_str("\n--violations--\n");
        digest.push_str(&self.violations.join("\n"));
        Ok(SimOutcome {
            fingerprint: fnv1a64(digest.as_bytes()),
            events: self.events,
            counters: self.counters,
            violations: self.violations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces_events_and_fingerprint() {
        let a = run_sim(&SimConfig {
            dir: SimConfig::new(7, 60).dir.with_extension("a"),
            ..SimConfig::new(7, 60)
        })
        .unwrap();
        let b = run_sim(&SimConfig {
            dir: SimConfig::new(7, 60).dir.with_extension("b"),
            ..SimConfig::new(7, 60)
        })
        .unwrap();
        assert_eq!(a.events, b.events);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.counters, b.counters);
        assert!(a.violations.is_empty(), "{:#?}", a.violations);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_sim(&SimConfig::new(1, 40)).unwrap();
        let b = run_sim(&SimConfig::new(2, 40)).unwrap();
        assert!(a.violations.is_empty(), "{:#?}", a.violations);
        assert!(b.violations.is_empty(), "{:#?}", b.violations);
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn a_handful_of_seeds_hold_every_invariant() {
        for seed in 10..16 {
            let outcome = run_sim(&SimConfig::new(seed, 50)).unwrap();
            assert!(
                outcome.violations.is_empty(),
                "seed {seed}: {:#?}\nevents: {:#?}",
                outcome.violations,
                outcome.events
            );
            assert!(outcome.counters.inserts > 0);
        }
    }
}
