//! The Data Source Proxy: plugins that represent each subsystem as an
//! initial iDM graph (Section 5.2, part 1). The paper's prototype
//! shipped plugins for file systems, IMAP email servers and RSS feeds —
//! exactly the three provided here.

use std::sync::Arc;

use idm_core::prelude::*;
use idm_email::convert::{materialize_mailbox_mapped, MailboxMapping, MailboxStats};
use idm_email::{ImapServer, MailboxId, Uid};
use idm_streams::sources::RssStreamSource;
use idm_vfs::convert::{materialize, materialize_bulk, FsMapping};
use idm_vfs::{NodeId, VirtualFs};
use idm_xml::rss::FeedServer;
use parking_lot::Mutex;

/// The result of representing a data source as an initial iDM graph.
#[derive(Debug, Clone, Default)]
pub struct Ingestion {
    /// The root views of the source's graph.
    pub roots: Vec<Vid>,
    /// All views created for *base items* (files, folders, emails,
    /// attachments, stream heads) — Table 2's "Base Items" column.
    pub base_views: Vec<Vid>,
}

/// A data source plugin.
pub trait DataSourcePlugin: Send + Sync {
    /// The source name used in catalog rows and reports
    /// (`"filesystem"`, `"imap"`, `"rss"`).
    fn name(&self) -> &str;

    /// Builds the initial iDM graph for this source's current state.
    fn ingest(&self, store: &ViewStore) -> Result<Ingestion>;

    /// [`DataSourcePlugin::ingest`] for the bulk path: plugins that can
    /// emit record batches override this to insert through
    /// [`ViewStore::insert_batch`] (one shard-lock acquisition and one
    /// WAL group commit per batch). The default delegates to the
    /// record-at-a-time `ingest` — still correct under a bulk WAL
    /// window, whose deferred syncs batch those appends run-wide.
    fn ingest_bulk(&self, store: &ViewStore) -> Result<Ingestion> {
        self.ingest(store)
    }
}

/// Filesystem plugin over a [`VirtualFs`].
pub struct FsPlugin {
    fs: Arc<VirtualFs>,
    root: NodeId,
    /// Node→view mapping of the latest ingestion, used by the
    /// synchronization manager to resolve change notifications.
    mapping: Mutex<Option<FsMapping>>,
}

impl FsPlugin {
    /// A plugin for the subtree rooted at `root`.
    pub fn new(fs: Arc<VirtualFs>, root: NodeId) -> Self {
        FsPlugin {
            fs,
            root,
            mapping: Mutex::new(None),
        }
    }

    /// The backing filesystem.
    pub fn fs(&self) -> &Arc<VirtualFs> {
        &self.fs
    }

    /// The view of a filesystem node, from the latest ingestion.
    pub fn view_of(&self, node: NodeId) -> Option<Vid> {
        self.mapping.lock().as_ref().and_then(|m| m.view_of(node))
    }

    /// Records a mapping added after ingestion (sync manager use).
    pub fn record_mapping(&self, node: NodeId, vid: Vid) {
        if let Some(mapping) = self.mapping.lock().as_mut() {
            mapping.by_node.insert(node, vid);
        }
    }
}

impl DataSourcePlugin for FsPlugin {
    fn name(&self) -> &str {
        "filesystem"
    }

    fn ingest(&self, store: &ViewStore) -> Result<Ingestion> {
        let mapping = materialize(&self.fs, store, self.root)?;
        self.finish_ingest(mapping)
    }

    fn ingest_bulk(&self, store: &ViewStore) -> Result<Ingestion> {
        let mapping = materialize_bulk(&self.fs, store, self.root)?;
        self.finish_ingest(mapping)
    }
}

impl FsPlugin {
    fn finish_ingest(&self, mapping: FsMapping) -> Result<Ingestion> {
        let base_views: Vec<Vid> = mapping.by_node.values().copied().collect();
        let roots = vec![mapping.root];
        *self.mapping.lock() = Some(mapping);
        Ok(Ingestion { roots, base_views })
    }
}

/// IMAP plugin over a simulated [`ImapServer`].
pub struct ImapPlugin {
    server: Arc<ImapServer>,
    mapping: Mutex<MailboxMapping>,
}

impl ImapPlugin {
    /// A plugin ingesting the whole mailbox tree (Option 1: the state).
    pub fn new(server: Arc<ImapServer>) -> Self {
        ImapPlugin {
            server,
            mapping: Mutex::new(MailboxMapping::default()),
        }
    }

    /// The backing server.
    pub fn server(&self) -> &Arc<ImapServer> {
        &self.server
    }

    /// Folder/message/attachment counts of the latest ingestion.
    pub fn last_stats(&self) -> MailboxStats {
        self.mapping.lock().stats
    }

    /// The mailfolder view of a mailbox, from the latest ingestion.
    pub fn folder_view(&self, mailbox: MailboxId) -> Option<Vid> {
        self.mapping.lock().folders.get(&mailbox).copied()
    }

    /// The emailmessage view of a message uid.
    pub fn message_view(&self, uid: Uid) -> Option<Vid> {
        self.mapping.lock().messages.get(&uid).copied()
    }

    /// Records a message view created after ingestion (sync manager).
    pub fn record_message(&self, uid: Uid, vid: Vid) {
        self.mapping.lock().messages.insert(uid, vid);
    }

    /// Forgets a message after deletion (sync manager).
    pub fn forget_message(&self, uid: Uid) -> Option<Vid> {
        self.mapping.lock().messages.remove(&uid)
    }
}

impl DataSourcePlugin for ImapPlugin {
    fn name(&self) -> &str {
        "imap"
    }

    fn ingest(&self, store: &ViewStore) -> Result<Ingestion> {
        let before: std::collections::HashSet<Vid> = store.vids().into_iter().collect();
        let mapping = materialize_mailbox_mapped(&self.server, store, self.server.inbox())?;
        let root = mapping.root;
        *self.mapping.lock() = mapping;
        let base_views: Vec<Vid> = store
            .vids()
            .into_iter()
            .filter(|v| !before.contains(v))
            .collect();
        Ok(Ingestion {
            roots: vec![root],
            base_views,
        })
    }
}

/// RSS plugin: registers one `rssatom` stream view per feed URL.
pub struct RssPlugin {
    server: Arc<FeedServer>,
    urls: Vec<String>,
}

impl RssPlugin {
    /// A plugin over the given feed URLs.
    pub fn new(server: Arc<FeedServer>, urls: Vec<String>) -> Self {
        RssPlugin { server, urls }
    }
}

impl DataSourcePlugin for RssPlugin {
    fn name(&self) -> &str {
        "rss"
    }

    fn ingest(&self, store: &ViewStore) -> Result<Ingestion> {
        let mut roots = Vec::with_capacity(self.urls.len());
        for url in &self.urls {
            let source = RssStreamSource::new(Arc::clone(&self.server), url.clone());
            roots.push(source.into_stream_view(store)?);
        }
        Ok(Ingestion {
            roots: roots.clone(),
            base_views: roots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Timestamp {
        Timestamp::from_ymd(2005, 6, 1).unwrap()
    }

    #[test]
    fn fs_plugin_ingests_and_maps() {
        let fs = Arc::new(VirtualFs::new(t()));
        let dir = fs.mkdir_p("/docs", t()).unwrap();
        let file = fs.create_file(dir, "a.txt", "hello", t()).unwrap();

        let store = ViewStore::new();
        let plugin = FsPlugin::new(Arc::clone(&fs), NodeId::ROOT);
        let ingestion = plugin.ingest(&store).unwrap();
        assert_eq!(ingestion.base_views.len(), 3); // root, docs, a.txt
        assert!(plugin.view_of(file).is_some());
        assert_eq!(plugin.name(), "filesystem");
    }

    #[test]
    fn imap_plugin_counts_base_views() {
        use idm_email::message::EmailMessage;
        let server = Arc::new(ImapServer::in_process());
        server
            .append(
                server.inbox(),
                &EmailMessage {
                    subject: "s".into(),
                    date: t(),
                    ..EmailMessage::default()
                },
            )
            .unwrap();
        let store = ViewStore::new();
        let plugin = ImapPlugin::new(server);
        let ingestion = plugin.ingest(&store).unwrap();
        assert_eq!(ingestion.base_views.len(), 2); // INBOX + message
        assert_eq!(plugin.last_stats().messages, 1);
    }

    #[test]
    fn rss_plugin_creates_stream_views() {
        let server = Arc::new(FeedServer::new());
        server.publish("u1", idm_xml::rss::Feed::new("one"));
        server.publish("u2", idm_xml::rss::Feed::new("two"));
        let store = ViewStore::new();
        let plugin = RssPlugin::new(server, vec!["u1".into(), "u2".into()]);
        let ingestion = plugin.ingest(&store).unwrap();
        assert_eq!(ingestion.roots.len(), 2);
        for root in ingestion.roots {
            assert!(store.conforms_to(root, "rssatom").unwrap());
        }
    }
}
