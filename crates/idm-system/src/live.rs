//! Live queries: standing subscriptions over the dataspace.
//!
//! A subscription is a [`QueryRequest`] whose result *stays* answered:
//! [`Pdsms::subscribe`] executes it once, seeds a delta-maintained
//! standing result ([`idm_query::MaintainedPlan`]), and hands back a
//! [`LiveQuery`] — the initial rows plus a channel of
//! [`ResultDelta`] batches. From then on, every store mutation's
//! logical [`ChangeRecord`]s flow through an [`idm_streams::RecordEngine`]
//! into the [`SubscriptionRegistry`], which maintains each standing
//! result incrementally (falling back to bounded re-expansion or full
//! recompute only where a node cannot be maintained soundly) and pushes
//! the non-empty deltas to subscribers.
//!
//! Delivery is pull-paced: the engine dispatches when
//! [`Pdsms::pump_subscriptions`] runs — which the ingest paths
//! (`index_all*`) do automatically, and which sync-round drivers (RSS
//! polls, IMAP rounds, filesystem notification sweeps) call after each
//! round — so a sync round's worth of changes arrives as one coalesced
//! delta batch per subscription.
//!
//! The PR 7 partiality gate extends here: a budget-truncated execution
//! is a *subset* of the true rows and never seeds a subscription
//! (subscribing with an exhausted budget is an error, not a silently
//! wrong feed), and maintenance always runs unbudgeted, so a standing
//! result is never updated from partial state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use idm_core::prelude::*;
use idm_query::{
    MaintainedPlan, QueryBudget, QueryProcessor, QueryRequest, QueryResult, ResultDelta,
};
use idm_streams::{RecordEngine, RecordOperator};
use parking_lot::Mutex;

use crate::Pdsms;

/// A standing query handle: the rows at subscription time plus the
/// stream of changes since. Dropping it unsubscribes (the registry
/// prunes the subscription on its next push).
pub struct LiveQuery {
    id: u64,
    initial: QueryResult,
    deltas: Receiver<ResultDelta>,
}

impl std::fmt::Debug for LiveQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveQuery")
            .field("id", &self.id)
            .field("initial_rows", &self.initial.rows.len())
            .finish_non_exhaustive()
    }
}

impl LiveQuery {
    /// The subscription id (unique within the system).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The full result at subscription time.
    pub fn initial(&self) -> &QueryResult {
        &self.initial
    }

    /// Drains every delta pushed since the last poll (empty when
    /// nothing relevant changed).
    pub fn poll(&self) -> Vec<ResultDelta> {
        self.deltas.try_iter().collect()
    }
}

struct Subscription {
    standing: MaintainedPlan,
    tx: Sender<ResultDelta>,
    /// Maintenance failures since the last successful pass; reset by
    /// any success (including a successful resync).
    consecutive_failures: u32,
}

/// How many *consecutive* failed maintenance passes (each including its
/// resync attempt) a subscription survives before it is dropped. A
/// transient substrate fault costs a counted resync, not the
/// subscription; only persistent failure ends it.
pub const MAX_CONSECUTIVE_MAINTENANCE_FAILURES: u32 = 3;

/// Counter totals for a system's live queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Currently registered subscriptions.
    pub active: u64,
    /// Non-empty delta batches pushed to subscribers.
    pub deltas_pushed: u64,
    /// Change records applied across all subscriptions.
    pub records_applied: u64,
    /// Maintenance passes that failed (each triggers a resync attempt).
    pub maintain_failures: u64,
    /// Standing results rebuilt by a counted full recompute after a
    /// failed maintenance pass.
    pub resyncs: u64,
    /// Subscriptions pruned (handle dropped, or maintenance failed
    /// [`MAX_CONSECUTIVE_MAINTENANCE_FAILURES`] times in a row).
    pub dropped: u64,
}

/// Maintains every standing query against incoming change-record
/// batches. Registered as a [`RecordOperator`] on the system's
/// [`RecordEngine`], so pumping the engine maintains all subscriptions.
pub struct SubscriptionRegistry {
    processor: QueryProcessor,
    subs: Mutex<Vec<Subscription>>,
    next_id: AtomicU64,
    deltas_pushed: AtomicU64,
    records_applied: AtomicU64,
    maintain_failures: AtomicU64,
    resyncs: AtomicU64,
    dropped: AtomicU64,
    /// Deterministic failure injection for tests and the chaos
    /// simulator: each pending count fails one maintenance (or resync)
    /// call.
    #[cfg(any(test, feature = "fault-injection"))]
    inject_maintain_failures: AtomicU64,
    #[cfg(any(test, feature = "fault-injection"))]
    inject_resync_failures: AtomicU64,
}

#[cfg(any(test, feature = "fault-injection"))]
fn take_one(counter: &AtomicU64) -> bool {
    counter
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
        .is_ok()
}

#[cfg(any(test, feature = "fault-injection"))]
fn injected_error(op: &str) -> IdmError {
    IdmError::Provider {
        detail: format!("injected {op} failure"),
        source: Some("live".into()),
        vid: None,
    }
}

impl SubscriptionRegistry {
    fn new(processor: QueryProcessor) -> Self {
        SubscriptionRegistry {
            processor,
            subs: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            deltas_pushed: AtomicU64::new(0),
            records_applied: AtomicU64::new(0),
            maintain_failures: AtomicU64::new(0),
            resyncs: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            #[cfg(any(test, feature = "fault-injection"))]
            inject_maintain_failures: AtomicU64::new(0),
            #[cfg(any(test, feature = "fault-injection"))]
            inject_resync_failures: AtomicU64::new(0),
        }
    }

    fn subscribe(&self, request: &QueryRequest) -> Result<LiveQuery> {
        let plan = self.processor.plan_iql(request.iql())?;
        let budget = request.requested_budget().unwrap_or(QueryBudget::none());
        let (result, standing) = self.processor.execute_standing(&plan, budget)?;
        let Some(standing) = standing else {
            // Either the budget truncated the execution (a partial
            // result must never seed a standing one) or the plan shape
            // cannot be maintained soundly.
            return Err(IdmError::Provider {
                detail: if result.stats.partial {
                    "subscribe: budget-truncated (partial) execution cannot seed a standing result"
                        .into()
                } else {
                    "subscribe: plan shape is not maintainable".into()
                },
                source: Some("live".into()),
                vid: None,
            });
        };
        let (tx, rx) = unbounded();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subs.lock().push(Subscription {
            standing,
            tx,
            consecutive_failures: 0,
        });
        Ok(LiveQuery {
            id,
            initial: result,
            deltas: rx,
        })
    }

    fn apply(&self, records: &[ChangeRecord]) {
        if records.is_empty() {
            return;
        }
        let mut subs = self.subs.lock();
        self.records_applied
            .fetch_add((records.len() * subs.len()) as u64, Ordering::Relaxed);
        subs.retain_mut(|sub| {
            // After a failed pass the standing rows are suspect:
            // incremental maintenance would build on bad state, so go
            // straight to a resync until one succeeds.
            let maintained = if sub.consecutive_failures > 0 {
                None
            } else {
                #[cfg(any(test, feature = "fault-injection"))]
                let result = if take_one(&self.inject_maintain_failures) {
                    Err(injected_error("maintain"))
                } else {
                    self.processor.maintain(&mut sub.standing, records)
                };
                #[cfg(not(any(test, feature = "fault-injection")))]
                let result = self.processor.maintain(&mut sub.standing, records);
                Some(result)
            };

            let delta = match maintained {
                Some(Ok(delta)) => {
                    sub.consecutive_failures = 0;
                    delta
                }
                failed => {
                    // Maintenance failed (e.g. a full recompute hit a
                    // substrate fault): the standing rows can no longer
                    // be trusted as-is, so resynchronize them with a
                    // counted full recompute instead of dropping the
                    // subscription outright.
                    if failed.is_some() {
                        self.maintain_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    #[cfg(any(test, feature = "fault-injection"))]
                    let resynced = if take_one(&self.inject_resync_failures) {
                        Err(injected_error("resync"))
                    } else {
                        self.processor.resync(&mut sub.standing)
                    };
                    #[cfg(not(any(test, feature = "fault-injection")))]
                    let resynced = self.processor.resync(&mut sub.standing);

                    match resynced {
                        Ok(delta) => {
                            sub.consecutive_failures = 0;
                            self.resyncs.fetch_add(1, Ordering::Relaxed);
                            delta
                        }
                        Err(_) => {
                            // Even the full recompute failed. Keep the
                            // subscription for a few more rounds — the
                            // fault may be transient — but drop it once
                            // failure is persistent: stale rows must
                            // not keep masquerading as live.
                            sub.consecutive_failures += 1;
                            if sub.consecutive_failures >= MAX_CONSECUTIVE_MAINTENANCE_FAILURES {
                                self.dropped.fetch_add(1, Ordering::Relaxed);
                                return false;
                            }
                            return true;
                        }
                    }
                }
            };
            // An empty delta keeps the subscription as-is; a dropped
            // handle is noticed (and pruned) on its next non-empty push.
            if delta.is_empty() {
                return true;
            }
            self.deltas_pushed.fetch_add(1, Ordering::Relaxed);
            if sub.tx.send(delta).is_ok() {
                true
            } else {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        });
    }

    fn stats(&self) -> LiveStats {
        LiveStats {
            active: self.subs.lock().len() as u64,
            deltas_pushed: self.deltas_pushed.load(Ordering::Relaxed),
            records_applied: self.records_applied.load(Ordering::Relaxed),
            maintain_failures: self.maintain_failures.load(Ordering::Relaxed),
            resyncs: self.resyncs.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    /// Arms deterministic maintenance-failure injection: the next
    /// `maintain` failing-calls and `resync` failing-calls each error.
    /// Tests and the chaos simulator use this to exercise the
    /// resync-then-drop path without a real substrate fault.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn inject_failures(&self, maintain: u64, resync: u64) {
        self.inject_maintain_failures
            .fetch_add(maintain, Ordering::Relaxed);
        self.inject_resync_failures
            .fetch_add(resync, Ordering::Relaxed);
    }
}

impl RecordOperator for SubscriptionRegistry {
    fn on_records(&self, _store: &ViewStore, records: &[ChangeRecord]) {
        self.apply(records);
    }
}

/// The lazily-created live-query machinery of one [`Pdsms`]: a record
/// engine over the store with the subscription registry attached.
pub(crate) struct LiveState {
    engine: Arc<RecordEngine>,
    registry: Arc<SubscriptionRegistry>,
}

impl Pdsms {
    fn live_state(&self) -> &LiveState {
        self.live.get_or_init(|| {
            let engine = Arc::new(RecordEngine::attach(Arc::clone(&self.store)));
            let registry = Arc::new(SubscriptionRegistry::new(self.query_processor()));
            engine.register(Arc::clone(&registry) as Arc<dyn RecordOperator>);
            LiveState { engine, registry }
        })
    }

    /// Registers `request` as a standing query: executes it once (under
    /// the admission gate, when enabled) and returns a [`LiveQuery`]
    /// whose delta channel is fed by [`Pdsms::pump_subscriptions`].
    ///
    /// A request whose budget truncates the execution is rejected — a
    /// partial result never seeds a standing one.
    pub fn subscribe(&self, request: &QueryRequest) -> Result<LiveQuery> {
        let state = self.live_state();
        let deadline = request.requested_budget().and_then(|b| b.deadline);
        let _permit = match &self.governor {
            Some(gate) => Some(gate.admit(deadline)?),
            None => None,
        };
        // Deliver anything pending first, so existing subscriptions are
        // current and the new standing result seeds against a drained
        // record log. (Records racing past this point are re-applied on
        // the next pump; delta maintenance is convergent, so replaying
        // a change the seeding execution already saw is harmless.)
        state.engine.pump();
        state.registry.subscribe(request)
    }

    /// Drives every live query: drains pending change records and
    /// applies them to each standing result, pushing non-empty deltas
    /// to subscribers. Returns the number of records dispatched. The
    /// ingest paths call this automatically; sync-round drivers should
    /// call it after each round.
    pub fn pump_subscriptions(&self) -> usize {
        match self.live.get() {
            Some(state) => state.engine.pump(),
            None => 0,
        }
    }

    /// Counter totals for this system's live queries.
    pub fn live_stats(&self) -> LiveStats {
        match self.live.get() {
            Some(state) => state.registry.stats(),
            None => LiveStats::default(),
        }
    }

    /// Arms deterministic live-maintenance failure injection (see
    /// [`SubscriptionRegistry::inject_failures`]).
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn inject_live_failures(&self, maintain: u64, resync: u64) {
        self.live_state().registry.inject_failures(maintain, resync);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FsPlugin;
    use idm_vfs::{NodeId, VirtualFs};

    fn t() -> Timestamp {
        Timestamp::from_ymd(2006, 8, 1).unwrap()
    }

    fn system_with_file(
        name: &str,
        body: &str,
    ) -> (Arc<VirtualFs>, Pdsms, crate::SynchronizationManager) {
        let fs = Arc::new(VirtualFs::new(t()));
        let dir = fs.mkdir_p("/docs", t()).unwrap();
        fs.create_file(dir, name, body.to_owned(), t()).unwrap();
        let mut system = Pdsms::new();
        let plugin = Arc::new(FsPlugin::new(Arc::clone(&fs), NodeId::ROOT));
        system.register_source(Arc::clone(&plugin) as Arc<dyn crate::source::DataSourcePlugin>);
        system.index_all().unwrap();
        let sync = crate::SynchronizationManager::attach(
            plugin,
            Arc::clone(system.store()),
            Arc::clone(system.indexes()),
        )
        .unwrap();
        (fs, system, sync)
    }

    #[test]
    fn sync_rounds_drive_subscriptions() {
        let (fs, system, sync) = system_with_file("a.txt", "database tuning");
        let live = system
            .subscribe(&QueryRequest::new(r#""database""#).subscribe())
            .unwrap();
        assert_eq!(live.initial().rows.len(), 1);
        assert!(live.poll().is_empty(), "nothing changed yet");

        // A new matching file arrives; the sync round ingests it, the
        // pump delivers its records to the standing query.
        let dir = fs.resolve("/docs").unwrap();
        fs.create_file(dir, "b.txt", "more database notes", t())
            .unwrap();
        sync.sync_round().unwrap();
        system.pump_subscriptions();

        let deltas = live.poll();
        assert_eq!(deltas.len(), 1, "one coalesced batch per round");
        assert_eq!(deltas[0].added.len(), 1);
        assert!(deltas[0].removed.is_empty());
        // The maintained rows equal a fresh query.
        let fresh = system.run(&QueryRequest::new(r#""database""#)).unwrap();
        assert_eq!(deltas[0].total, fresh.result.rows.len());
        assert!(system.live_stats().deltas_pushed >= 1);
    }

    #[test]
    fn removals_flow_through_as_removed_rows() {
        let (fs, system, sync) = system_with_file("a.txt", "database tuning");
        let live = system
            .subscribe(&QueryRequest::new(r#""database""#))
            .unwrap();
        assert_eq!(live.initial().rows.len(), 1);

        fs.remove(fs.resolve("/docs/a.txt").unwrap()).unwrap();
        sync.sync_round().unwrap();
        system.pump_subscriptions();

        let deltas = live.poll();
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].added.is_empty());
        assert_eq!(deltas[0].removed.len(), 1);
        assert_eq!(deltas[0].total, 0);
    }

    #[test]
    fn irrelevant_changes_push_nothing() {
        let (fs, system, sync) = system_with_file("a.txt", "database tuning");
        let live = system
            .subscribe(&QueryRequest::new(r#""database""#))
            .unwrap();
        let dir = fs.resolve("/docs").unwrap();
        fs.create_file(dir, "c.txt", "tomato soup recipe", t())
            .unwrap();
        sync.sync_round().unwrap();
        system.pump_subscriptions();
        assert!(live.poll().is_empty(), "unrelated change, no delta");
    }

    #[test]
    fn partial_execution_never_seeds_a_subscription() {
        let (_fs, system, _sync) = system_with_file("a.txt", "database tuning");
        let budget = QueryBudget {
            cancel_after_checks: Some(1),
            partial: true,
            ..QueryBudget::default()
        };
        let err = system
            .subscribe(&QueryRequest::new(r#""database""#).budget(budget))
            .unwrap_err();
        assert!(err.to_string().contains("partial"), "{err}");
        assert_eq!(system.live_stats().active, 0);
    }

    #[test]
    fn failed_maintenance_resyncs_instead_of_dropping() {
        let (fs, system, sync) = system_with_file("a.txt", "database tuning");
        let live = system
            .subscribe(&QueryRequest::new(r#""database""#))
            .unwrap();
        assert_eq!(system.live_stats().active, 1);

        // The next maintenance pass fails; the resync succeeds and the
        // subscription survives with correct rows.
        system.inject_live_failures(1, 0);
        let dir = fs.resolve("/docs").unwrap();
        fs.create_file(dir, "b.txt", "database extras", t())
            .unwrap();
        sync.sync_round().unwrap();
        system.pump_subscriptions();

        let stats = system.live_stats();
        assert_eq!(stats.active, 1, "subscription survived the failure");
        assert_eq!(stats.maintain_failures, 1);
        assert_eq!(stats.resyncs, 1);
        assert_eq!(stats.dropped, 0);
        // The resync delta carries the new row; totals match a fresh run.
        let deltas = live.poll();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].added.len(), 1);
        let fresh = system.run(&QueryRequest::new(r#""database""#)).unwrap();
        assert_eq!(deltas[0].total, fresh.result.rows.len());

        // And the subscription keeps maintaining normally afterwards.
        fs.create_file(dir, "c.txt", "database more", t()).unwrap();
        sync.sync_round().unwrap();
        system.pump_subscriptions();
        assert_eq!(live.poll().len(), 1);
        assert_eq!(system.live_stats().active, 1);
    }

    #[test]
    fn persistent_failure_drops_only_after_the_limit() {
        let (fs, system, sync) = system_with_file("a.txt", "database tuning");
        let live = system
            .subscribe(&QueryRequest::new(r#""database""#))
            .unwrap();

        // Fail maintenance once and every resync attempt: pass 1 is
        // maintain-fail + resync-fail, passes 2..N go straight to the
        // (failing) resync. Only after MAX consecutive failures is the
        // subscription dropped.
        let max = u64::from(MAX_CONSECUTIVE_MAINTENANCE_FAILURES);
        system.inject_live_failures(1, max);
        let dir = fs.resolve("/docs").unwrap();
        for round in 0..MAX_CONSECUTIVE_MAINTENANCE_FAILURES {
            assert_eq!(
                system.live_stats().active,
                1,
                "still alive before round {round}"
            );
            let name = format!("f{round}.txt");
            fs.create_file(dir, &name, "database row", t()).unwrap();
            sync.sync_round().unwrap();
            system.pump_subscriptions();
        }
        let stats = system.live_stats();
        assert_eq!(stats.active, 0, "dropped after {max} consecutive failures");
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.maintain_failures, 1, "only the first pass maintained");
        assert_eq!(stats.resyncs, 0);
        drop(live);
    }

    #[test]
    fn dropped_handles_are_pruned() {
        let (fs, system, sync) = system_with_file("a.txt", "database tuning");
        let live = system
            .subscribe(&QueryRequest::new(r#""database""#))
            .unwrap();
        assert_eq!(system.live_stats().active, 1);
        drop(live);
        let dir = fs.resolve("/docs").unwrap();
        fs.create_file(dir, "d.txt", "database again", t()).unwrap();
        sync.sync_round().unwrap();
        system.pump_subscriptions();
        assert_eq!(system.live_stats().active, 0);
        assert!(system.live_stats().dropped >= 1);
    }
}
