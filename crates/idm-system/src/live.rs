//! Live queries: standing subscriptions over the dataspace.
//!
//! A subscription is a [`QueryRequest`] whose result *stays* answered:
//! [`Pdsms::subscribe`] executes it once, seeds a delta-maintained
//! standing result ([`idm_query::MaintainedPlan`]), and hands back a
//! [`LiveQuery`] — the initial rows plus a channel of
//! [`ResultDelta`] batches. From then on, every store mutation's
//! logical [`ChangeRecord`]s flow through an [`idm_streams::RecordEngine`]
//! into the [`SubscriptionRegistry`], which maintains each standing
//! result incrementally (falling back to bounded re-expansion or full
//! recompute only where a node cannot be maintained soundly) and pushes
//! the non-empty deltas to subscribers.
//!
//! Delivery is pull-paced: the engine dispatches when
//! [`Pdsms::pump_subscriptions`] runs — which the ingest paths
//! (`index_all*`) do automatically, and which sync-round drivers (RSS
//! polls, IMAP rounds, filesystem notification sweeps) call after each
//! round — so a sync round's worth of changes arrives as one coalesced
//! delta batch per subscription.
//!
//! The PR 7 partiality gate extends here: a budget-truncated execution
//! is a *subset* of the true rows and never seeds a subscription
//! (subscribing with an exhausted budget is an error, not a silently
//! wrong feed), and maintenance always runs unbudgeted, so a standing
//! result is never updated from partial state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use idm_core::prelude::*;
use idm_query::{
    MaintainedPlan, QueryBudget, QueryProcessor, QueryRequest, QueryResult, ResultDelta,
};
use idm_streams::{RecordEngine, RecordOperator};
use parking_lot::Mutex;

use crate::Pdsms;

/// A standing query handle: the rows at subscription time plus the
/// stream of changes since. Dropping it unsubscribes (the registry
/// prunes the subscription on its next push).
pub struct LiveQuery {
    id: u64,
    initial: QueryResult,
    deltas: Receiver<ResultDelta>,
}

impl std::fmt::Debug for LiveQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveQuery")
            .field("id", &self.id)
            .field("initial_rows", &self.initial.rows.len())
            .finish_non_exhaustive()
    }
}

impl LiveQuery {
    /// The subscription id (unique within the system).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The full result at subscription time.
    pub fn initial(&self) -> &QueryResult {
        &self.initial
    }

    /// Drains every delta pushed since the last poll (empty when
    /// nothing relevant changed).
    pub fn poll(&self) -> Vec<ResultDelta> {
        self.deltas.try_iter().collect()
    }
}

struct Subscription {
    standing: MaintainedPlan,
    tx: Sender<ResultDelta>,
}

/// Counter totals for a system's live queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Currently registered subscriptions.
    pub active: u64,
    /// Non-empty delta batches pushed to subscribers.
    pub deltas_pushed: u64,
    /// Change records applied across all subscriptions.
    pub records_applied: u64,
    /// Subscriptions dropped because maintenance failed.
    pub maintain_failures: u64,
    /// Subscriptions pruned (handle dropped or maintenance failed).
    pub dropped: u64,
}

/// Maintains every standing query against incoming change-record
/// batches. Registered as a [`RecordOperator`] on the system's
/// [`RecordEngine`], so pumping the engine maintains all subscriptions.
pub struct SubscriptionRegistry {
    processor: QueryProcessor,
    subs: Mutex<Vec<Subscription>>,
    next_id: AtomicU64,
    deltas_pushed: AtomicU64,
    records_applied: AtomicU64,
    maintain_failures: AtomicU64,
    dropped: AtomicU64,
}

impl SubscriptionRegistry {
    fn new(processor: QueryProcessor) -> Self {
        SubscriptionRegistry {
            processor,
            subs: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            deltas_pushed: AtomicU64::new(0),
            records_applied: AtomicU64::new(0),
            maintain_failures: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    fn subscribe(&self, request: &QueryRequest) -> Result<LiveQuery> {
        let plan = self.processor.plan_iql(request.iql())?;
        let budget = request.requested_budget().unwrap_or(QueryBudget::none());
        let (result, standing) = self.processor.execute_standing(&plan, budget)?;
        let Some(standing) = standing else {
            // Either the budget truncated the execution (a partial
            // result must never seed a standing one) or the plan shape
            // cannot be maintained soundly.
            return Err(IdmError::Provider {
                detail: if result.stats.partial {
                    "subscribe: budget-truncated (partial) execution cannot seed a standing result"
                        .into()
                } else {
                    "subscribe: plan shape is not maintainable".into()
                },
                source: Some("live".into()),
                vid: None,
            });
        };
        let (tx, rx) = unbounded();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subs.lock().push(Subscription { standing, tx });
        Ok(LiveQuery {
            id,
            initial: result,
            deltas: rx,
        })
    }

    fn apply(&self, records: &[ChangeRecord]) {
        if records.is_empty() {
            return;
        }
        let mut subs = self.subs.lock();
        self.records_applied
            .fetch_add((records.len() * subs.len()) as u64, Ordering::Relaxed);
        subs.retain_mut(
            |sub| match self.processor.maintain(&mut sub.standing, records) {
                Ok(delta) => {
                    // An empty delta keeps the subscription as-is; a
                    // dropped handle is noticed (and pruned) on its
                    // next non-empty push.
                    if delta.is_empty() {
                        return true;
                    }
                    self.deltas_pushed.fetch_add(1, Ordering::Relaxed);
                    if sub.tx.send(delta).is_ok() {
                        true
                    } else {
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                        false
                    }
                }
                Err(_) => {
                    // Maintenance failed (e.g. a full recompute hit a
                    // substrate fault): the standing rows can no longer
                    // be trusted, so the subscription ends rather than
                    // serving stale results as live.
                    self.maintain_failures.fetch_add(1, Ordering::Relaxed);
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    false
                }
            },
        );
    }

    fn stats(&self) -> LiveStats {
        LiveStats {
            active: self.subs.lock().len() as u64,
            deltas_pushed: self.deltas_pushed.load(Ordering::Relaxed),
            records_applied: self.records_applied.load(Ordering::Relaxed),
            maintain_failures: self.maintain_failures.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

impl RecordOperator for SubscriptionRegistry {
    fn on_records(&self, _store: &ViewStore, records: &[ChangeRecord]) {
        self.apply(records);
    }
}

/// The lazily-created live-query machinery of one [`Pdsms`]: a record
/// engine over the store with the subscription registry attached.
pub(crate) struct LiveState {
    engine: Arc<RecordEngine>,
    registry: Arc<SubscriptionRegistry>,
}

impl Pdsms {
    fn live_state(&self) -> &LiveState {
        self.live.get_or_init(|| {
            let engine = Arc::new(RecordEngine::attach(Arc::clone(&self.store)));
            let registry = Arc::new(SubscriptionRegistry::new(self.query_processor()));
            engine.register(Arc::clone(&registry) as Arc<dyn RecordOperator>);
            LiveState { engine, registry }
        })
    }

    /// Registers `request` as a standing query: executes it once (under
    /// the admission gate, when enabled) and returns a [`LiveQuery`]
    /// whose delta channel is fed by [`Pdsms::pump_subscriptions`].
    ///
    /// A request whose budget truncates the execution is rejected — a
    /// partial result never seeds a standing one.
    pub fn subscribe(&self, request: &QueryRequest) -> Result<LiveQuery> {
        let state = self.live_state();
        let deadline = request.requested_budget().and_then(|b| b.deadline);
        let _permit = match &self.governor {
            Some(gate) => Some(gate.admit(deadline)?),
            None => None,
        };
        // Deliver anything pending first, so existing subscriptions are
        // current and the new standing result seeds against a drained
        // record log. (Records racing past this point are re-applied on
        // the next pump; delta maintenance is convergent, so replaying
        // a change the seeding execution already saw is harmless.)
        state.engine.pump();
        state.registry.subscribe(request)
    }

    /// Drives every live query: drains pending change records and
    /// applies them to each standing result, pushing non-empty deltas
    /// to subscribers. Returns the number of records dispatched. The
    /// ingest paths call this automatically; sync-round drivers should
    /// call it after each round.
    pub fn pump_subscriptions(&self) -> usize {
        match self.live.get() {
            Some(state) => state.engine.pump(),
            None => 0,
        }
    }

    /// Counter totals for this system's live queries.
    pub fn live_stats(&self) -> LiveStats {
        match self.live.get() {
            Some(state) => state.registry.stats(),
            None => LiveStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FsPlugin;
    use idm_vfs::{NodeId, VirtualFs};

    fn t() -> Timestamp {
        Timestamp::from_ymd(2006, 8, 1).unwrap()
    }

    fn system_with_file(
        name: &str,
        body: &str,
    ) -> (Arc<VirtualFs>, Pdsms, crate::SynchronizationManager) {
        let fs = Arc::new(VirtualFs::new(t()));
        let dir = fs.mkdir_p("/docs", t()).unwrap();
        fs.create_file(dir, name, body.to_owned(), t()).unwrap();
        let mut system = Pdsms::new();
        let plugin = Arc::new(FsPlugin::new(Arc::clone(&fs), NodeId::ROOT));
        system.register_source(Arc::clone(&plugin) as Arc<dyn crate::source::DataSourcePlugin>);
        system.index_all().unwrap();
        let sync = crate::SynchronizationManager::attach(
            plugin,
            Arc::clone(system.store()),
            Arc::clone(system.indexes()),
        )
        .unwrap();
        (fs, system, sync)
    }

    #[test]
    fn sync_rounds_drive_subscriptions() {
        let (fs, system, sync) = system_with_file("a.txt", "database tuning");
        let live = system
            .subscribe(&QueryRequest::new(r#""database""#).subscribe())
            .unwrap();
        assert_eq!(live.initial().rows.len(), 1);
        assert!(live.poll().is_empty(), "nothing changed yet");

        // A new matching file arrives; the sync round ingests it, the
        // pump delivers its records to the standing query.
        let dir = fs.resolve("/docs").unwrap();
        fs.create_file(dir, "b.txt", "more database notes", t())
            .unwrap();
        sync.sync_round().unwrap();
        system.pump_subscriptions();

        let deltas = live.poll();
        assert_eq!(deltas.len(), 1, "one coalesced batch per round");
        assert_eq!(deltas[0].added.len(), 1);
        assert!(deltas[0].removed.is_empty());
        // The maintained rows equal a fresh query.
        let fresh = system.run(&QueryRequest::new(r#""database""#)).unwrap();
        assert_eq!(deltas[0].total, fresh.result.rows.len());
        assert!(system.live_stats().deltas_pushed >= 1);
    }

    #[test]
    fn removals_flow_through_as_removed_rows() {
        let (fs, system, sync) = system_with_file("a.txt", "database tuning");
        let live = system
            .subscribe(&QueryRequest::new(r#""database""#))
            .unwrap();
        assert_eq!(live.initial().rows.len(), 1);

        fs.remove(fs.resolve("/docs/a.txt").unwrap()).unwrap();
        sync.sync_round().unwrap();
        system.pump_subscriptions();

        let deltas = live.poll();
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].added.is_empty());
        assert_eq!(deltas[0].removed.len(), 1);
        assert_eq!(deltas[0].total, 0);
    }

    #[test]
    fn irrelevant_changes_push_nothing() {
        let (fs, system, sync) = system_with_file("a.txt", "database tuning");
        let live = system
            .subscribe(&QueryRequest::new(r#""database""#))
            .unwrap();
        let dir = fs.resolve("/docs").unwrap();
        fs.create_file(dir, "c.txt", "tomato soup recipe", t())
            .unwrap();
        sync.sync_round().unwrap();
        system.pump_subscriptions();
        assert!(live.poll().is_empty(), "unrelated change, no delta");
    }

    #[test]
    fn partial_execution_never_seeds_a_subscription() {
        let (_fs, system, _sync) = system_with_file("a.txt", "database tuning");
        let budget = QueryBudget {
            cancel_after_checks: Some(1),
            partial: true,
            ..QueryBudget::default()
        };
        let err = system
            .subscribe(&QueryRequest::new(r#""database""#).budget(budget))
            .unwrap_err();
        assert!(err.to_string().contains("partial"), "{err}");
        assert_eq!(system.live_stats().active, 0);
    }

    #[test]
    fn dropped_handles_are_pruned() {
        let (fs, system, sync) = system_with_file("a.txt", "database tuning");
        let live = system
            .subscribe(&QueryRequest::new(r#""database""#))
            .unwrap();
        assert_eq!(system.live_stats().active, 1);
        drop(live);
        let dir = fs.resolve("/docs").unwrap();
        fs.create_file(dir, "d.txt", "database again", t()).unwrap();
        sync.sync_round().unwrap();
        system.pump_subscriptions();
        assert_eq!(system.live_stats().active, 0);
        assert!(system.live_stats().dropped >= 1);
    }
}
