//! System health: periodic integrity scrub + index audit rounds.
//!
//! The [`HealthMonitor`] orchestrates self-healing the way
//! [`crate::SynchronizationManager`] orchestrates sync: the caller (a
//! shell command, a background thread, the chaos driver) invokes
//! [`HealthMonitor::round`] periodically, and each round
//!
//! 1. runs one budgeted **scrub** over the durable artifacts (snapshot
//!    chain + WAL segments) via
//!    [`DurabilityManager::scrub_round`](idm_core::durability::DurabilityManager::scrub_round)
//!    — damage is quarantined and repaired by a proactive checkpoint;
//! 2. verifies the **index artifact** (`indexes.idm`) checksum; a
//!    damaged file is quarantined and rewritten from the live bundle;
//! 3. cross-checks a **sample of index postings** against the store
//!    ([`idm_index::audit`]), escalating to a full audit every
//!    [`HealthConfig::full_audit_every`] rounds, and rebuilds any
//!    drifted view through the segment path.
//!
//! Everything is budgeted and incremental, so a health round is safe to
//! interleave with foreground queries; the monitor accumulates
//! [`HealthStats`] across rounds for the `\health` shell command.

use std::path::PathBuf;
use std::time::Instant;

use idm_core::durability::{ScrubBudget, ScrubReport, Scrubber};
use idm_core::prelude::*;
use idm_index::{AuditMemo, AuditReport, AuditScope};

use crate::{durability_err, Pdsms, INDEX_FILE};

/// Tuning for the health monitor.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Per-round scrub budget over the durable artifacts.
    pub scrub_budget: ScrubBudget,
    /// Views cross-checked per sampled audit round.
    pub audit_sample: usize,
    /// Every Nth round runs a full audit (with stale-entry detection)
    /// instead of a sampled one; 0 disables full audits.
    pub full_audit_every: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            // Bounded by default: steady-state rounds cost at most 8 MiB
            // of reads, resuming across rounds via the scrub cursor.
            scrub_budget: ScrubBudget::bounded(8 * 1024 * 1024),
            audit_sample: 64,
            full_audit_every: 8,
        }
    }
}

/// What happened to the on-disk index artifact this round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexArtifactOutcome {
    /// Checksum verified; `bytes` were covered.
    Clean {
        /// Size of the verified artifact.
        bytes: u64,
    },
    /// Damaged: quarantined at the given path and rewritten from the
    /// live bundle.
    Repaired {
        /// Where the damaged artifact was moved.
        quarantined: PathBuf,
    },
    /// No index artifact on disk (never checkpointed); nothing to do.
    Missing,
}

/// One health round's findings and repairs.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// 1-based round number.
    pub round: u64,
    /// Durable-artifact scrub outcome (empty for in-memory systems).
    pub scrub: ScrubReport,
    /// Index artifact verification (None for in-memory systems).
    pub index_artifact: Option<IndexArtifactOutcome>,
    /// Index postings audit outcome.
    pub audit: AuditReport,
    /// Views rebuilt from the store after audit mismatches.
    pub index_repaired: usize,
    /// Scrub throughput this round (bytes verified / wall time).
    pub bytes_per_sec: f64,
}

impl HealthReport {
    /// Whether this round found any damage at all.
    pub fn healthy(&self) -> bool {
        self.scrub.findings.is_empty()
            && !matches!(
                self.index_artifact,
                Some(IndexArtifactOutcome::Repaired { .. })
            )
            && self.audit.is_clean()
    }
}

impl std::fmt::Display for HealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "round {}: {}; audit checked {} view(s) ({} skipped unchanged)",
            self.round, self.scrub, self.audit.views_checked, self.audit.skipped_unchanged
        )?;
        match &self.index_artifact {
            Some(IndexArtifactOutcome::Clean { bytes }) => {
                write!(f, "; index artifact clean ({bytes} bytes)")?
            }
            Some(IndexArtifactOutcome::Repaired { quarantined }) => write!(
                f,
                "; index artifact DAMAGED -> quarantined at {} and rewritten",
                quarantined.display()
            )?,
            Some(IndexArtifactOutcome::Missing) => write!(f, "; no index artifact")?,
            None => {}
        }
        if !self.audit.mismatches.is_empty() || !self.audit.stale_entries.is_empty() {
            write!(
                f,
                "; {} drifted + {} stale index entr(ies), {} repaired",
                self.audit.mismatches.len(),
                self.audit.stale_entries.len(),
                self.index_repaired
            )?;
        }
        write!(f, "; {:.1} MB/s scrub", self.bytes_per_sec / 1e6)
    }
}

/// Cumulative totals across every round of one monitor.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HealthStats {
    /// Health rounds run.
    pub rounds: u64,
    /// Bytes checksum-verified (scrub + index artifact).
    pub bytes_verified: u64,
    /// Damaged durable artifacts found.
    pub findings: u64,
    /// Artifacts quarantined (scrub + index artifact).
    pub quarantined: u64,
    /// Proactive repair checkpoints triggered.
    pub repair_checkpoints: u64,
    /// Views cross-checked by audits.
    pub views_audited: u64,
    /// Drifted or stale index entries found.
    pub index_mismatches: u64,
    /// Views rebuilt by audit repair.
    pub index_repaired: u64,
}

/// Periodic scrub/audit orchestrator for one [`Pdsms`].
pub struct HealthMonitor {
    config: HealthConfig,
    scrubber: Scrubber,
    memo: AuditMemo,
    stats: HealthStats,
}

impl HealthMonitor {
    /// A monitor with the given tuning.
    pub fn new(config: HealthConfig) -> Self {
        HealthMonitor {
            scrubber: Scrubber::new(config.scrub_budget),
            memo: AuditMemo::new(),
            stats: HealthStats::default(),
            config,
        }
    }

    /// Cumulative totals.
    pub fn stats(&self) -> HealthStats {
        self.stats
    }

    /// Runs one health round against `system` (see module docs).
    pub fn round(&mut self, system: &Pdsms) -> Result<HealthReport> {
        let started = Instant::now();
        let round = self.stats.rounds + 1;

        let scrub = if system.is_durable() {
            system.scrub_round(&mut self.scrubber)?
        } else {
            ScrubReport::default()
        };
        let index_artifact = system.scrub_index_artifact()?;

        let scope = if self.config.full_audit_every > 0
            && round.is_multiple_of(self.config.full_audit_every)
        {
            AuditScope::Full
        } else {
            AuditScope::Sampled {
                sample: self.config.audit_sample,
                seed: round,
            }
        };
        let audit = system.audit_indexes(scope, Some(&mut self.memo))?;
        let index_repaired = if audit.is_clean() {
            0
        } else {
            system.repair_indexes(&audit)?
        };

        let index_bytes = match &index_artifact {
            Some(IndexArtifactOutcome::Clean { bytes }) => *bytes,
            _ => 0,
        };
        let bytes = scrub.bytes_verified + index_bytes;
        let elapsed = started.elapsed().as_secs_f64().max(1e-9);

        self.stats.rounds = round;
        self.stats.bytes_verified += bytes;
        self.stats.findings += scrub.findings.len() as u64;
        self.stats.quarantined += scrub.quarantined.len() as u64;
        if matches!(index_artifact, Some(IndexArtifactOutcome::Repaired { .. })) {
            self.stats.quarantined += 1;
        }
        if scrub.repaired.is_some() {
            self.stats.repair_checkpoints += 1;
        }
        self.stats.views_audited += audit.views_checked as u64;
        self.stats.index_mismatches += (audit.mismatches.len() + audit.stale_entries.len()) as u64;
        self.stats.index_repaired += index_repaired as u64;

        Ok(HealthReport {
            round,
            scrub,
            index_artifact,
            audit,
            index_repaired,
            bytes_per_sec: bytes as f64 / elapsed,
        })
    }
}

impl Pdsms {
    /// Runs one budgeted scrub round over this dataspace's durable
    /// artifacts, quarantining and repairing damage (see
    /// [`idm_core::durability::DurabilityManager::scrub_round`]). After
    /// a repair checkpoint the index artifact is re-stamped with the new
    /// epoch, keeping the recovery handshake exact. Errors when the
    /// system is not durable.
    pub fn scrub_round(&self, scrubber: &mut Scrubber) -> Result<ScrubReport> {
        let manager = self.durability.as_ref().ok_or_else(|| IdmError::Parse {
            detail: "dataspace is not durable (use make_durable or open)".into(),
        })?;
        let (report, dir) = {
            let mut guard = manager.lock();
            let report = guard
                .scrub_round(&self.store, &self.lineage, scrubber)
                .map_err(durability_err)?;
            (report, guard.dir().to_path_buf())
        };
        if let Some(stats) = &report.repaired {
            idm_index::persist::save_with_epoch(&self.indexes, &dir.join(INDEX_FILE), stats.lsn)
                .map_err(durability_err)?;
        }
        Ok(report)
    }

    /// Verifies the on-disk index artifact's checksum; a damaged file
    /// is quarantined and rewritten from the live bundle, stamped with
    /// the current log sequence number. Returns `None` for in-memory
    /// systems.
    pub fn scrub_index_artifact(&self) -> Result<Option<IndexArtifactOutcome>> {
        let Some(manager) = self.durability.as_ref() else {
            return Ok(None);
        };
        let (dir, lsn) = {
            let guard = manager.lock();
            (guard.dir().to_path_buf(), guard.lsn())
        };
        let path = dir.join(INDEX_FILE);
        match idm_index::persist::verify(&path) {
            Ok(bytes) => Ok(Some(IndexArtifactOutcome::Clean { bytes })),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Ok(Some(IndexArtifactOutcome::Missing))
            }
            Err(_) => {
                let quarantined =
                    idm_core::durability::quarantine(&path).map_err(durability_err)?;
                idm_index::persist::save_with_epoch(&self.indexes, &path, lsn)
                    .map_err(durability_err)?;
                Ok(Some(IndexArtifactOutcome::Repaired { quarantined }))
            }
        }
    }

    /// Cross-checks index postings against the live store (see
    /// [`idm_index::audit`]).
    pub fn audit_indexes(
        &self,
        scope: AuditScope,
        memo: Option<&mut AuditMemo>,
    ) -> Result<AuditReport> {
        idm_index::audit(&self.indexes, &self.store, scope, memo)
    }

    /// Rebuilds every view an audit found drifted and removes stale
    /// catalog entries; returns the number of views repaired.
    pub fn repair_indexes(&self, report: &AuditReport) -> Result<usize> {
        idm_index::repair(&self.indexes, &self.store, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("idm-health-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_system(dir: &std::path::Path) -> Pdsms {
        let mut system = Pdsms::new();
        for i in 0..5 {
            system
                .store()
                .build(format!("doc{i}.txt"))
                .text(format!("health check document {i}"))
                .insert();
        }
        let vids = system.store().vids();
        for vid in vids {
            system
                .indexes()
                .index_view(system.store(), vid, "dataspace")
                .unwrap();
        }
        system.make_durable(dir).unwrap();
        system.checkpoint().unwrap();
        system
    }

    #[test]
    fn healthy_system_reports_healthy_rounds() {
        let dir = tmp("clean");
        let system = durable_system(&dir);
        let mut monitor = HealthMonitor::new(HealthConfig::default());
        let report = monitor.round(&system).unwrap();
        assert!(report.healthy(), "{report}");
        assert!(report.scrub.bytes_verified > 0);
        assert!(matches!(
            report.index_artifact,
            Some(IndexArtifactOutcome::Clean { .. })
        ));
        assert_eq!(monitor.stats().rounds, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_index_artifact_is_quarantined_and_rewritten() {
        let dir = tmp("indexflip");
        let system = durable_system(&dir);
        let path = dir.join(INDEX_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let mut monitor = HealthMonitor::new(HealthConfig::default());
        let report = monitor.round(&system).unwrap();
        assert!(!report.healthy());
        assert!(matches!(
            report.index_artifact,
            Some(IndexArtifactOutcome::Repaired { .. })
        ));
        assert!(dir.join("indexes.idm.quarantine").exists());
        // The rewritten artifact verifies and loads.
        assert!(idm_index::persist::verify(&path).is_ok());
        let next = monitor.round(&system).unwrap();
        assert!(next.healthy(), "{next}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drifted_postings_are_audited_and_repaired() {
        let dir = tmp("audit");
        let system = durable_system(&dir);
        let vid = system.store().vids()[0];
        system.indexes().content.remove(vid);

        let mut monitor = HealthMonitor::new(HealthConfig {
            full_audit_every: 1, // force full audits in this test
            ..HealthConfig::default()
        });
        let report = monitor.round(&system).unwrap();
        assert_eq!(report.audit.mismatches.len(), 1, "{report}");
        assert_eq!(report.index_repaired, 1);
        let next = monitor.round(&system).unwrap();
        assert!(next.healthy(), "{next}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_memory_systems_health_check_without_durability() {
        let system = Pdsms::new();
        let vid = system.store().build("x").text("y").insert();
        system
            .indexes()
            .index_view(system.store(), vid, "dataspace")
            .unwrap();
        let mut monitor = HealthMonitor::new(HealthConfig::default());
        let report = monitor.round(&system).unwrap();
        assert!(report.healthy(), "{report:?}");
        assert_eq!(report.index_artifact, None);
        assert_eq!(report.scrub.artifacts_checked, 0);
    }
}
