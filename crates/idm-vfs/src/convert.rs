//! Instantiating the files&folders data model in iDM (Section 3.2).
//!
//! Every folder becomes a `folder` resource view (children in the set
//! `S`), every file a `file` view whose content component reads the file
//! bytes **lazily** from the filesystem (the bytes are extensional base
//! facts, but the iDM graph does not materialize them until asked —
//! Section 4.2), and every folder link becomes a plain view whose group
//! points at the target folder's view, which is how Figure 1's cyclic
//! `Projects → PIM → All Projects → Projects` path arises.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use idm_core::prelude::*;

use crate::{NodeId, NodeKind, VirtualFs};

/// The result of instantiating a filesystem subtree in a view store.
#[derive(Debug)]
pub struct FsMapping {
    /// The view representing the subtree root.
    pub root: Vid,
    /// Filesystem node → resource view.
    pub by_node: HashMap<NodeId, Vid>,
}

impl FsMapping {
    /// The view for a filesystem node, if it was part of the subtree.
    pub fn view_of(&self, node: NodeId) -> Option<Vid> {
        self.by_node.get(&node).copied()
    }
}

struct FileContentProvider {
    fs: Arc<VirtualFs>,
    node: NodeId,
    size: u64,
}

impl ContentProvider for FileContentProvider {
    fn compute(&self) -> Result<Bytes> {
        self.fs.read_file(self.node)
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.size)
    }
}

/// Instantiates the filesystem subtree rooted at `from` as resource
/// views in `store`.
///
/// Two passes: the first mints a view per node, the second wires group
/// components — necessary because folder links may point anywhere,
/// including ancestors (cycles).
pub fn materialize(fs: &Arc<VirtualFs>, store: &ViewStore, from: NodeId) -> Result<FsMapping> {
    materialize_with(fs, store, from, false)
}

/// [`materialize`], but pass 1 collects the whole subtree's view
/// records and inserts them through [`ViewStore::insert_batch`] — one
/// shard-lock acquisition per involved shard and one WAL group commit
/// for the entire subtree, instead of one of each per node. The
/// resulting store image is identical (vids are minted by the same
/// monotone counter in walk order).
pub fn materialize_bulk(fs: &Arc<VirtualFs>, store: &ViewStore, from: NodeId) -> Result<FsMapping> {
    materialize_with(fs, store, from, true)
}

fn materialize_with(
    fs: &Arc<VirtualFs>,
    store: &ViewStore,
    from: NodeId,
    bulk: bool,
) -> Result<FsMapping> {
    let file_class = store
        .classes()
        .require(idm_core::class::builtin::names::FILE)?;
    let folder_class = store
        .classes()
        .require(idm_core::class::builtin::names::FOLDER)?;
    let link_class = store
        .classes()
        .require(idm_core::class::builtin::names::FOLDERLINK)?;

    let nodes = fs.walk(from)?;
    let mut by_node: HashMap<NodeId, Vid> = HashMap::with_capacity(nodes.len());

    // Pass 1: mint views with η, τ, χ.
    let mut batch = Vec::with_capacity(if bulk { nodes.len() } else { 0 });
    for (node, _depth) in &nodes {
        let name = fs.name(*node)?;
        let meta = fs.metadata(*node)?;
        let kind = fs.kind(*node)?;
        let mut builder = store.build(name).tuple(meta.to_tuple());
        builder = match kind {
            NodeKind::File => builder
                .content(Content::lazy(Arc::new(FileContentProvider {
                    fs: Arc::clone(fs),
                    node: *node,
                    size: meta.size,
                })))
                .class(file_class),
            NodeKind::Folder => builder.class(folder_class),
            // A link view's group points at the target folder's view
            // (wired in pass 2).
            NodeKind::FolderLink => builder.class(link_class),
        };
        if bulk {
            batch.push(builder.into_record());
        } else {
            by_node.insert(*node, builder.insert());
        }
    }
    if bulk {
        let vids = store.insert_batch(batch);
        for ((node, _depth), vid) in nodes.iter().zip(vids) {
            by_node.insert(*node, vid);
        }
    }

    // Pass 2: wire groups.
    for (node, _depth) in &nodes {
        // Pass 1 minted a view for every node of this same walk
        // snapshot, so the lookup cannot miss.
        let vid = by_node[node];
        match fs.kind(*node)? {
            NodeKind::Folder => {
                let children: Vec<Vid> = fs
                    .list(*node)?
                    .into_iter()
                    .filter_map(|e| by_node.get(&e.id).copied())
                    .collect();
                if !children.is_empty() {
                    store.set_group(vid, Group::of_set(children))?;
                }
            }
            NodeKind::FolderLink => {
                if let Some(target) = fs.link_target(*node)? {
                    // The target may be outside the materialized subtree;
                    // only wire it when we know its view.
                    if let Some(target_vid) = by_node.get(&target) {
                        store.set_group(vid, Group::of_set(vec![*target_vid]))?;
                    }
                }
            }
            NodeKind::File => {}
        }
    }

    let root = by_node.get(&from).copied().ok_or_else(|| {
        IdmError::provider(format!("vfs: walk of node {from:?} did not visit its root"))
    })?;
    Ok(FsMapping { root, by_node })
}

/// Instantiates a folder as a **lazy** resource view: its group component
/// expands (and recursively creates child views, themselves lazy) only
/// when `getGroupComponent()` is first called — the Section 4.1 behaviour.
///
/// Folder links inside lazily expanded subtrees resolve to *fresh* lazy
/// views of the target folder rather than to a shared view; callers that
/// need shared, cycle-preserving identity use [`materialize`].
pub fn lazy_root(fs: &Arc<VirtualFs>, store: &ViewStore, from: NodeId) -> Result<Vid> {
    let name = fs.name(from)?;
    let meta = fs.metadata(from)?;
    match fs.kind(from)? {
        NodeKind::File => {
            let file_class = store
                .classes()
                .require(idm_core::class::builtin::names::FILE)?;
            Ok(store
                .build(name)
                .tuple(meta.to_tuple())
                .content(Content::lazy(Arc::new(FileContentProvider {
                    fs: Arc::clone(fs),
                    node: from,
                    size: meta.size,
                })))
                .class(file_class)
                .insert())
        }
        NodeKind::FolderLink => {
            let target = fs
                .link_target(from)?
                .ok_or_else(|| IdmError::provider("vfs: dangling folder link"))?;
            let fs2 = Arc::clone(fs);
            let provider = Arc::new(move |store: &ViewStore, _owner: Vid| {
                let child = lazy_root(&fs2, store, target)?;
                Ok(GroupData::of_set(vec![child]))
            });
            Ok(store.build(name).group(Group::lazy(provider)).insert())
        }
        NodeKind::Folder => {
            let folder_class = store
                .classes()
                .require(idm_core::class::builtin::names::FOLDER)?;
            let fs2 = Arc::clone(fs);
            let provider = Arc::new(move |store: &ViewStore, _owner: Vid| {
                let mut children = Vec::new();
                for entry in fs2.list(from)? {
                    children.push(lazy_root(&fs2, store, entry.id)?);
                }
                Ok(GroupData::of_set(children))
            });
            Ok(store
                .build(name)
                .tuple(meta.to_tuple())
                .group(Group::lazy(provider))
                .class(folder_class)
                .insert())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idm_core::class::builtin::names;
    use idm_core::graph;

    fn t() -> Timestamp {
        Timestamp::from_ymd(2005, 6, 1).unwrap()
    }

    fn figure1_fs() -> Arc<VirtualFs> {
        let fs = Arc::new(VirtualFs::new(t()));
        let projects = fs.mkdir_p("/Projects", t()).unwrap();
        let pim = fs.mkdir_p("/Projects/PIM", t()).unwrap();
        fs.mkdir_p("/Projects/OLAP", t()).unwrap();
        fs.create_file(pim, "vldb 2006.tex", "\\section{Introduction}", t())
            .unwrap();
        fs.create_file(pim, "Grant.doc", "grant proposal", t())
            .unwrap();
        fs.create_link(pim, "All Projects", projects, t()).unwrap();
        fs
    }

    #[test]
    fn materialize_maps_every_node() {
        let fs = figure1_fs();
        let store = ViewStore::new();
        let mapping = materialize(&fs, &store, NodeId::ROOT).unwrap();
        assert_eq!(mapping.by_node.len(), fs.node_count());
        assert_eq!(store.len(), fs.node_count());
    }

    #[test]
    fn materialize_preserves_classes_and_tuples() {
        let fs = figure1_fs();
        let store = ViewStore::new();
        let mapping = materialize(&fs, &store, NodeId::ROOT).unwrap();
        let pim_node = fs.resolve("/Projects/PIM").unwrap();
        let pim = mapping.view_of(pim_node).unwrap();
        assert!(store.conforms_to(pim, names::FOLDER).unwrap());
        assert_eq!(
            store.tuple(pim).unwrap().unwrap().get("size"),
            Some(&Value::Integer(4096))
        );
        let file_node = fs.resolve("/Projects/PIM/Grant.doc").unwrap();
        let file = mapping.view_of(file_node).unwrap();
        assert!(store.conforms_to(file, names::FILE).unwrap());
    }

    #[test]
    fn file_content_is_lazy_but_correct() {
        let fs = figure1_fs();
        let store = ViewStore::new();
        let mapping = materialize(&fs, &store, NodeId::ROOT).unwrap();
        let file_node = fs.resolve("/Projects/PIM/vldb 2006.tex").unwrap();
        let file = mapping.view_of(file_node).unwrap();
        let content = store.content(file).unwrap();
        assert!(content.is_intensional(), "reads bytes on demand");
        assert_eq!(content.size_hint(), Some(22), "size known without read");
        assert_eq!(content.text_lossy().unwrap(), "\\section{Introduction}");
    }

    #[test]
    fn folder_link_creates_cycle_in_view_graph() {
        let fs = figure1_fs();
        let store = ViewStore::new();
        let mapping = materialize(&fs, &store, NodeId::ROOT).unwrap();
        let projects = mapping.view_of(fs.resolve("/Projects").unwrap()).unwrap();
        // Projects →* Projects via PIM → All Projects → Projects.
        assert!(graph::is_indirectly_related(&store, projects, projects).unwrap());
    }

    #[test]
    fn bulk_materialize_matches_sequential() {
        let fs = figure1_fs();
        let seq_store = ViewStore::new();
        let seq = materialize(&fs, &seq_store, NodeId::ROOT).unwrap();
        let bulk_store = ViewStore::new();
        let bulk = materialize_bulk(&fs, &bulk_store, NodeId::ROOT).unwrap();

        assert_eq!(seq.root, bulk.root);
        assert_eq!(seq.by_node, bulk.by_node);
        for vid in seq_store.vids() {
            assert_eq!(seq_store.name(vid).unwrap(), bulk_store.name(vid).unwrap());
            assert_eq!(
                seq_store.group(vid).unwrap().finite_members(),
                bulk_store.group(vid).unwrap().finite_members()
            );
        }
    }

    #[test]
    fn lazy_root_defers_child_creation() {
        let fs = figure1_fs();
        let store = ViewStore::new();
        let root = lazy_root(&fs, &store, fs.resolve("/Projects").unwrap()).unwrap();
        assert_eq!(store.len(), 1, "only the root view exists");
        let children = store.group(root).unwrap().finite_members();
        assert_eq!(children.len(), 2, "PIM and OLAP");
        assert!(store.len() >= 3);
        // Forcing again does not duplicate.
        let again = store.group(root).unwrap().finite_members();
        assert_eq!(children, again);
    }

    #[test]
    fn lazy_link_expansion_terminates() {
        let fs = figure1_fs();
        let store = ViewStore::new();
        let root = lazy_root(&fs, &store, fs.resolve("/Projects/PIM").unwrap()).unwrap();
        let children = store.group(root).unwrap().finite_members();
        // Find the link view and expand it one step: it mints a fresh
        // Projects view rather than looping forever.
        let link = children
            .iter()
            .copied()
            .find(|c| store.name(*c).unwrap().as_deref() == Some("All Projects"))
            .unwrap();
        let targets = store.group(link).unwrap().finite_members();
        assert_eq!(targets.len(), 1);
        assert_eq!(store.name(targets[0]).unwrap().as_deref(), Some("Projects"));
    }
}
