//! # idm-vfs — a simulated filesystem substrate
//!
//! The paper's evaluation indexes a real NTFS volume. This crate provides
//! the equivalent substrate: an in-memory virtual filesystem with folders,
//! files, per-node metadata (`size`, `creation time`, `last modified
//! time` — the `W_FS` schema of Section 3.2), **folder links** (so the
//! cyclic `Projects → PIM → All Projects → Projects` structure of
//! Figure 1 is expressible) and change notifications (standing in for the
//! Mac OS X file events the paper's Synchronization Manager subscribes
//! to, Section 5.2).
//!
//! The substitution preserves the behaviour the experiments depend on:
//! enumeration order, metadata shape, byte content and notification
//! semantics are all faithful; only the medium (RAM instead of a 2006
//! IDE disk) differs, which the benchmarks account for by comparing
//! shapes, not absolute times.

#![warn(missing_docs)]

pub mod convert;

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use idm_core::prelude::*;
use parking_lot::{Mutex, RwLock};

/// Identifier of a node within one [`VirtualFs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u64);

impl NodeId {
    /// The root folder's id.
    pub const ROOT: NodeId = NodeId(0);

    /// Raw accessor.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Filesystem-level metadata carried by every node (the `W_FS` schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metadata {
    /// Size in bytes (folder size is the conventional block size, 4096).
    pub size: u64,
    /// Creation time.
    pub created: Timestamp,
    /// Last modification time.
    pub modified: Timestamp,
}

impl Metadata {
    /// Folder metadata at the given creation time.
    pub fn folder(at: Timestamp) -> Self {
        Metadata {
            size: 4096,
            created: at,
            modified: at,
        }
    }

    /// The metadata as an iDM tuple component over `W_FS`.
    pub fn to_tuple(&self) -> TupleComponent {
        TupleComponent::of(vec![
            ("size", Value::Integer(self.size as i64)),
            ("creation time", Value::Date(self.created)),
            ("last modified time", Value::Date(self.modified)),
        ])
    }
}

/// The kind of a filesystem node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A folder with child nodes (files, folders, links).
    Folder,
    /// A file with byte content.
    File,
    /// A link to another folder (enables cycles, like Figure 1's
    /// 'All Projects' link).
    FolderLink,
}

/// A filesystem change notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsEvent {
    /// A node was created (path given).
    Created(String),
    /// A node's content or metadata changed.
    Modified(String),
    /// A node was removed.
    Removed(String),
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    kind: NodeKind,
    meta: Metadata,
    parent: Option<NodeId>,
    /// Folder children in creation order; empty for files.
    children: Vec<NodeId>,
    /// Link target for `FolderLink` nodes.
    target: Option<NodeId>,
    /// File content; empty for folders and links.
    content: Bytes,
}

struct FsInner {
    nodes: Vec<Option<Node>>,
}

/// A deterministic latency model for simulated disk access.
///
/// The paper's filesystem source was a 2005 IDE disk whose scan cost is
/// visible in Figure 5; an in-memory filesystem is effectively free, so
/// benchmarks opt into this model to restore the cost *structure*
/// (seek per operation + transfer per byte). Default: no latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskLatency {
    /// Cost per metadata/list/read operation (seek + syscall).
    pub per_op: std::time::Duration,
    /// Transfer cost per byte read.
    pub per_byte: std::time::Duration,
    /// Whether the cost is really slept (true) or only accounted.
    pub sleep: bool,
}

impl DiskLatency {
    /// No simulated latency.
    pub fn none() -> Self {
        DiskLatency {
            per_op: std::time::Duration::ZERO,
            per_byte: std::time::Duration::ZERO,
            sleep: false,
        }
    }

    /// A scaled "2005 IDE disk" model: ~0.1 ms average positioning per
    /// operation and ~30 MB/s sequential transfer at scale 1.0.
    pub fn ide_2005(scale: f64) -> Self {
        DiskLatency {
            per_op: std::time::Duration::from_nanos((100_000.0 * scale) as u64),
            per_byte: std::time::Duration::from_nanos((33.0 * scale).max(0.0) as u64),
            sleep: true,
        }
    }
}

/// Busy-waits short costs (thread::sleep granularity would distort
/// sub-millisecond simulated latencies), sleeps long ones.
fn wait_for(cost: std::time::Duration) {
    if cost >= std::time::Duration::from_millis(5) {
        std::thread::sleep(cost);
    } else {
        let start = std::time::Instant::now();
        while start.elapsed() < cost {
            std::hint::spin_loop();
        }
    }
}

/// An in-memory virtual filesystem.
pub struct VirtualFs {
    inner: RwLock<FsInner>,
    subscribers: Mutex<Vec<Sender<FsEvent>>>,
    latency: Mutex<DiskLatency>,
    simulated: Mutex<std::time::Duration>,
    #[cfg(feature = "fault-injection")]
    faults: FaultPoint,
}

/// A directory listing entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Node id.
    pub id: NodeId,
    /// Node name.
    pub name: String,
    /// Node kind.
    pub kind: NodeKind,
    /// Node metadata.
    pub meta: Metadata,
}

impl VirtualFs {
    /// An empty filesystem with a root folder created at `now`.
    pub fn new(now: Timestamp) -> Self {
        VirtualFs {
            inner: RwLock::new(FsInner {
                nodes: vec![Some(Node {
                    name: "/".to_owned(),
                    kind: NodeKind::Folder,
                    meta: Metadata::folder(now),
                    parent: None,
                    children: Vec::new(),
                    target: None,
                    content: Bytes::new(),
                })],
            }),
            subscribers: Mutex::new(Vec::new()),
            latency: Mutex::new(DiskLatency::none()),
            simulated: Mutex::new(std::time::Duration::ZERO),
            #[cfg(feature = "fault-injection")]
            faults: FaultPoint::new(),
        }
    }

    /// Installs a fault plan on this filesystem's read/list/walk calls;
    /// returns the injector for call/fault counting.
    #[cfg(feature = "fault-injection")]
    pub fn install_faults(&self, plan: FaultPlan) -> Arc<FaultInjector> {
        self.faults.install(plan)
    }

    /// Removes any installed fault plan (the disk heals).
    #[cfg(feature = "fault-injection")]
    pub fn clear_faults(&self) {
        self.faults.clear()
    }

    #[cfg(feature = "fault-injection")]
    fn fault_check(&self, op: &str) -> Result<FaultAction> {
        self.faults.check("filesystem", op)
    }

    #[cfg(not(feature = "fault-injection"))]
    #[inline(always)]
    fn fault_check(&self, _op: &str) -> Result<FaultAction> {
        Ok(FaultAction::Proceed)
    }

    /// Installs a disk latency model (reads and listings pay it).
    pub fn set_latency(&self, latency: DiskLatency) {
        *self.latency.lock() = latency;
    }

    /// Total simulated disk latency accumulated so far.
    pub fn simulated_latency(&self) -> std::time::Duration {
        *self.simulated.lock()
    }

    fn pay(&self, bytes: usize) {
        let latency = *self.latency.lock();
        let cost = latency.per_op + latency.per_byte * (bytes as u32);
        if cost.is_zero() {
            return;
        }
        *self.simulated.lock() += cost;
        if latency.sleep {
            wait_for(cost);
        }
    }

    /// Subscribes to change notifications.
    pub fn subscribe(&self) -> Receiver<FsEvent> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(tx);
        rx
    }

    fn emit(&self, event: FsEvent) {
        let mut subs = self.subscribers.lock();
        if subs.is_empty() {
            return;
        }
        subs.retain(|tx| tx.send(event.clone()).is_ok());
    }

    fn with_node<T>(&self, id: NodeId, f: impl FnOnce(&Node) -> T) -> Result<T> {
        let inner = self.inner.read();
        inner
            .nodes
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .map(f)
            .ok_or_else(|| IdmError::provider(format!("vfs: no node {id}")))
    }

    /// Resolves an absolute `/a/b/c` path to a node id, following folder
    /// links en route.
    pub fn resolve(&self, path: &str) -> Result<NodeId> {
        let mut current = NodeId::ROOT;
        for segment in path.split('/').filter(|s| !s.is_empty()) {
            let next = self.with_node(current, |n| n.children.clone())?;
            let mut found = None;
            for child in next {
                let (name, kind, target) =
                    self.with_node(child, |n| (n.name.clone(), n.kind.clone(), n.target))?;
                if name == segment {
                    found = Some(match kind {
                        NodeKind::FolderLink => target.ok_or_else(|| {
                            IdmError::provider(format!("vfs: dangling link '{segment}'"))
                        })?,
                        _ => child,
                    });
                    break;
                }
            }
            current = found.ok_or_else(|| {
                IdmError::provider(format!("vfs: path '{path}' not found at '{segment}'"))
            })?;
        }
        Ok(current)
    }

    /// The absolute path of a node (links are reported at their own
    /// location, not their target's).
    pub fn path_of(&self, id: NodeId) -> Result<String> {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(node_id) = cur {
            let (name, parent) = self.with_node(node_id, |n| (n.name.clone(), n.parent))?;
            if parent.is_some() {
                parts.push(name);
            }
            cur = parent;
        }
        parts.reverse();
        Ok(format!("/{}", parts.join("/")))
    }

    fn insert_child(&self, parent: NodeId, node: Node) -> Result<NodeId> {
        let name = node.name.clone();
        let id = {
            let mut inner = self.inner.write();
            let id = NodeId(inner.nodes.len() as u64);
            {
                let parent_node = inner
                    .nodes
                    .get_mut(parent.0 as usize)
                    .and_then(Option::as_mut)
                    .ok_or_else(|| IdmError::provider(format!("vfs: no parent {parent}")))?;
                if parent_node.kind != NodeKind::Folder {
                    return Err(IdmError::provider(format!("vfs: {parent} is not a folder")));
                }
            }
            inner.nodes.push(Some(node));
            let parent_node = inner.nodes[parent.0 as usize].as_mut().expect("checked");
            parent_node.children.push(id);
            id
        };
        let path = self.path_of(id).unwrap_or(name);
        self.emit(FsEvent::Created(path));
        Ok(id)
    }

    /// Creates a folder under `parent`.
    pub fn mkdir(&self, parent: NodeId, name: &str, at: Timestamp) -> Result<NodeId> {
        self.check_fresh_name(parent, name)?;
        self.insert_child(
            parent,
            Node {
                name: name.to_owned(),
                kind: NodeKind::Folder,
                meta: Metadata::folder(at),
                parent: Some(parent),
                children: Vec::new(),
                target: None,
                content: Bytes::new(),
            },
        )
    }

    /// Creates every missing folder along an absolute path; returns the
    /// final folder's id.
    pub fn mkdir_p(&self, path: &str, at: Timestamp) -> Result<NodeId> {
        let mut current = NodeId::ROOT;
        for segment in path.split('/').filter(|s| !s.is_empty()) {
            current = match self.child_named(current, segment)? {
                Some(id) => id,
                None => self.mkdir(current, segment, at)?,
            };
        }
        Ok(current)
    }

    /// Creates a file under `parent` with the given content.
    pub fn create_file(
        &self,
        parent: NodeId,
        name: &str,
        content: impl Into<Bytes>,
        at: Timestamp,
    ) -> Result<NodeId> {
        self.check_fresh_name(parent, name)?;
        let content = content.into();
        self.insert_child(
            parent,
            Node {
                name: name.to_owned(),
                kind: NodeKind::File,
                meta: Metadata {
                    size: content.len() as u64,
                    created: at,
                    modified: at,
                },
                parent: Some(parent),
                children: Vec::new(),
                target: None,
                content,
            },
        )
    }

    /// Creates a file at an absolute path, creating parent folders.
    pub fn create_file_at(
        &self,
        path: &str,
        content: impl Into<Bytes>,
        at: Timestamp,
    ) -> Result<NodeId> {
        let (dir, name) = path
            .rsplit_once('/')
            .ok_or_else(|| IdmError::provider(format!("vfs: '{path}' is not an absolute path")))?;
        let parent = self.mkdir_p(dir, at)?;
        self.create_file(parent, name, content, at)
    }

    /// Creates a folder link under `parent` pointing at `target`.
    pub fn create_link(
        &self,
        parent: NodeId,
        name: &str,
        target: NodeId,
        at: Timestamp,
    ) -> Result<NodeId> {
        self.check_fresh_name(parent, name)?;
        self.with_node(target, |n| {
            if n.kind == NodeKind::Folder {
                Ok(())
            } else {
                Err(IdmError::provider("vfs: links may only target folders"))
            }
        })??;
        self.insert_child(
            parent,
            Node {
                name: name.to_owned(),
                kind: NodeKind::FolderLink,
                meta: Metadata::folder(at),
                parent: Some(parent),
                children: Vec::new(),
                target: Some(target),
                content: Bytes::new(),
            },
        )
    }

    fn check_fresh_name(&self, parent: NodeId, name: &str) -> Result<()> {
        if name.is_empty() || name.contains('/') {
            return Err(IdmError::provider(format!(
                "vfs: invalid node name '{name}'"
            )));
        }
        if self.child_named(parent, name)?.is_some() {
            return Err(IdmError::provider(format!(
                "vfs: '{name}' already exists in {parent}"
            )));
        }
        Ok(())
    }

    /// The id of the child of `parent` named `name`, if any.
    pub fn child_named(&self, parent: NodeId, name: &str) -> Result<Option<NodeId>> {
        let children = self.with_node(parent, |n| n.children.clone())?;
        for child in children {
            if self.with_node(child, |n| n.name == name)? {
                return Ok(Some(child));
            }
        }
        Ok(None)
    }

    /// Overwrites a file's content, bumping size and mtime.
    pub fn write_file(&self, id: NodeId, content: impl Into<Bytes>, at: Timestamp) -> Result<()> {
        let content = content.into();
        {
            let mut inner = self.inner.write();
            let node = inner
                .nodes
                .get_mut(id.0 as usize)
                .and_then(Option::as_mut)
                .ok_or_else(|| IdmError::provider(format!("vfs: no node {id}")))?;
            if node.kind != NodeKind::File {
                return Err(IdmError::provider(format!("vfs: {id} is not a file")));
            }
            node.meta.size = content.len() as u64;
            node.meta.modified = at;
            node.content = content;
        }
        let path = self.path_of(id)?;
        self.emit(FsEvent::Modified(path));
        Ok(())
    }

    /// Reads a file's content.
    pub fn read_file(&self, id: NodeId) -> Result<Bytes> {
        let action = self.fault_check("read_file")?;
        if let Ok(meta) = self.metadata(id) {
            self.pay(meta.size as usize);
        }
        let content = self.with_node(id, |n| {
            if n.kind == NodeKind::File {
                Ok(n.content.clone())
            } else {
                Err(IdmError::provider(format!("vfs: {id} is not a file")))
            }
        })??;
        Ok(match action {
            // Torn read: the transfer was interrupted mid-stream.
            FaultAction::Truncate(keep) => content.slice(..keep.min(content.len())),
            FaultAction::Proceed => content,
        })
    }

    /// A node's metadata.
    pub fn metadata(&self, id: NodeId) -> Result<Metadata> {
        self.with_node(id, |n| n.meta)
    }

    /// A node's name.
    pub fn name(&self, id: NodeId) -> Result<String> {
        self.with_node(id, |n| n.name.clone())
    }

    /// A node's kind.
    pub fn kind(&self, id: NodeId) -> Result<NodeKind> {
        self.with_node(id, |n| n.kind.clone())
    }

    /// A link's target folder.
    pub fn link_target(&self, id: NodeId) -> Result<Option<NodeId>> {
        self.with_node(id, |n| n.target)
    }

    /// Lists a folder's entries in creation order.
    pub fn list(&self, id: NodeId) -> Result<Vec<DirEntry>> {
        // Torn reads do not apply to listings; only injected errors do.
        self.fault_check("list")?;
        self.pay(0);
        let children = self.with_node(id, |n| {
            if n.kind == NodeKind::Folder {
                Ok(n.children.clone())
            } else {
                Err(IdmError::provider(format!("vfs: {id} is not a folder")))
            }
        })??;
        let mut out = Vec::with_capacity(children.len());
        for child in children {
            out.push(self.with_node(child, |n| DirEntry {
                id: child,
                name: n.name.clone(),
                kind: n.kind.clone(),
                meta: n.meta,
            })?);
        }
        Ok(out)
    }

    /// Removes a node (recursively for folders).
    pub fn remove(&self, id: NodeId) -> Result<()> {
        if id == NodeId::ROOT {
            return Err(IdmError::provider("vfs: cannot remove the root"));
        }
        let path = self.path_of(id)?;
        let mut stack = vec![id];
        let mut to_remove = Vec::new();
        while let Some(node) = stack.pop() {
            to_remove.push(node);
            // Links do not own their targets: don't recurse through them.
            let (kind, children) =
                self.with_node(node, |n| (n.kind.clone(), n.children.clone()))?;
            if kind == NodeKind::Folder {
                stack.extend(children);
            }
        }
        {
            let mut inner = self.inner.write();
            let parent = inner.nodes[id.0 as usize].as_ref().and_then(|n| n.parent);
            if let Some(parent) = parent {
                if let Some(p) = inner.nodes[parent.0 as usize].as_mut() {
                    p.children.retain(|c| *c != id);
                }
            }
            for node in to_remove {
                inner.nodes[node.0 as usize] = None;
            }
        }
        self.emit(FsEvent::Removed(path));
        Ok(())
    }

    /// Depth-first walk from a folder, visiting every node exactly once
    /// (folder links are yielded but not traversed into, so cyclic
    /// filesystems terminate). Returns `(id, depth)` pairs, parent before
    /// children, siblings in creation order.
    pub fn walk(&self, from: NodeId) -> Result<Vec<(NodeId, usize)>> {
        self.fault_check("walk")?;
        let mut out = Vec::new();
        let mut stack = vec![(from, 0usize)];
        while let Some((id, depth)) = stack.pop() {
            out.push((id, depth));
            let (kind, children) = self.with_node(id, |n| (n.kind.clone(), n.children.clone()))?;
            if kind == NodeKind::Folder {
                for child in children.into_iter().rev() {
                    stack.push((child, depth + 1));
                }
            }
        }
        Ok(out)
    }

    /// Total number of live nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.inner
            .read()
            .nodes
            .iter()
            .filter(|n| n.is_some())
            .count()
    }

    /// Sum of all file sizes in bytes.
    pub fn total_file_bytes(&self) -> u64 {
        self.inner
            .read()
            .nodes
            .iter()
            .flatten()
            .filter(|n| n.kind == NodeKind::File)
            .map(|n| n.meta.size)
            .sum()
    }
}

impl fmt::Debug for VirtualFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VirtualFs")
            .field("nodes", &self.node_count())
            .finish()
    }
}

/// Shared handle type used by converters and data source plugins.
pub type SharedFs = Arc<VirtualFs>;

#[cfg(test)]
mod tests {
    use super::*;

    fn t(day: u32) -> Timestamp {
        Timestamp::from_ymd(2005, 6, day).unwrap()
    }

    #[test]
    fn mkdir_p_and_resolve() {
        let fs = VirtualFs::new(t(1));
        let pim = fs.mkdir_p("/Projects/PIM", t(2)).unwrap();
        assert_eq!(fs.resolve("/Projects/PIM").unwrap(), pim);
        assert_eq!(fs.path_of(pim).unwrap(), "/Projects/PIM");
        // Idempotent.
        assert_eq!(fs.mkdir_p("/Projects/PIM", t(3)).unwrap(), pim);
    }

    #[test]
    fn file_roundtrip_and_metadata() {
        let fs = VirtualFs::new(t(1));
        let dir = fs.mkdir_p("/docs", t(1)).unwrap();
        let f = fs.create_file(dir, "a.txt", "hello", t(2)).unwrap();
        assert_eq!(fs.read_file(f).unwrap(), Bytes::from_static(b"hello"));
        let meta = fs.metadata(f).unwrap();
        assert_eq!(meta.size, 5);
        assert_eq!(meta.created, t(2));

        fs.write_file(f, "hello world", t(3)).unwrap();
        let meta = fs.metadata(f).unwrap();
        assert_eq!(meta.size, 11);
        assert_eq!(meta.modified, t(3));
        assert_eq!(meta.created, t(2), "creation time is immutable");
    }

    #[test]
    fn create_file_at_builds_parents() {
        let fs = VirtualFs::new(t(1));
        let f = fs.create_file_at("/a/b/c.txt", "x", t(1)).unwrap();
        assert_eq!(fs.path_of(f).unwrap(), "/a/b/c.txt");
        assert_eq!(fs.resolve("/a/b/c.txt").unwrap(), f);
    }

    #[test]
    fn duplicate_names_rejected() {
        let fs = VirtualFs::new(t(1));
        fs.create_file(NodeId::ROOT, "a", "1", t(1)).unwrap();
        assert!(fs.create_file(NodeId::ROOT, "a", "2", t(1)).is_err());
        assert!(fs.mkdir(NodeId::ROOT, "a", t(1)).is_err());
        assert!(fs.create_file(NodeId::ROOT, "a/b", "x", t(1)).is_err());
        assert!(fs.create_file(NodeId::ROOT, "", "x", t(1)).is_err());
    }

    #[test]
    fn folder_links_enable_cycles() {
        // Figure 1: Projects/PIM/All Projects → Projects.
        let fs = VirtualFs::new(t(1));
        let projects = fs.mkdir_p("/Projects", t(1)).unwrap();
        let pim = fs.mkdir_p("/Projects/PIM", t(1)).unwrap();
        fs.create_link(pim, "All Projects", projects, t(1)).unwrap();

        // Path resolution follows the link.
        let via_link = fs.resolve("/Projects/PIM/All Projects/PIM").unwrap();
        assert_eq!(via_link, pim);

        // Walking terminates despite the cycle.
        let walked = fs.walk(NodeId::ROOT).unwrap();
        assert_eq!(walked.len(), 4); // root, Projects, PIM, link
    }

    #[test]
    fn links_may_only_target_folders() {
        let fs = VirtualFs::new(t(1));
        let f = fs.create_file(NodeId::ROOT, "a.txt", "x", t(1)).unwrap();
        assert!(fs.create_link(NodeId::ROOT, "lnk", f, t(1)).is_err());
    }

    #[test]
    fn list_preserves_creation_order() {
        let fs = VirtualFs::new(t(1));
        fs.create_file(NodeId::ROOT, "b.txt", "", t(1)).unwrap();
        fs.create_file(NodeId::ROOT, "a.txt", "", t(1)).unwrap();
        let names: Vec<String> = fs
            .list(NodeId::ROOT)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["b.txt", "a.txt"]);
    }

    #[test]
    fn remove_is_recursive_and_notifies() {
        let fs = VirtualFs::new(t(1));
        let rx = fs.subscribe();
        let dir = fs.mkdir_p("/x/y", t(1)).unwrap();
        fs.create_file(dir, "f.txt", "1", t(1)).unwrap();
        let x = fs.resolve("/x").unwrap();
        fs.remove(x).unwrap();
        assert_eq!(fs.node_count(), 1, "only root remains");
        assert!(fs.resolve("/x").is_err());
        let events: Vec<FsEvent> = rx.try_iter().collect();
        assert!(events.contains(&FsEvent::Removed("/x".to_owned())));
    }

    #[test]
    fn remove_does_not_chase_links() {
        let fs = VirtualFs::new(t(1));
        let a = fs.mkdir_p("/a", t(1)).unwrap();
        let b = fs.mkdir_p("/b", t(1)).unwrap();
        fs.create_link(b, "to-a", a, t(1)).unwrap();
        fs.remove(b).unwrap();
        assert!(fs.resolve("/a").is_ok(), "link target survives");
    }

    #[test]
    fn walk_reports_depths() {
        let fs = VirtualFs::new(t(1));
        let a = fs.mkdir_p("/a", t(1)).unwrap();
        fs.create_file(a, "f", "x", t(1)).unwrap();
        let walked = fs.walk(NodeId::ROOT).unwrap();
        let depths: Vec<usize> = walked.iter().map(|(_, d)| *d).collect();
        assert_eq!(depths, vec![0, 1, 2]);
    }

    #[test]
    fn total_file_bytes_sums_files_only() {
        let fs = VirtualFs::new(t(1));
        let a = fs.mkdir_p("/a", t(1)).unwrap();
        fs.create_file(a, "f", "12345", t(1)).unwrap();
        fs.create_file(NodeId::ROOT, "g", "123", t(1)).unwrap();
        assert_eq!(fs.total_file_bytes(), 8);
    }

    #[test]
    fn remove_root_rejected() {
        let fs = VirtualFs::new(t(1));
        assert!(fs.remove(NodeId::ROOT).is_err());
    }
}
