//! Model-based property test: the virtual filesystem against a naive
//! path→content map model under random operation sequences.

use std::collections::HashMap;
use std::sync::Arc;

use idm_core::prelude::Timestamp;
use idm_vfs::{NodeId, NodeKind, VirtualFs};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Mkdir {
        parent: usize,
        name: String,
    },
    CreateFile {
        parent: usize,
        name: String,
        content: String,
    },
    WriteFile {
        index: usize,
        content: String,
    },
    Remove {
        index: usize,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..20, "[a-c]{1,3}").prop_map(|(parent, name)| Op::Mkdir { parent, name }),
        (0usize..20, "[d-f]{1,3}", "[a-z ]{0,20}").prop_map(|(parent, name, content)| {
            Op::CreateFile {
                parent,
                name,
                content,
            }
        }),
        (0usize..20, "[a-z ]{0,20}").prop_map(|(index, content)| Op::WriteFile { index, content }),
        (0usize..20).prop_map(|index| Op::Remove { index }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn fs_matches_path_map_model(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let t = Timestamp::from_ymd(2005, 6, 1).unwrap();
        let fs = Arc::new(VirtualFs::new(t));

        // The model: path → Some(content) for files, None for folders.
        let mut model: HashMap<String, Option<String>> = HashMap::new();
        model.insert("/".into(), None);
        // Live nodes for indexing ops deterministically.
        let mut nodes: Vec<(NodeId, String)> = vec![(NodeId::ROOT, "/".into())];

        for op in ops {
            match op {
                Op::Mkdir { parent, name } => {
                    let (pid, ppath) = nodes[parent % nodes.len()].clone();
                    let result = fs.mkdir(pid, &name, t);
                    let is_folder = model.get(&ppath).is_some_and(Option::is_none);
                    let child_path = join(&ppath, &name);
                    let fresh = !model.contains_key(&child_path);
                    prop_assert_eq!(result.is_ok(), is_folder && fresh,
                        "mkdir {} under {}", &name, &ppath);
                    if let Ok(id) = result {
                        model.insert(child_path.clone(), None);
                        nodes.push((id, child_path));
                    }
                }
                Op::CreateFile { parent, name, content } => {
                    let (pid, ppath) = nodes[parent % nodes.len()].clone();
                    let result = fs.create_file(pid, &name, content.clone(), t);
                    let is_folder = model.get(&ppath).is_some_and(Option::is_none);
                    let child_path = join(&ppath, &name);
                    let fresh = !model.contains_key(&child_path);
                    prop_assert_eq!(result.is_ok(), is_folder && fresh);
                    if let Ok(id) = result {
                        model.insert(child_path.clone(), Some(content));
                        nodes.push((id, child_path));
                    }
                }
                Op::WriteFile { index, content } => {
                    let (id, path) = nodes[index % nodes.len()].clone();
                    let is_live_file =
                        model.get(&path).is_some_and(|c| c.is_some());
                    let result = fs.write_file(id, content.clone(), t);
                    prop_assert_eq!(result.is_ok(), is_live_file, "write {}", &path);
                    if result.is_ok() {
                        model.insert(path, Some(content));
                    }
                }
                Op::Remove { index } => {
                    let (id, path) = nodes[index % nodes.len()].clone();
                    let live = model.contains_key(&path);
                    let result = fs.remove(id);
                    if path == "/" {
                        prop_assert!(result.is_err(), "root is irremovable");
                        continue;
                    }
                    prop_assert_eq!(result.is_ok(), live, "remove {}", &path);
                    if result.is_ok() {
                        let prefix = format!("{path}/");
                        model.retain(|p, _| p != &path && !p.starts_with(&prefix));
                        nodes.retain(|(_, p)| p != &path && !p.starts_with(&prefix));
                    }
                }
            }
        }

        // Final state agreement: every model path resolves with the right
        // kind and content; the node count matches.
        for (path, content) in &model {
            let id = fs.resolve(path).unwrap_or_else(|e| panic!("{path}: {e}"));
            match content {
                Some(text) => {
                    prop_assert_eq!(fs.kind(id).unwrap(), NodeKind::File);
                    prop_assert_eq!(
                        String::from_utf8_lossy(&fs.read_file(id).unwrap()).into_owned(),
                        text.clone()
                    );
                }
                None => prop_assert_eq!(fs.kind(id).unwrap(), NodeKind::Folder),
            }
        }
        prop_assert_eq!(fs.node_count(), model.len());
    }
}

fn join(parent: &str, name: &str) -> String {
    if parent == "/" {
        format!("/{name}")
    } else {
        format!("{parent}/{name}")
    }
}
