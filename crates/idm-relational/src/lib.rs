//! # idm-relational — relational data for the iMeMex dataspace
//!
//! A minimal relational store (schemas, relations, tuples) and its iDM
//! instantiation per Table 1 of the paper:
//!
//! - a stored tuple becomes a `tuple` view whose `τ = (W_R, t_i)`,
//! - a relation becomes a `relation` view named `N_R` whose set `S`
//!   holds its tuple views,
//! - a database becomes a `reldb` view named `N_DB` over its relations.
//!
//! The paper notes that a view defined over DB tables is *intensional*
//! data even when materialized; [`convert::relation_to_views_lazily`]
//! exhibits exactly that: the relation's group component is computed on
//! first access from the store's current contents.

#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;

use idm_core::prelude::*;
use parking_lot::RwLock;

/// A relation: a named set of tuples sharing one schema `W_R`.
pub struct Relation {
    name: String,
    schema: Schema,
    tuples: RwLock<Vec<Vec<Value>>>,
}

impl Relation {
    /// Creates an empty relation.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Relation {
            name: name.into(),
            schema,
            tuples: RwLock::new(Vec::new()),
        }
    }

    /// The relation name `N_R`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema `W_R`.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Inserts a tuple after validating it against `W_R`.
    pub fn insert(&self, values: Vec<Value>) -> Result<()> {
        // TupleComponent::new performs the arity/domain validation.
        TupleComponent::new(self.schema.clone(), values.clone())?;
        self.tuples.write().push(values);
        Ok(())
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.read().len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of all tuples.
    pub fn scan(&self) -> Vec<Vec<Value>> {
        self.tuples.read().clone()
    }

    /// Tuples for which `predicate` holds on the named attribute.
    pub fn select(&self, attr: &str, predicate: impl Fn(&Value) -> bool) -> Vec<Vec<Value>> {
        let Some(pos) = self.schema.position(attr) else {
            return Vec::new();
        };
        self.tuples
            .read()
            .iter()
            .filter(|t| predicate(&t[pos]))
            .cloned()
            .collect()
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Relation")
            .field("name", &self.name)
            .field("arity", &self.schema.arity())
            .field("tuples", &self.len())
            .finish()
    }
}

/// A named collection of relations.
pub struct RelationalDb {
    name: String,
    relations: RwLock<Vec<Arc<Relation>>>,
}

impl RelationalDb {
    /// Creates an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        RelationalDb {
            name: name.into(),
            relations: RwLock::new(Vec::new()),
        }
    }

    /// The database name `N_DB`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Creates a relation; errors if the name is taken.
    pub fn create_relation(&self, name: &str, schema: Schema) -> Result<Arc<Relation>> {
        let mut relations = self.relations.write();
        if relations.iter().any(|r| r.name() == name) {
            return Err(IdmError::Parse {
                detail: format!("relation '{name}' already exists"),
            });
        }
        let relation = Arc::new(Relation::new(name, schema));
        relations.push(Arc::clone(&relation));
        Ok(relation)
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<Arc<Relation>> {
        self.relations
            .read()
            .iter()
            .find(|r| r.name() == name)
            .cloned()
    }

    /// All relations.
    pub fn relations(&self) -> Vec<Arc<Relation>> {
        self.relations.read().clone()
    }
}

/// Instantiation of relational data in iDM.
pub mod convert {
    use super::*;
    use idm_core::class::builtin::names;

    /// Builds a `tuple` view for one stored tuple.
    pub fn tuple_to_view(store: &ViewStore, schema: &Schema, values: Vec<Value>) -> Result<Vid> {
        let tau = TupleComponent::new(schema.clone(), values)?;
        let class = store.classes().require(names::TUPLE)?;
        Ok(store.build_unnamed().tuple(tau).class(class).insert())
    }

    /// Eagerly instantiates a relation and its tuples.
    pub fn relation_to_views(store: &ViewStore, relation: &Relation) -> Result<Vid> {
        let class = store.classes().require(names::RELATION)?;
        let mut members = Vec::with_capacity(relation.len());
        for values in relation.scan() {
            members.push(tuple_to_view(store, relation.schema(), values)?);
        }
        Ok(store
            .build(relation.name().to_owned())
            .children(members)
            .class(class)
            .insert())
    }

    /// Lazily instantiates a relation: the `relation` view's group is an
    /// intensional component materialized from the store's contents at
    /// first access (Section 4.3 — even a materialized view remains
    /// logically intensional).
    pub fn relation_to_views_lazily(store: &ViewStore, relation: Arc<Relation>) -> Result<Vid> {
        let class = store.classes().require(names::RELATION)?;
        let name = relation.name().to_owned();
        let provider = Arc::new(move |store: &ViewStore, _owner: Vid| {
            let mut members = Vec::with_capacity(relation.len());
            for values in relation.scan() {
                members.push(tuple_to_view(store, relation.schema(), values)?);
            }
            Ok(GroupData::of_set(members))
        });
        Ok(store
            .build(name)
            .group(Group::lazy(provider))
            .class(class)
            .insert())
    }

    /// Instantiates a whole database as a `reldb` view.
    pub fn database_to_views(store: &ViewStore, db: &RelationalDb) -> Result<Vid> {
        let class = store.classes().require(names::RELDB)?;
        let mut members = Vec::new();
        for relation in db.relations() {
            members.push(relation_to_views(store, &relation)?);
        }
        Ok(store
            .build(db.name().to_owned())
            .children(members)
            .class(class)
            .insert())
    }
}

#[cfg(test)]
mod tests {
    use super::convert::*;
    use super::*;
    use idm_core::class::builtin::names;

    fn people_schema() -> Schema {
        Schema::of(&[("name", Domain::Text), ("age", Domain::Integer)])
    }

    #[test]
    fn insert_validates_schema() {
        let r = Relation::new("people", people_schema());
        r.insert(vec![Value::Text("Mike".into()), Value::Integer(40)])
            .unwrap();
        assert!(r
            .insert(vec![Value::Integer(40), Value::Text("Mike".into())])
            .is_err());
        assert!(r.insert(vec![Value::Text("solo".into())]).is_err());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn select_filters() {
        let r = Relation::new("people", people_schema());
        for (name, age) in [("Mike", 40), ("Jens", 35), ("Ana", 28)] {
            r.insert(vec![Value::Text(name.into()), Value::Integer(age)])
                .unwrap();
        }
        let adults = r.select("age", |v| v.as_integer().unwrap_or(0) >= 35);
        assert_eq!(adults.len(), 2);
        assert!(r.select("missing", |_| true).is_empty());
    }

    #[test]
    fn db_rejects_duplicate_relations() {
        let db = RelationalDb::new("personal");
        db.create_relation("people", people_schema()).unwrap();
        assert!(db.create_relation("people", people_schema()).is_err());
        assert!(db.relation("people").is_some());
        assert!(db.relation("ghosts").is_none());
    }

    #[test]
    fn table_1_instantiation_validates() {
        let db = RelationalDb::new("contacts-db");
        let r = db.create_relation("contacts", people_schema()).unwrap();
        r.insert(vec![
            Value::Text("Mike Franklin".into()),
            Value::Integer(40),
        ])
        .unwrap();
        r.insert(vec![Value::Text("Don Knuth".into()), Value::Integer(67)])
            .unwrap();

        let store = ViewStore::new();
        let dbv = database_to_views(&store, &db).unwrap();
        assert!(store.conforms_to(dbv, names::RELDB).unwrap());
        validate(&store, dbv, ValidationMode::Deep).unwrap();

        let relations = store.group(dbv).unwrap().finite_members();
        assert_eq!(relations.len(), 1);
        let rel = relations[0];
        assert_eq!(store.name(rel).unwrap().as_deref(), Some("contacts"));
        validate(&store, rel, ValidationMode::Deep).unwrap();

        let tuples = store.group(rel).unwrap().finite_members();
        assert_eq!(tuples.len(), 2);
        for t in tuples {
            validate(&store, t, ValidationMode::Deep).unwrap();
            assert!(store.name(t).unwrap().is_none(), "tuple views unnamed");
            assert_eq!(store.tuple(t).unwrap().unwrap().schema(), &people_schema());
        }
    }

    #[test]
    fn lazy_relation_sees_later_inserts() {
        let store = ViewStore::new();
        let relation = Arc::new(Relation::new("live", people_schema()));
        let vid = relation_to_views_lazily(&store, Arc::clone(&relation)).unwrap();

        // Insert after the view exists but before first access.
        relation
            .insert(vec![Value::Text("Late".into()), Value::Integer(1)])
            .unwrap();
        let tuples = store.group(vid).unwrap().finite_members();
        assert_eq!(tuples.len(), 1, "intensional group saw the insert");

        // After materialization the group is cached (Section 4.3: a
        // materialized view is still logically intensional, but physical
        // refresh policy is orthogonal to the model).
        relation
            .insert(vec![Value::Text("Later".into()), Value::Integer(2)])
            .unwrap();
        assert_eq!(store.group(vid).unwrap().finite_members().len(), 1);
    }
}
