//! `imemex-shell` — an interactive iQL shell over a synthetic personal
//! dataspace.
//!
//! ```sh
//! cargo run --release --bin imemex-shell            # loads sf 0.05
//! cargo run --release --bin imemex-shell -- 0.25    # bigger dataspace
//! ```
//!
//! Then type iQL at the prompt, e.g.
//! `//PIM//Introduction[class="latex_section" and "Mike Franklin"]`, or
//! one of the `:commands` (`:help` lists them). Reads from stdin, so it
//! also works non-interactively: `echo '"database"' | imemex-shell`.

use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Instant;

use imemex::core::durability::{ScrubBudget, Scrubber};
use imemex::dataset::{generate, DatasetConfig};
use imemex::query::{ExpansionStrategy, QueryBudget, QueryProcessor, QueryRequest};
use imemex::system::{
    FsPlugin, GovernorConfig, HealthConfig, HealthMonitor, ImapPlugin, IndexArtifactOutcome,
    LiveQuery, Pdsms, RssPlugin,
};
use imemex::vfs::NodeId;

struct Shell {
    system: Pdsms,
    strategy: ExpansionStrategy,
    /// One long-lived processor, so the expansion and whole-result
    /// caches stay warm across commands.
    processor: QueryProcessor,
    /// The session budget every query runs under (`\budget`).
    budget: QueryBudget,
    /// Standing queries registered with `\subscribe`, polled by `\live`.
    subscriptions: Vec<(String, LiveQuery)>,
    /// Scrub/audit orchestrator behind `\health` (cursor and audit
    /// memo persist across commands, like a background thread's would).
    monitor: HealthMonitor,
}

impl Shell {
    fn load(scale: f64) -> Self {
        println!("generating synthetic personal dataspace at scale {scale} …");
        let dataset = generate(DatasetConfig::at_scale(scale));
        let mut system = Pdsms::new();
        system.register_source(Arc::new(FsPlugin::new(
            Arc::clone(&dataset.fs),
            NodeId::ROOT,
        )));
        system.register_source(Arc::new(ImapPlugin::new(Arc::clone(&dataset.imap))));
        system.register_source(Arc::new(RssPlugin::new(
            Arc::clone(&dataset.feeds),
            dataset.feed_urls.clone(),
        )));
        let report = system
            .index_all_bulk(&imemex::system::BulkIngestOptions::default())
            .expect("ingestion");
        let t = &report.throughput;
        println!(
            "indexed {} resource views from {} sources in {:.2}s ({:.0} views/s, {} index segments)",
            t.views,
            report.stats.len(),
            t.elapsed.as_secs_f64(),
            t.views_per_sec(),
            t.segments
        );
        if t.wal_records > 0 {
            println!(
                "wal: {} records in {} write groups, {} fsyncs ({} saved vs one-per-record)",
                t.wal_records, t.wal_batches, t.fsyncs, t.fsyncs_saved
            );
        }
        let processor = system.query_processor();
        Shell {
            system,
            strategy: ExpansionStrategy::Forward,
            processor,
            budget: QueryBudget::none(),
            subscriptions: Vec::new(),
            monitor: HealthMonitor::new(HealthConfig::default()),
        }
    }

    fn set_strategy(&mut self, strategy: ExpansionStrategy) {
        self.strategy = strategy;
        // Plans record the strategy, so the processor's caches need no
        // flush: a different strategy yields a different fingerprint.
        self.processor.set_expansion(strategy);
    }

    fn describe(&self, vid: imemex::Vid) -> String {
        let store = self.system.store();
        let name = store
            .name(vid)
            .ok()
            .flatten()
            .unwrap_or_else(|| "<unnamed>".into());
        let class = store
            .class_name(vid)
            .ok()
            .flatten()
            .unwrap_or_else(|| "-".into());
        format!("{vid}  {name}  [{class}]")
    }

    fn run_query(&self, iql: &str) {
        // Queries go through the admission gate when `\governor` enabled
        // it, so overload behavior is observable interactively.
        let _permit = match self.system.governor() {
            Some(gate) => match gate.admit(self.budget.deadline) {
                Ok(permit) => Some(permit),
                Err(e) => {
                    println!("error: {e}");
                    return;
                }
            },
            None => None,
        };
        let start = Instant::now();
        match self.processor.run(&QueryRequest::new(iql).cached()) {
            Ok(response) => {
                let result = response.result;
                let elapsed = start.elapsed();
                println!(
                    "{} result(s) in {:.3} ms  ({})",
                    result.rows.len(),
                    elapsed.as_secs_f64() * 1e3,
                    if result.stats.result_cache_hits > 0 {
                        "result cache hit".to_owned()
                    } else {
                        format!(
                            "expanded {} nodes, examined {} candidates",
                            result.stats.nodes_expanded, result.stats.candidates_examined
                        )
                    }
                );
                if result.stats.partial {
                    let c = result.stats.consumed;
                    println!(
                        "  PARTIAL result — budget exhausted ({}); consumed rows={} nodes={} bytes={} checkpoints={}",
                        result
                            .stats
                            .exhausted
                            .map(|k| k.to_string())
                            .unwrap_or_else(|| "?".into()),
                        c.rows,
                        c.nodes,
                        c.bytes,
                        c.checkpoints
                    );
                }
                for vid in result.rows.views().iter().take(10) {
                    println!("  {}", self.describe(*vid));
                }
                if result.rows.len() > 10 {
                    println!("  … {} more", result.rows.len() - 10);
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }

    /// `\budget`: sets the per-query resource budget for this session.
    fn set_budget_cmd(&mut self, arg: &str) {
        let arg = arg.trim();
        if arg == "off" {
            self.budget = QueryBudget::none();
        } else {
            let parse_u64 = |v: &str| v.parse::<u64>().ok();
            for token in arg.split_whitespace() {
                match token.split_once('=') {
                    Some(("deadline", v)) => {
                        self.budget.deadline = parse_u64(v).map(std::time::Duration::from_millis);
                    }
                    Some(("rows", v)) => self.budget.max_rows = parse_u64(v),
                    Some(("nodes", v)) => self.budget.max_nodes = parse_u64(v),
                    Some(("bytes", v)) => self.budget.max_bytes = parse_u64(v),
                    None if token == "partial" => self.budget.partial = true,
                    None if token == "strict" => self.budget.partial = false,
                    _ => {
                        println!("unknown budget token '{token}' — \\budget [deadline=<ms>] [rows=<n>] [nodes=<n>] [bytes=<n>] [partial|strict|off]");
                        return;
                    }
                }
            }
        }
        self.processor.set_budget(self.budget);
        println!("budget: {}", self.describe_budget());
    }

    fn describe_budget(&self) -> String {
        if !self.budget.is_limited() {
            return "unlimited".into();
        }
        let mut parts = Vec::new();
        if let Some(d) = self.budget.deadline {
            parts.push(format!("deadline {}ms", d.as_millis()));
        }
        if let Some(n) = self.budget.max_rows {
            parts.push(format!("rows {n}"));
        }
        if let Some(n) = self.budget.max_nodes {
            parts.push(format!("nodes {n}"));
        }
        if let Some(n) = self.budget.max_bytes {
            parts.push(format!("bytes {n}"));
        }
        parts.push(
            if self.budget.partial {
                "partial (degrade to subset)"
            } else {
                "strict (error on exhaustion)"
            }
            .into(),
        );
        parts.join(", ")
    }

    /// `\governor`: enables admission control over shell queries.
    fn governor_cmd(&mut self, arg: &str) {
        let fields: Vec<&str> = arg.split_whitespace().collect();
        let mut config = GovernorConfig::default();
        if let Some(v) = fields.first().and_then(|v| v.parse().ok()) {
            config.max_concurrent = v;
        }
        if let Some(v) = fields.get(1).and_then(|v| v.parse().ok()) {
            config.max_queued = v;
        }
        if let Some(v) = fields.get(2).and_then(|v| v.parse().ok()) {
            config.queue_deadline = std::time::Duration::from_millis(v);
        }
        self.system.enable_governor(config);
        println!(
            "governor: {} concurrent, {} queued, {}ms queue deadline",
            config.max_concurrent,
            config.max_queued,
            config.queue_deadline.as_millis()
        );
    }

    fn run_ranked(&self, iql: &str) {
        match self.processor.execute_ranked(iql) {
            Ok(ranked) => {
                println!("{} result(s), ranked:", ranked.len());
                for r in ranked.iter().take(10) {
                    println!("  {:>7.3}  {}", r.score, self.describe(r.vid));
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }

    /// `\subscribe <iql>`: registers a standing query; `\live` polls it.
    fn subscribe_cmd(&mut self, iql: &str) {
        if iql.is_empty() {
            println!("usage: \\subscribe <iql>");
            return;
        }
        match self
            .system
            .subscribe(&QueryRequest::new(iql).budget(self.budget).subscribe())
        {
            Ok(live) => {
                println!(
                    "subscription #{}: {} initial result(s); \\live shows changes",
                    live.id(),
                    live.initial().rows.len()
                );
                self.subscriptions.push((iql.to_owned(), live));
            }
            Err(e) => println!("error: {e}"),
        }
    }

    /// `\live`: pumps pending change records through every standing
    /// query and prints the deltas that arrived.
    fn poll_live(&mut self) {
        if self.subscriptions.is_empty() {
            println!("no subscriptions — \\subscribe <iql> registers one");
            return;
        }
        let records = self.system.pump_subscriptions();
        let mut quiet = 0;
        for (iql, live) in &self.subscriptions {
            let deltas = live.poll();
            if deltas.is_empty() {
                quiet += 1;
                continue;
            }
            for delta in deltas {
                println!(
                    "subscription #{} {iql}: +{} -{} ({} total)",
                    live.id(),
                    delta.added.len(),
                    delta.removed.len(),
                    delta.total
                );
                for vid in delta.added.views().iter().take(5) {
                    println!("  + {}", self.describe(*vid));
                }
                for vid in delta.removed.views().iter().take(5) {
                    println!("  - {}", self.describe(*vid));
                }
            }
        }
        println!("{records} change record(s) applied; {quiet} subscription(s) unchanged");
    }

    fn run_update(&self, statement: &str) {
        match self.processor.execute_update(statement) {
            Ok(outcome) => println!(
                "matched {} view(s), applied {}",
                outcome.matched, outcome.applied
            ),
            Err(e) => println!("error: {e}"),
        }
    }

    /// `\open <dir>`: opens an existing durable dataspace (recovery),
    /// or makes the current in-memory dataspace durable in a fresh
    /// directory.
    fn open_dataspace(&mut self, path: &str) {
        if path.is_empty() {
            println!("usage: \\open <directory>");
            return;
        }
        let dir = std::path::Path::new(path);
        if has_dataspace(dir) {
            match Pdsms::open(dir) {
                Ok((system, report)) => {
                    println!("{report}");
                    self.system = system;
                    self.processor = self.system.query_processor();
                    self.processor.set_expansion(self.strategy);
                    self.monitor = HealthMonitor::new(HealthConfig::default());
                }
                Err(e) => println!("error: {e}"),
            }
        } else {
            match self.system.make_durable(dir) {
                Ok(stats) => println!(
                    "dataspace now durable in {} (snapshot {}: {} views, {} bytes)",
                    dir.display(),
                    stats.seq,
                    stats.views,
                    stats.bytes
                ),
                Err(e) => println!("error: {e}"),
            }
        }
    }

    /// `\checkpoint`: folds the WAL into a fresh snapshot.
    fn checkpoint(&self) {
        match self.system.checkpoint() {
            Ok(stats) => println!(
                "checkpoint {}: {} views, {} bytes, lsn {}",
                stats.seq, stats.views, stats.bytes, stats.lsn
            ),
            Err(e) => println!("error: {e}"),
        }
    }

    /// `\health`: one budgeted scrub/audit round plus cumulative totals.
    fn health(&mut self) {
        match self.monitor.round(&self.system) {
            Ok(report) => {
                println!("{report}");
                let totals = self.monitor.stats();
                println!(
                    "totals: {} round(s), {} bytes verified, {} finding(s), {} quarantined, \
                     {} repair checkpoint(s), {} view(s) audited, {} index repair(s)",
                    totals.rounds,
                    totals.bytes_verified,
                    totals.findings,
                    totals.quarantined,
                    totals.repair_checkpoints,
                    totals.views_audited,
                    totals.index_repaired
                );
            }
            Err(e) => println!("error: {e}"),
        }
    }

    /// `\scrub`: one full (unbudgeted) integrity pass over every
    /// durable artifact, with quarantine-and-repair on damage.
    fn scrub(&self) {
        if !self.system.is_durable() {
            println!("dataspace is in-memory — \\open <dir> makes it durable first");
            return;
        }
        let mut scrubber = Scrubber::new(ScrubBudget::default());
        match self.system.scrub_round(&mut scrubber) {
            Ok(report) => println!("{report}"),
            Err(e) => println!("error: {e}"),
        }
        match self.system.scrub_index_artifact() {
            Ok(Some(IndexArtifactOutcome::Clean { bytes })) => {
                println!("index artifact clean ({bytes} bytes)")
            }
            Ok(Some(IndexArtifactOutcome::Repaired { quarantined })) => println!(
                "index artifact DAMAGED -> quarantined at {} and rewritten",
                quarantined.display()
            ),
            Ok(Some(IndexArtifactOutcome::Missing)) => println!("no index artifact on disk"),
            Ok(None) => {}
            Err(e) => println!("error: {e}"),
        }
    }

    fn stats(&self) {
        let sizes = self.system.indexes().sizes();
        let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
        println!("views in store:   {}", self.system.store().len());
        println!("catalog rows:     {}", self.system.indexes().catalog.len());
        println!(
            "index sizes (MB): name {:.2}, tuple {:.2}, content {:.2}, group {:.2}, catalog {:.2}",
            mb(sizes.name),
            mb(sizes.tuple),
            mb(sizes.content),
            mb(sizes.group),
            mb(sizes.catalog)
        );
        println!("expansion:        {:?}", self.strategy);
        let results = self.processor.result_cache().counters();
        println!(
            "result cache:     {} hit(s), {} miss(es), {} maintained, {} invalidation(s)",
            results.hits, results.misses, results.maintained, results.invalidations
        );
        let live = self.system.live_stats();
        println!(
            "live queries:     {} active, {} delta(s) pushed, {} record(s) applied, \
             {} failed maintenance pass(es), {} resync(s), {} dropped",
            live.active,
            live.deltas_pushed,
            live.records_applied,
            live.maintain_failures,
            live.resyncs,
            live.dropped
        );
        println!("budget:           {}", self.describe_budget());
        match self.system.governor_stats() {
            Some(g) => println!(
                "governor:         {} admitted, {} completed, {} shed (queue full), {} deadline-exceeded (expired while queued), {} running, {} queued",
                g.admitted, g.completed, g.shed, g.deadline_exceeded, g.running, g.queued
            ),
            None => println!("governor:         off (\\governor enables admission control)"),
        }
        let guards = self.system.rvm().guard_states();
        if !guards.is_empty() {
            let states: Vec<String> = guards
                .iter()
                .map(|(name, state)| format!("{name} {state:?}"))
                .collect();
            println!("source breakers:  {}", states.join(", "));
        }
    }
}

const HELP: &str = "\
commands:
  <iql>                 run an iQL query (e.g. \"database tuning\" or
                        //PIM//Introduction[class=\"latex_section\"])
  :rank <iql>           run a query with relevance ranking
  :update <stmt>        update/delete, e.g. :update //a.txt set name = \"b.txt\"
  :estimate <iql>       cardinality-estimated plan (cost optimizer view)
  :explain <iql>        show the rule-based execution plan
  :strategy <s>         forward | backward | bidirectional
  :save <path>          persist the index bundle to a file
  \\open <dir>           open a durable dataspace (prints the recovery
                        report), or make this one durable in a new dir
  \\checkpoint           fold the write-ahead log into a fresh snapshot
  \\scrub                full integrity pass over snapshots, WAL and the
                        index artifact; damage is quarantined + repaired
  \\health               one budgeted scrub/audit round + running totals
  \\budget [k=v …]       per-query resource budget: deadline=<ms> rows=<n>
                        nodes=<n> bytes=<n> partial|strict|off
  \\governor [c q ms]    enable admission control (max concurrent, max
                        queued, queue deadline ms; defaults 4 16 100)
  \\subscribe <iql>      register a standing query, incrementally
                        maintained as the dataspace changes
  \\live                 apply pending changes and print each standing
                        query's deltas
  :stats                store, index, budget and governor statistics
  :help                 this text
  :quit                 exit
(\\ and : are interchangeable command prefixes)";

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let mut shell = Shell::load(scale);
    println!("iMeMex iQL shell — :help for commands");

    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    loop {
        if interactive {
            print!("iql> ");
            let _ = std::io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if !interactive {
            println!("iql> {line}");
        }
        if let Some(rest) = line.strip_prefix(':').or_else(|| line.strip_prefix('\\')) {
            let (command, arg) = rest.split_once(' ').unwrap_or((rest, ""));
            match command {
                "quit" | "q" | "exit" => break,
                "help" | "h" => println!("{HELP}"),
                "stats" => shell.stats(),
                "save" => {
                    let path = std::path::Path::new(arg.trim());
                    match imemex::index::persist::save(shell.system.indexes(), path) {
                        Ok(()) => println!(
                            "saved {} bytes to {}",
                            std::fs::metadata(path).map(|m| m.len()).unwrap_or(0),
                            path.display()
                        ),
                        Err(e) => println!("error: {e}"),
                    }
                }
                "open" => shell.open_dataspace(arg.trim()),
                "checkpoint" => shell.checkpoint(),
                "health" => shell.health(),
                "scrub" => shell.scrub(),
                "budget" => shell.set_budget_cmd(arg),
                "governor" => shell.governor_cmd(arg),
                "subscribe" => shell.subscribe_cmd(arg.trim()),
                "live" => shell.poll_live(),
                "rank" => shell.run_ranked(arg.trim()),
                "update" => shell.run_update(arg.trim()),
                "estimate" => {
                    match imemex::query::explain_with_estimates(&shell.processor, arg.trim()) {
                        Ok(plan) => print!("{plan}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                "explain" => match shell.processor.explain(arg.trim()) {
                    Ok(plan) => print!("{plan}"),
                    Err(e) => println!("error: {e}"),
                },
                "strategy" => {
                    let strategy = match arg.trim() {
                        "forward" => ExpansionStrategy::Forward,
                        "backward" => ExpansionStrategy::Backward,
                        "bidirectional" => ExpansionStrategy::Bidirectional,
                        other => {
                            println!("unknown strategy '{other}'");
                            continue;
                        }
                    };
                    shell.set_strategy(strategy);
                    println!("expansion strategy: {:?}", shell.strategy);
                }
                other => println!("unknown command ':{other}' — :help lists commands"),
            }
        } else {
            shell.run_query(line);
        }
    }
}

/// Whether `dir` already holds a durable dataspace (any snapshot or WAL
/// segment file).
fn has_dataspace(dir: &std::path::Path) -> bool {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries.flatten().any(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.ends_with(".idmsnap") || name.ends_with(".idmlog")
            })
        })
        .unwrap_or(false)
}

/// Minimal TTY check without a dependency: honor an env override, else
/// assume non-interactive when stdin is redirected (heuristic via the
/// TERM/CI environment is avoided; piping works either way).
fn atty_stdin() -> bool {
    // Safe portable heuristic: if IMEMEX_FORCE_PROMPT is set, prompt;
    // otherwise prompt only when stderr looks like a terminal is absent.
    std::env::var("IMEMEX_FORCE_PROMPT").is_ok()
}
