//! # iMeMex — a Personal Dataspace Management System in Rust
//!
//! Facade crate re-exporting the full public API of the iDM / iMeMex
//! reproduction (VLDB 2006). See the workspace `README.md` for the
//! architecture overview and `DESIGN.md` for the paper-to-module map.

pub use idm_core as core;
pub use idm_dataset as dataset;
pub use idm_email as email;
pub use idm_index as index;
pub use idm_latex as latex;
pub use idm_query as query;
pub use idm_relational as relational;
pub use idm_streams as streams;
pub use idm_system as system;
pub use idm_vfs as vfs;
pub use idm_xml as xml;

pub use idm_core::prelude::*;
