//! Golden equivalence: every deprecated query entry point is a thin
//! wrapper over [`QueryRequest`], so each must return byte-identical
//! results to its request spelling — same rows, same stats, same
//! explain text — for the full Table 4 workload. A wrapper that drifts
//! from its replacement is a silent behavior change for migrating
//! callers; these tests pin the two paths together until the wrappers
//! are removed.

#![allow(deprecated)]

use std::sync::Arc;
use std::sync::OnceLock;

use imemex::dataset::{generate, DatasetConfig};
use imemex::query::{QueryBudget, QueryRequest};
use imemex::system::{Federation, FsPlugin, ImapPlugin, Pdsms, RssPlugin};
use imemex::vfs::{NodeId, VirtualFs};

const TABLE4: [&str; 8] = [
    r#""database""#,
    r#""database tuning""#,
    r#"[size > 420000 and lastmodified < @12.06.2005]"#,
    r#"//papers//*Vision/*["Franklin"]"#,
    r#"//VLDB200?//?onclusion*/*["systems"]"#,
    r#"union( //VLDB2005//*["documents"], //VLDB2006//*["documents"])"#,
    r#"join( //VLDB2006//*[class="texref"] as A, //VLDB2006//*[class="environment"]//figure* as B, A.name=B.tuple.label)"#,
    r#"join ( //*[class="emailmessage"]//*.tex as A, //papers//*.tex as B, A.name = B.name )"#,
];

fn world() -> &'static Pdsms {
    static WORLD: OnceLock<Pdsms> = OnceLock::new();
    WORLD.get_or_init(|| {
        let dataset = generate(DatasetConfig::at_scale(0.02));
        let mut system = Pdsms::new();
        system.register_source(Arc::new(FsPlugin::new(
            Arc::clone(&dataset.fs),
            NodeId::ROOT,
        )));
        system.register_source(Arc::new(ImapPlugin::new(Arc::clone(&dataset.imap))));
        system.register_source(Arc::new(RssPlugin::new(
            Arc::clone(&dataset.feeds),
            dataset.feed_urls.clone(),
        )));
        system.index_all().expect("ingest");
        system
    })
}

#[test]
fn query_wrapper_is_byte_identical_to_plain_request() {
    let w = world();
    for iql in TABLE4 {
        let old = w.query(iql).expect("wrapper");
        let new = w.run(&QueryRequest::new(iql)).expect("request");
        assert_eq!(old.rows, new.result.rows, "rows drifted on '{iql}'");
        assert_eq!(old.stats, new.result.stats, "stats drifted on '{iql}'");
        assert_eq!(
            new.result.stats, new.stats,
            "response stats mirror the result"
        );
        assert!(new.explain.is_none() && new.ranked.is_none());
    }
}

#[test]
fn query_budgeted_wrapper_is_byte_identical_to_budget_switch() {
    let w = world();
    let budgets = [
        QueryBudget::none(),
        QueryBudget::with_deadline(std::time::Duration::from_secs(60)),
        QueryBudget {
            max_nodes: Some(100_000),
            max_bytes: Some(64 << 20),
            ..QueryBudget::default()
        },
    ];
    for iql in TABLE4 {
        for budget in budgets {
            let old = w.query_budgeted(iql, budget).expect("wrapper");
            let new = w
                .run(&QueryRequest::new(iql).budget(budget))
                .expect("request");
            assert_eq!(old.rows, new.result.rows, "rows drifted on '{iql}'");
            assert_eq!(old.stats, new.result.stats, "stats drifted on '{iql}'");
        }
    }
}

#[test]
fn query_explained_wrapper_is_byte_identical_to_explain_switch() {
    let w = world();
    for iql in TABLE4 {
        let (old_result, old_plan) = w.query_explained(iql).expect("wrapper");
        let new = w.run(&QueryRequest::new(iql).explain()).expect("request");
        assert_eq!(old_result.rows, new.result.rows, "rows drifted on '{iql}'");
        let new_plan = new.explain.expect("explain requested");
        assert_eq!(old_plan, new_plan, "plan text drifted on '{iql}'");
        // And both agree with the standalone explain entry point.
        assert_eq!(w.explain(iql).expect("explain"), new_plan);
    }
}

#[test]
fn execute_cached_wrapper_is_byte_identical_to_cached_request() {
    let w = world();
    let old_side = w.query_processor();
    let new_side = w.query_processor();
    for iql in TABLE4 {
        // Twice each: a cold pass that seeds the cache and a warm pass
        // served from the maintained standing result.
        for pass in 0..2 {
            let old = old_side.execute_cached(iql).expect("wrapper");
            let new = new_side
                .run(&QueryRequest::new(iql).cached())
                .expect("request");
            assert_eq!(old.rows, new.result.rows, "rows drifted on '{iql}'");
            assert_eq!(
                old.stats.result_cache_hits > 0,
                new.result.stats.result_cache_hits > 0,
                "cache behavior drifted on '{iql}' pass {pass}"
            );
        }
    }
}

fn federation() -> Federation {
    let t = imemex::Timestamp::from_ymd(2006, 8, 1).unwrap();
    let mut federation = Federation::new();
    for (peer, files) in [
        (
            "laptop",
            vec![("a.txt", "database tuning"), ("b.txt", "soup")],
        ),
        ("desktop", vec![("c.txt", "database systems")]),
    ] {
        let fs = Arc::new(VirtualFs::new(t));
        let dir = fs.mkdir_p("/docs", t).unwrap();
        for (name, body) in files {
            fs.create_file(dir, name, body.to_owned(), t).unwrap();
        }
        let mut system = Pdsms::new();
        system.register_source(Arc::new(FsPlugin::new(fs, NodeId::ROOT)));
        system.index_all().unwrap();
        federation.add_peer(peer, system).unwrap();
    }
    federation
}

#[test]
fn federation_wrappers_are_byte_identical_to_request_spellings() {
    let fed = federation();
    let iql = r#""database""#;

    let old = fed.query(iql).expect("wrapper");
    let new = fed.run(&QueryRequest::new(iql)).expect("request");
    assert_eq!(old, new);
    assert!(new.is_complete());

    let budget = QueryBudget::with_deadline(std::time::Duration::from_secs(60));
    let old = fed.query_budgeted(iql, budget).expect("wrapper");
    let new = fed
        .run(&QueryRequest::new(iql).budget(budget))
        .expect("request");
    assert_eq!(old.rows.len(), new.rows.len());
    assert_eq!(
        old.rows
            .iter()
            .map(|r| (&r.peer, r.vid))
            .collect::<Vec<_>>(),
        new.rows
            .iter()
            .map(|r| (&r.peer, r.vid))
            .collect::<Vec<_>>(),
    );

    let old = fed.query_ranked(iql).expect("wrapper");
    let new = fed.run(&QueryRequest::new(iql).ranked()).expect("request");
    assert_eq!(old, new);
    assert!(
        new.rows.windows(2).all(|p| p[0].score >= p[1].score),
        "ranked federation rows stay score-sorted"
    );
}
