//! Relational data in the dataspace, end to end: a relational database
//! instantiated as resource views, indexed next to files and email, and
//! queried with the same iQL as everything else — the "unified
//! representation" claim exercised across all of Table 1's model
//! families at once.

use std::sync::Arc;

use imemex::core::prelude::*;
use imemex::index::IndexBundle;
use imemex::query::QueryProcessor;
use imemex::relational::{convert, RelationalDb};

fn contacts_db() -> RelationalDb {
    let db = RelationalDb::new("address-book");
    let schema = Schema::of(&[
        ("name", Domain::Text),
        ("affiliation", Domain::Text),
        ("age", Domain::Integer),
    ]);
    let contacts = db.create_relation("contacts", schema).unwrap();
    for (name, affiliation, age) in [
        ("Mike Franklin", "UC Berkeley", 42),
        ("Donald Knuth", "Stanford", 67),
        ("Jens Dittrich", "ETH Zurich", 33),
    ] {
        contacts
            .insert(vec![
                Value::Text(name.into()),
                Value::Text(affiliation.into()),
                Value::Integer(age),
            ])
            .unwrap();
    }
    db
}

fn indexed_space() -> (Arc<ViewStore>, Arc<IndexBundle>) {
    let store = Arc::new(ViewStore::new());
    let indexes = Arc::new(IndexBundle::new());

    // A relational source next to a file source in the same store.
    let db_view = convert::database_to_views(&store, &contacts_db()).unwrap();
    let paper = store
        .build("dataspaces.tex")
        .tuple(TupleComponent::of(vec![
            ("size", Value::Integer(100)),
            ("creation time", Value::Date(Timestamp(0))),
            ("last modified time", Value::Date(Timestamp(0))),
        ]))
        .text("a paper citing Mike Franklin")
        .class_named("file")
        .insert();
    let root = store
        .build("dataspace")
        .children(vec![db_view, paper])
        .insert();
    let _ = root;

    for vid in store.vids() {
        indexes.index_view(&store, vid, "mixed").unwrap();
    }
    (store, indexes)
}

#[test]
fn relational_tuples_answer_attribute_queries() {
    let (store, indexes) = indexed_space();
    let p = QueryProcessor::new(store, indexes);

    // Tuple-component predicates reach the relational tuples.
    let result = p.execute(r#"[age > 40]"#).unwrap();
    assert_eq!(result.rows.len(), 2, "Franklin and Knuth");

    let result = p.execute(r#"[affiliation = "Stanford"]"#).unwrap();
    assert_eq!(result.rows.len(), 1);

    // Path steps navigate reldb → relation → tuple.
    let result = p.execute(r#"//address-book//*[class="tuple"]"#).unwrap();
    assert_eq!(result.rows.len(), 3);
    let result = p.execute(r#"//address-book/contacts"#).unwrap();
    assert_eq!(result.rows.len(), 1);
}

#[test]
fn joins_bridge_relations_and_documents() {
    // "Which contacts are mentioned in my papers?" — a join between a
    // relational attribute and full-text content is not expressible in
    // either a plain RDBMS or a desktop search engine alone; in iDM
    // both sides are just resource views.
    let (store, indexes) = indexed_space();
    let p = QueryProcessor::new(Arc::clone(&store), Arc::clone(&indexes));

    // All tuples whose name value appears as a phrase in some content:
    // check via the content index, one tuple at a time (the iQL join
    // needs a shared key field; here we drive it programmatically like
    // a PIM application would).
    let tuples = p.execute(r#"[class="tuple"]"#).unwrap().rows.views();
    let mut mentioned = Vec::new();
    for vid in tuples {
        let name = indexes
            .tuple
            .value_of(vid, "name")
            .and_then(|v| v.as_text().map(str::to_owned))
            .unwrap();
        if !indexes.content.phrase_query(&name).is_empty() {
            mentioned.push(name);
        }
    }
    assert_eq!(mentioned, vec!["Mike Franklin".to_owned()]);
}

#[test]
fn relational_views_rank_and_update_like_everything_else() {
    let (store, indexes) = indexed_space();
    let p = QueryProcessor::new(Arc::clone(&store), Arc::clone(&indexes));

    // iQL updates work on relational tuples too (per-tuple schemas make
    // attribute addition legal).
    let outcome = p
        .execute_update(r#"update [affiliation = "ETH Zurich"] set age = 34"#)
        .unwrap();
    assert_eq!(outcome.applied, 1);
    assert_eq!(p.execute("[age = 34]").unwrap().rows.len(), 1);

    // And lazily-instantiated relations join the dataspace on access.
    let db = RelationalDb::new("live-db");
    let r = db
        .create_relation("log", Schema::of(&[("event", Domain::Text)]))
        .unwrap();
    let lazy_rel = convert::relation_to_views_lazily(&store, r.clone()).unwrap();
    r.insert(vec![Value::Text("late insert".into())]).unwrap();
    let members = store.group(lazy_rel).unwrap().finite_members();
    assert_eq!(members.len(), 1, "intensional group saw the tuple");
}
