//! Table 1, executable: one conforming instance of **every** resource
//! view class the paper defines, deep-validated against the class
//! constraints — plus counterexamples proving each constraint bites.

use std::sync::Arc;

use imemex::core::class::builtin::names;
use imemex::core::prelude::*;
use imemex::core::validate::{validate_as, ValidationMode};

fn fs_tuple() -> TupleComponent {
    TupleComponent::of(vec![
        ("size", Value::Integer(1024)),
        ("creation time", Value::Date(Timestamp(0))),
        ("last modified time", Value::Date(Timestamp(10))),
    ])
}

struct NeverEnding;
impl ViewSequenceSource for NeverEnding {
    fn try_next(&self, _store: &ViewStore) -> Result<Option<Vid>> {
        Ok(None)
    }
}

/// Builds one valid instance per Table 1 row and deep-validates it.
#[test]
fn every_table_1_class_is_instantiable() {
    let store = ViewStore::new();
    let classes = store.classes();

    // file: η = N_f, τ = (W_FS, T_f), χ = C_f, γ empty.
    let file = store
        .build("vldb 2006.tex")
        .tuple(fs_tuple())
        .text("file bytes")
        .class_named(names::FILE)
        .insert();

    // folder: children ∈ {file, folder} in the set S.
    let folder = store
        .build("PIM")
        .tuple(fs_tuple())
        .children(vec![file])
        .class_named(names::FOLDER)
        .insert();

    // folderlink (Figure 1's 'All Projects'): a folder specialization.
    let link = store
        .build("All Projects")
        .tuple(fs_tuple())
        .children(vec![folder])
        .class_named(names::FOLDERLINK)
        .insert();

    // tuple: unnamed, τ = (W_R, t_i), everything else empty.
    let tuple = store
        .build_unnamed()
        .tuple(TupleComponent::of(vec![
            ("name", Value::Text("Mike".into())),
            ("age", Value::Integer(40)),
        ]))
        .class_named(names::TUPLE)
        .insert();

    // relation: named, group = set of tuple views.
    let relation = store
        .build("contacts")
        .children(vec![tuple])
        .class_named(names::RELATION)
        .insert();

    // reldb: named, group = set of relations.
    let reldb = store
        .build("personal-db")
        .children(vec![relation])
        .class_named(names::RELDB)
        .insert();

    // xmltext: content only.
    let xmltext = store
        .build_unnamed()
        .text("Dataspaces")
        .class_named(names::XMLTEXT)
        .insert();

    // xmlelem: named, attrs in τ, ordered children.
    let xmlelem = store
        .build("title")
        .tuple(TupleComponent::of(vec![("lang", Value::Text("en".into()))]))
        .sequence(vec![xmltext])
        .class_named(names::XMLELEM)
        .insert();

    // xmldoc: unnamed, γ = ⟨root element⟩.
    let xmldoc = store
        .build_unnamed()
        .sequence(vec![xmlelem])
        .class_named(names::XMLDOC)
        .insert();

    // xmlfile: a file whose γ = ⟨xmldoc⟩.
    let xmlfile = store
        .build("feed.xml")
        .tuple(fs_tuple())
        .text("<a/>")
        .sequence(vec![xmldoc])
        .class_named(names::XMLFILE)
        .insert();

    // datstream / tupstream / rssatom: infinite group sequences.
    let datstream = store
        .build_unnamed()
        .group(Group::infinite(Arc::new(NeverEnding)))
        .class_named(names::DATSTREAM)
        .insert();
    let tupstream = store
        .build_unnamed()
        .group(Group::infinite(Arc::new(NeverEnding)))
        .class_named(names::TUPSTREAM)
        .insert();
    let rssatom = store
        .build_unnamed()
        .group(Group::infinite(Arc::new(NeverEnding)))
        .class_named(names::RSSATOM)
        .insert();

    for (label, vid) in [
        ("file", file),
        ("folder", folder),
        ("folderlink", link),
        ("tuple", tuple),
        ("relation", relation),
        ("reldb", reldb),
        ("xmltext", xmltext),
        ("xmlelem", xmlelem),
        ("xmldoc", xmldoc),
        ("xmlfile", xmlfile),
        ("datstream", datstream),
        ("tupstream", tupstream),
        ("rssatom", rssatom),
    ] {
        imemex::core::validate::validate(&store, vid, ValidationMode::Deep)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }

    // Generalization hierarchy claims of the table.
    let is_sub = |a: &str, b: &str| {
        classes.is_subclass(classes.lookup(a).unwrap(), classes.lookup(b).unwrap())
    };
    assert!(is_sub(names::XMLFILE, names::FILE));
    assert!(is_sub(names::FOLDERLINK, names::FOLDER));
    assert!(is_sub(names::TUPSTREAM, names::DATSTREAM));
    assert!(is_sub(names::RSSATOM, names::DATSTREAM));
    assert!(is_sub(names::ATTACHMENT, names::FILE));
    assert!(!is_sub(names::FILE, names::FOLDER));
}

/// Each Table 1 restriction rejects a counterexample.
#[test]
fn table_1_constraints_reject_violations() {
    let store = ViewStore::new();
    let classes = store.classes();

    // Restriction 1 (emptiness): a named tuple view violates η = ⟨⟩.
    let named_tuple = store
        .build("illegally named")
        .tuple(TupleComponent::of(vec![("x", Value::Integer(1))]))
        .insert();
    assert!(validate_as(
        &store,
        named_tuple,
        classes.require(names::TUPLE).unwrap(),
        ValidationMode::Deep
    )
    .is_err());

    // Restriction 2 (schema of τ): a file whose tuple misses W_FS.
    let bad_schema = store
        .build("f.txt")
        .tuple(TupleComponent::of(vec![("whatever", Value::Integer(1))]))
        .text("x")
        .insert();
    assert!(validate_as(
        &store,
        bad_schema,
        classes.require(names::FILE).unwrap(),
        ValidationMode::Deep
    )
    .is_err());

    // Restriction 3 (finiteness): a finite group fails datstream.
    let finite = store.build_unnamed().insert();
    assert!(validate_as(
        &store,
        finite,
        classes.require(names::DATSTREAM).unwrap(),
        ValidationMode::Deep
    )
    .is_err());

    // Restriction 4 (child classes): a relation containing a file.
    let file = store
        .build("stray.txt")
        .tuple(fs_tuple())
        .text("x")
        .class_named(names::FILE)
        .insert();
    let bad_relation = store.build("contacts").children(vec![file]).insert();
    assert!(validate_as(
        &store,
        bad_relation,
        classes.require(names::RELATION).unwrap(),
        ValidationMode::Deep
    )
    .is_err());

    // Member ordering: xmlelem children must be the sequence Q, not S.
    let text = store
        .build_unnamed()
        .text("t")
        .class_named(names::XMLTEXT)
        .insert();
    let set_children = store.build("elem").children(vec![text]).insert();
    assert!(validate_as(
        &store,
        set_children,
        classes.require(names::XMLELEM).unwrap(),
        ValidationMode::Deep
    )
    .is_err());
}
