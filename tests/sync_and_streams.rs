//! Integration tests for the live half of the system: synchronization
//! rounds after source changes, stream windows over IMAP, RSS polling,
//! and versioning/lineage across the stack.

use std::sync::Arc;

use imemex::core::prelude::*;
use imemex::core::version::VersionLog;
use imemex::email::message::EmailMessage;
use imemex::email::ImapServer;
use imemex::streams::{PushEngine, StreamWindow};
use imemex::system::{FsPlugin, Pdsms, QueryRequest, SynchronizationManager};
use imemex::vfs::{NodeId, VirtualFs};

fn t() -> Timestamp {
    Timestamp::from_ymd(2006, 9, 12).unwrap()
}

#[test]
fn filesystem_changes_flow_to_queries() {
    let fs = Arc::new(VirtualFs::new(t()));
    let dir = fs.mkdir_p("/work", t()).unwrap();
    fs.create_file(dir, "old.tex", "\\section{Old}\nstale words", t())
        .unwrap();

    let mut system = Pdsms::new();
    let plugin = Arc::new(FsPlugin::new(Arc::clone(&fs), NodeId::ROOT));
    system.register_source(Arc::clone(&plugin) as _);
    system.index_all().unwrap();

    let sync = SynchronizationManager::attach(
        plugin,
        Arc::clone(system.store()),
        Arc::clone(system.indexes()),
    )
    .unwrap();

    // Create, modify and remove files; sync after each step.
    fs.create_file(dir, "new.tex", "\\section{Fresh}\nnew findings", t())
        .unwrap();
    sync.sync_round().unwrap();
    assert_eq!(
        system
            .run(&QueryRequest::new(r#"//work//Fresh"#))
            .unwrap()
            .result
            .rows
            .len(),
        1
    );

    let old = fs.resolve("/work/old.tex").unwrap();
    fs.write_file(old, "\\section{Renewed}\nfresh again", t().plus_days(1))
        .unwrap();
    sync.sync_round().unwrap();
    assert_eq!(
        system
            .run(&QueryRequest::new(r#"//work//Old"#))
            .unwrap()
            .result
            .rows
            .len(),
        0
    );
    assert_eq!(
        system
            .run(&QueryRequest::new(r#"//work//Renewed"#))
            .unwrap()
            .result
            .rows
            .len(),
        1
    );

    fs.remove(old).unwrap();
    sync.sync_round().unwrap();
    assert_eq!(
        system
            .run(&QueryRequest::new(r#"//work//Renewed"#))
            .unwrap()
            .result
            .rows
            .len(),
        0
    );
    assert_eq!(
        system
            .run(&QueryRequest::new(r#"//old.tex"#))
            .unwrap()
            .result
            .rows
            .len(),
        0
    );
}

#[test]
fn version_log_tracks_the_whole_dataspace() {
    let fs = Arc::new(VirtualFs::new(t()));
    let dir = fs.mkdir_p("/v", t()).unwrap();
    fs.create_file(dir, "a.txt", "one", t()).unwrap();

    let mut system = Pdsms::new();
    let plugin = Arc::new(FsPlugin::new(Arc::clone(&fs), NodeId::ROOT));
    system.register_source(Arc::clone(&plugin) as _);

    let mut log = VersionLog::attach(system.store());
    system.index_all().unwrap();
    let after_ingest = {
        log.drain(system.store());
        log.current_version()
    };
    assert!(after_ingest >= 3, "ingest creates versions");

    // A later change creates exactly one more version for the view.
    let sync = SynchronizationManager::attach(
        plugin,
        Arc::clone(system.store()),
        Arc::clone(system.indexes()),
    )
    .unwrap();
    let file = fs.resolve("/v/a.txt").unwrap();
    fs.write_file(file, "two", t().plus_days(1)).unwrap();
    sync.sync_round().unwrap();
    log.drain(system.store());
    assert!(log.current_version() > after_ingest);
}

#[test]
fn imap_stream_with_window_and_push_filter() {
    let store = Arc::new(ViewStore::new());
    let imap = Arc::new(ImapServer::in_process());
    for i in 0..10 {
        imap.append(
            imap.inbox(),
            &EmailMessage {
                subject: format!("m{i}"),
                from: "a@b".into(),
                to: "c@d".into(),
                date: t(),
                body: if i % 3 == 0 {
                    "urgent deadline".into()
                } else {
                    "routine".into()
                },
                attachments: vec![],
            },
        )
        .unwrap();
    }

    let engine = PushEngine::attach(Arc::clone(&store));
    let filter = Arc::new(imemex::streams::engine::KeywordFilter::new("deadline"));
    engine.register(Arc::clone(&filter) as _);

    let source =
        imemex::email::convert::InboxStreamSource::new(Arc::clone(&imap), imap.inbox(), false);
    let window = StreamWindow::new(4);
    let pulled = window.pull_available(&store, &source).unwrap();
    engine.pump();

    assert_eq!(pulled, 10);
    assert_eq!(window.len(), 4, "window keeps the last four");
    assert_eq!(filter.matches().len(), 4, "messages 0,3,6,9 matched");
}

#[test]
fn rss_source_polls_feed_changes_through_the_system() {
    use imemex::system::RssPlugin;
    use imemex::xml::rss::{Feed, FeedItem, FeedServer};

    let feeds = Arc::new(FeedServer::new());
    feeds.publish("u", Feed::new("u"));
    let mut system = Pdsms::new();
    system.register_source(Arc::new(RssPlugin::new(
        Arc::clone(&feeds),
        vec!["u".into()],
    )));
    system.index_all().unwrap();

    let stream_vid = system.indexes().catalog.by_source("rss")[0];
    let store = system.store();
    let GroupSnapshot::Infinite(source) = store.group(stream_vid).unwrap() else {
        panic!("rss streams are infinite")
    };
    assert!(source.try_next(store).unwrap().is_none(), "feed empty");

    feeds.append_item(
        "u",
        FeedItem {
            title: "post".into(),
            author: "a".into(),
            published: t(),
            body: "body".into(),
        },
    );
    let doc = source.try_next(store).unwrap().expect("item delivered");
    assert!(store.conforms_to(doc, "xmldoc").unwrap());
}

#[test]
fn lineage_spans_sources_and_formats() {
    use imemex::core::lineage::LineageGraph;

    // A file is copied, then converted: lineage keeps the whole chain.
    let store = ViewStore::new();
    let original = store
        .build("report.tex")
        .text("\\section{S}\nbody")
        .insert();
    let copy = store
        .build("report-copy.tex")
        .text("\\section{S}\nbody")
        .insert();
    let mapping = imemex::latex::convert::text_to_views(&store, "\\section{S}\nbody").unwrap();

    let lineage = LineageGraph::new();
    lineage.record(copy, original, "copy");
    lineage.record(mapping.document, copy, "latex2idm");

    assert_eq!(lineage.ancestors(mapping.document), vec![copy, original]);
    assert_eq!(lineage.descendants(original).len(), 2);
}
