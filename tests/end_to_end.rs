//! End-to-end integration tests spanning every crate: generate a
//! synthetic dataspace, ingest all sources through the PDSMS, and check
//! the evaluation invariants (result counts, strategy agreement,
//! catalog consistency, index sizes).

use std::sync::Arc;
use std::sync::OnceLock;

use imemex::dataset::{generate, DatasetConfig};
use imemex::query::{ExpansionStrategy, QueryRequest};
use imemex::system::{FsPlugin, ImapPlugin, Pdsms, RssPlugin};
use imemex::vfs::NodeId;

/// One shared workbench for the whole test file (building it is the
/// expensive part; every test only reads).
struct World {
    system: Pdsms,
    dataset: imemex::dataset::GeneratedDataset,
    stats: Vec<imemex::system::SourceIngestStats>,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let dataset = generate(DatasetConfig::at_scale(0.03));
        let mut system = Pdsms::new();
        system.register_source(Arc::new(FsPlugin::new(
            Arc::clone(&dataset.fs),
            NodeId::ROOT,
        )));
        system.register_source(Arc::new(ImapPlugin::new(Arc::clone(&dataset.imap))));
        system.register_source(Arc::new(RssPlugin::new(
            Arc::clone(&dataset.feeds),
            dataset.feed_urls.clone(),
        )));
        let stats = system.index_all().expect("ingest");
        World {
            system,
            dataset,
            stats,
        }
    })
}

const TABLE4: [&str; 8] = [
    r#""database""#,
    r#""database tuning""#,
    r#"[size > 420000 and lastmodified < @12.06.2005]"#,
    r#"//papers//*Vision/*["Franklin"]"#,
    r#"//VLDB200?//?onclusion*/*["systems"]"#,
    r#"union( //VLDB2005//*["documents"], //VLDB2006//*["documents"])"#,
    r#"join( //VLDB2006//*[class="texref"] as A, //VLDB2006//*[class="environment"]//figure* as B, A.name=B.tuple.label)"#,
    r#"join ( //*[class="emailmessage"]//*.tex as A, //papers//*.tex as B, A.name = B.name )"#,
];

#[test]
fn table4_queries_return_planted_counts() {
    let w = world();
    let e = w.dataset.expected;
    let expected = [e.q1, e.q2, e.q3, e.q4, e.q5, e.q6, e.q7, e.q8];
    for (i, iql) in TABLE4.iter().enumerate() {
        let result = w
            .system
            .run(&QueryRequest::new(*iql))
            .expect("query runs")
            .result;
        assert_eq!(
            result.rows.len(),
            expected[i],
            "Q{} '{}' returned {} instead of {}",
            i + 1,
            iql,
            result.rows.len(),
            expected[i]
        );
    }
}

#[test]
fn expansion_strategies_agree_everywhere() {
    let w = world();
    for iql in TABLE4 {
        let mut counts = Vec::new();
        for strategy in [
            ExpansionStrategy::Forward,
            ExpansionStrategy::Backward,
            ExpansionStrategy::Bidirectional,
        ] {
            let mut processor = w.system.query_processor();
            processor.set_expansion(strategy);
            counts.push(processor.execute(iql).expect("query").rows.len());
        }
        assert!(
            counts.windows(2).all(|p| p[0] == p[1]),
            "strategies disagree on '{iql}': {counts:?}"
        );
    }
}

#[test]
fn every_store_view_is_in_the_catalog() {
    let w = world();
    let store = w.system.store();
    let catalog = &w.system.indexes().catalog;
    for vid in store.vids() {
        assert!(
            catalog.contains(vid),
            "view {vid} ({:?}) missing from catalog",
            store.name(vid).unwrap()
        );
    }
    assert_eq!(catalog.len(), store.len());
}

#[test]
fn table2_shape_derived_views_dominate() {
    let w = world();
    let fs = w.stats.iter().find(|s| s.source == "filesystem").unwrap();
    // Paper: filesystem derived views ≈ 9x base items.
    assert!(
        fs.derived_views() > 3 * fs.base_views,
        "derived {} vs base {}",
        fs.derived_views(),
        fs.base_views
    );
    let email = w.stats.iter().find(|s| s.source == "imap").unwrap();
    // Paper: email derived views are a small fraction of base items.
    assert!(email.derived_views() < email.base_views);
}

#[test]
fn table3_shape_content_index_dominates() {
    let w = world();
    let sizes = w.system.indexes().sizes();
    assert!(sizes.content > sizes.name, "content > name index");
    assert!(sizes.content > sizes.group, "content > group replica");
    assert!(sizes.total() > 0);
    // Net input exceeds zero and the content index is its largest
    // consumer, as in Table 3.
    let net: u64 = w.stats.iter().map(|s| s.net_input_bytes).sum();
    assert!(net > 0);
}

#[test]
fn class_conformance_of_all_ingested_views() {
    use imemex::core::validate::{validate, ValidationMode};
    let w = world();
    let store = w.system.store();
    let mut checked = 0;
    for vid in store.vids() {
        validate(store, vid, ValidationMode::Shallow)
            .unwrap_or_else(|e| panic!("view {vid} fails conformance: {e}"));
        checked += 1;
    }
    assert!(checked > 1000, "dataspace too small: {checked}");
}

#[test]
fn explain_works_for_all_queries() {
    let w = world();
    for iql in TABLE4 {
        let plan = w.system.explain(iql).expect("explain");
        assert!(!plan.is_empty());
    }
}

#[test]
fn query_stats_show_q8_expansion_blowup() {
    // The paper: Q8 processes a large number of intermediate results
    // relative to its final result size (Section 7.2).
    let w = world();
    let q8 = w
        .system
        .run(&QueryRequest::new(TABLE4[7]))
        .expect("q8")
        .result;
    let q1 = w
        .system
        .run(&QueryRequest::new(TABLE4[0]))
        .expect("q1")
        .result;
    assert!(
        q8.stats.nodes_expanded > 100 * q8.rows.len().max(1),
        "expected intermediate-results blowup, got {} expanded for {} rows",
        q8.stats.nodes_expanded,
        q8.rows.len()
    );
    // Keyword queries expand nothing.
    assert_eq!(q1.stats.nodes_expanded, 0);
}

#[test]
fn indexes_survive_a_restart() {
    // The paper's Derby/Lucene stores were disk-backed: an iMeMex
    // restart did not re-scan the dataspace. Same here: persist the
    // index bundle, load it into a *fresh* system (empty view store),
    // and every Table 4 query still answers identically — the indexes
    // and catalog are self-sufficient for query processing.
    use imemex::index::persist;
    let w = world();
    let bytes = persist::to_bytes(w.system.indexes());
    let restored = std::sync::Arc::new(persist::from_bytes(&bytes).expect("load"));

    let fresh_store = std::sync::Arc::new(imemex::core::prelude::ViewStore::new());
    let processor = imemex::query::QueryProcessor::new(fresh_store, restored);
    for iql in TABLE4 {
        let before = w
            .system
            .run(&QueryRequest::new(iql))
            .unwrap()
            .result
            .rows
            .len();
        let after = processor.execute(iql).unwrap().rows.len();
        assert_eq!(before, after, "restart changed '{iql}'");
    }
}
